"""Shim so `pip install -e .` works in offline environments lacking the
`wheel` package (pip falls back to the legacy setup.py develop path)."""

from setuptools import setup

setup()

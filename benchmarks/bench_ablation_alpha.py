"""Ablation: Succinct sampling rate alpha (§3.1's space/latency knob).

Storage for the sampled SA/ISA shrinks as 1/alpha while every unsampled
lookup costs up to alpha NPA hops; this bench sweeps alpha and verifies
both directions of the tradeoff on a real dataset.
"""

from conftest import EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.bench.systems import ZipGSystem
from repro.workloads import TAOWorkload

ALPHAS = (4, 16, 64)
OPS = 100


def sweep():
    graph = build_dataset("orkut")
    results = []
    for alpha in ALPHAS:
        system = ZipGSystem.load(
            graph, num_shards=4, alpha=alpha,
            extra_property_ids=list(EXTRA_PROPERTY_IDS),
        )
        workload = TAOWorkload(graph, seed=6)
        system.reset_stats()
        for operation in workload.operations(OPS):
            operation.run(system)
        stats = system.aggregate_stats()
        results.append(
            (alpha, system.storage_footprint_bytes(), stats.npa_hops / OPS)
        )
    return results


def test_ablation_sampling_rate(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (alpha, f"{footprint / 1e6:.2f} MB", f"{hops:.0f}")
        for alpha, footprint, hops in results
    ]
    print(format_table("Ablation: sampling rate alpha",
                       ["alpha", "footprint", "NPA hops/op"], rows))

    footprints = [footprint for _, footprint, _ in results]
    hops = [h for _, _, h in results]
    # Larger alpha -> strictly smaller footprint...
    assert footprints[0] > footprints[1] > footprints[2]
    # ...and strictly more NPA hops per query.
    assert hops[0] < hops[1] < hops[2]

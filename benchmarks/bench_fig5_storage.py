"""Figure 5: storage footprint (representation size / raw input size).

Paper shape: ZipG's footprint is 1.8-4x lower than Neo4j and 1.8-2x
lower than Titan uncompressed, comparable to Titan-Compressed; ZipG's
compression is ~15-40% worse on LinkBench data (synthetic, less
compressible) while Neo4j/Titan overheads are *lower* there (single
property => smaller secondary indexes).
"""

from conftest import (
    EXTRA_PROPERTY_IDS,
    ZIPG_ALPHA,
    ZIPG_SHARDS,
    cached_system,
    record_bench,
)

from repro.bench.datasets import DATASETS, LINKBENCH, REAL_WORLD, build_dataset
from repro.bench.reporting import format_ratio_series
from repro.bench.systems import ZipGSystem, build_system

SYSTEMS = ("neo4j", "titan", "titan-compressed", "zipg")


def footprint_ratios():
    series = {}
    for dataset_name in DATASETS:
        raw = build_dataset(dataset_name).on_disk_size_bytes()
        series[dataset_name] = {
            system: cached_system(system, dataset_name).storage_footprint_bytes() / raw
            for system in SYSTEMS
        }
    return series


def test_figure5_storage_footprint(benchmark):
    series = benchmark.pedantic(footprint_ratios, rounds=1, iterations=1)
    print(format_ratio_series("Figure 5: storage footprint / input size", series))

    for dataset_name in REAL_WORLD:
        ratios = series[dataset_name]
        neo4j_factor = ratios["neo4j"] / ratios["zipg"]
        titan_factor = ratios["titan"] / ratios["zipg"]
        assert 1.8 <= neo4j_factor <= 5.0, f"Neo4j/ZipG on {dataset_name}: {neo4j_factor:.2f}"
        assert 1.8 <= titan_factor <= 4.0, f"Titan/ZipG on {dataset_name}: {titan_factor:.2f}"
        # Titan-Compressed is in ZipG's ballpark (within ~2x).
        assert ratios["titan-compressed"] / ratios["zipg"] < 2.2

    # LinkBench: ZipG compresses worse than on real-world data...
    for real, linkbench in zip(REAL_WORLD, LINKBENCH):
        assert series[linkbench]["zipg"] > series[real]["zipg"]
        # ...while Neo4j/Titan overheads shrink (smaller indexes).
        assert series[linkbench]["neo4j"] < series[real]["neo4j"]
        assert series[linkbench]["titan"] < series[real]["titan"]


def test_figure5_encoding_ablation(benchmark):
    """Shard-codec ablation behind ``ShardEncoding``: Succinct vs the
    Log(Graph)-style fixed-width offset-array codec.

    Not a paper figure -- the column Figure 5 would grow if ZipG
    swapped its flat-file codec.  Succinct buys searchable compression
    (sampled SA/ISA + NPA); the fixed-width codec stores ~``log2
    sigma``/8 of the input with direct O(length) extraction but only
    O(n)-scan search.  Footprints land in the same band, which is the
    point: the interface isolates the latency/compression trade from
    the rest of the store.
    """

    def run():
        series = {}
        for dataset_name in REAL_WORLD:
            graph = build_dataset(dataset_name)
            raw = graph.on_disk_size_bytes()
            offsets = ZipGSystem.load(
                graph, num_shards=ZIPG_SHARDS, alpha=ZIPG_ALPHA,
                extra_property_ids=list(EXTRA_PROPERTY_IDS),
                encoding="offsets",
            )
            series[dataset_name] = {
                "zipg-succinct":
                    cached_system("zipg", dataset_name).storage_footprint_bytes() / raw,
                "zipg-offsets": offsets.storage_footprint_bytes() / raw,
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_ratio_series(
        "Figure 5 ablation: shard codec footprint / input size", series
    ))
    for dataset_name, ratios in series.items():
        # Both codecs must actually compress, and neither may blow the
        # other out of the band -- they trade query shape, not orders
        # of magnitude of space.
        assert ratios["zipg-succinct"] < 1.0, (dataset_name, ratios)
        assert ratios["zipg-offsets"] < 1.0, (dataset_name, ratios)
        band = ratios["zipg-offsets"] / ratios["zipg-succinct"]
        assert 0.5 <= band <= 2.0, (dataset_name, band)
        record_bench("fig5_storage", result={
            "figure": "fig5_encoding_ablation",
            "dataset": dataset_name,
            **ratios,
        })


def test_figure5_compression_wall_clock(benchmark):
    """Wall-clock cost of ``compress(graph)`` itself (not a paper
    figure, but the operation Figure 5's ratios come from)."""
    graph = build_dataset("orkut")
    benchmark.pedantic(
        lambda: build_system(
            "zipg", graph, num_shards=ZIPG_SHARDS, alpha=ZIPG_ALPHA,
            extra_property_ids=list(EXTRA_PROPERTY_IDS),
        ),
        rounds=1,
        iterations=1,
    )

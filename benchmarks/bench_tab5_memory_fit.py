"""Table 5: which datasets fit completely in memory, per system.

Paper matrix: orkut/linkbench-small fit for every system; twitter/
linkbench-medium fit for all but Neo4j; uk/linkbench-large fit (or
nearly fit) only for ZipG / Titan-Compressed.
"""

from conftest import cached_system, dataset_budget

from repro.bench.datasets import DATASETS
from repro.bench.memory_model import MemoryBudget
from repro.bench.reporting import format_table

SYSTEMS = ("neo4j", "titan", "titan-compressed", "zipg")


def fits_matrix():
    matrix = {}
    for dataset_name in DATASETS:
        budget = MemoryBudget(dataset_budget(dataset_name))
        matrix[dataset_name] = {
            system: budget.fits(
                cached_system(system, dataset_name).storage_footprint_bytes()
            )
            for system in SYSTEMS
        }
    return matrix


def test_table5_memory_fit(benchmark):
    matrix = benchmark.pedantic(fits_matrix, rounds=1, iterations=1)
    rows = [
        [name] + ["yes" if matrix[name][s] else "NO" for s in SYSTEMS]
        for name in matrix
    ]
    print(format_table("Table 5: fits completely in memory", ["dataset"] + list(SYSTEMS), rows))

    # Row 1: orkut-scale fits for everyone.
    for system in SYSTEMS:
        assert matrix["orkut"][system], f"{system} should fit orkut"
        assert matrix["linkbench-small"][system]
    # Row 2: twitter-scale fits for all but Neo4j.
    assert not matrix["twitter"]["neo4j"]
    for system in ("titan", "titan-compressed", "zipg"):
        assert matrix["twitter"][system], f"{system} should fit twitter"
    assert not matrix["linkbench-medium"]["neo4j"]
    # Row 3: uk-scale -- ZipG is the only system that (essentially)
    # keeps its representation in memory.
    assert matrix["uk"]["zipg"]
    assert not matrix["uk"]["neo4j"]
    assert not matrix["uk"]["titan"]
    # linkbench-large: nobody fits (the uk-paired row); ZipG's lower
    # LinkBench compressibility costs it residency too -- the paper's
    # explanation for its obj_get drop at this scale (§5.2).
    for system in SYSTEMS:
        assert not matrix["linkbench-large"][system], f"{system} fits linkbench-large"

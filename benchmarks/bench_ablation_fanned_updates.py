"""Ablation: fanned-update pointers vs broadcast-to-all-shards (§3.5).

After a stream of updates fragments nodes across shards, compare the
shards touched per edge query when following update pointers against
the broadcast alternative (query every shard). The paper's argument:
most queries need only a small subset of shards, so broadcast wastes
CPU on every other shard.
"""

from conftest import EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.bench.systems import ZipGSystem
from repro.core import ZipG
from repro.workloads import LinkBenchWorkload

NUM_SHARDS = 16
QUERIES = 200


def prepare_store():
    graph = build_dataset("linkbench-small")
    store = ZipG.compress(
        graph, num_shards=NUM_SHARDS, alpha=32,
        logstore_threshold_bytes=8000,
        extra_property_ids=list(EXTRA_PROPERTY_IDS),
    )
    system = ZipGSystem(store)
    workload = LinkBenchWorkload(graph, seed=5)
    for operation in workload.operations(2500):  # fragment the store
        operation.run(system)
    return store, graph


def measure(store, graph):
    node_ids = graph.node_ids()
    rng_nodes = node_ids[:QUERIES]
    # Fanned updates: shards actually consulted per (node, type) query.
    pointered = 0.0
    for node in rng_nodes:
        pointered += len(store._edge_locations(node, 0))
    pointered /= QUERIES
    broadcast = store.num_shards  # every shard, every query
    # Storage cost of the pointer tables that buy this saving.
    pointer_bytes = sum(
        table.serialized_size_bytes() for table in store._pointer_tables
    )
    return pointered, broadcast, pointer_bytes


def test_ablation_fanned_updates(benchmark):
    def run():
        store, graph = prepare_store()
        return measure(store, graph) + (store.freeze_count, store.storage_footprint_bytes())

    pointered, broadcast, pointer_bytes, freezes, footprint = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(format_table(
        "Ablation: fanned updates vs broadcast",
        ["strategy", "shards touched/query"],
        [
            ("update pointers", f"{pointered:.2f}"),
            ("broadcast", f"{broadcast}"),
        ],
    ))
    print(f"pointer-table overhead: {pointer_bytes} bytes; freezes: {freezes}")

    assert freezes >= 2  # fragmentation actually happened
    # Pointers touch a small fraction of what broadcast would.
    assert pointered < 0.3 * broadcast
    # And their storage overhead is tiny relative to the store (§3.5:
    # "the overhead of storing and updating these pointers is minimal").
    assert pointer_bytes < 0.05 * footprint

"""Ablation: LogStore freeze threshold (§3.5's amortization knob).

A small threshold freezes often: less uncompressed data resident but
more shards, hence more fragments per node and more pointer-chasing
per read. A large threshold is the reverse. This bench sweeps the
threshold under a fixed write stream and reports both sides.
"""

from conftest import COST_MODEL, EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.harness import run_mixed_workload
from repro.bench.reporting import format_table
from repro.bench.systems import ZipGSystem
from repro.core import ZipG
from repro.workloads import LinkBenchWorkload

THRESHOLDS = (4_000, 16_000, 64_000)
WRITE_OPS = 1500
READ_OPS = 200


def run_threshold(threshold):
    graph = build_dataset("linkbench-small")
    store = ZipG.compress(
        graph, num_shards=8, alpha=32,
        logstore_threshold_bytes=threshold,
        extra_property_ids=list(EXTRA_PROPERTY_IDS),
    )
    system = ZipGSystem(store)
    for operation in LinkBenchWorkload(graph, seed=8).operations(WRITE_OPS):
        operation.run(system)
    fragments = [store.node_fragment_count(n) for n in graph.node_ids()]
    read_result = run_mixed_workload(
        system,
        LinkBenchWorkload(graph, seed=9).operations(READ_OPS),
        COST_MODEL,
        budget_bytes=10 * store.storage_footprint_bytes(),
    )
    return {
        "threshold": threshold,
        "freezes": store.freeze_count,
        "shards": store.num_shards,
        "avg_fragments": sum(fragments) / len(fragments),
        "logstore_bytes": store.logstore.serialized_size_bytes(),
        "read_latency_us": read_result.avg_latency_us,
    }


def test_ablation_logstore_threshold(benchmark):
    results = benchmark.pedantic(
        lambda: [run_threshold(t) for t in THRESHOLDS], rounds=1, iterations=1
    )
    rows = [
        (r["threshold"], r["freezes"], r["shards"], f"{r['avg_fragments']:.2f}",
         r["logstore_bytes"], f"{r['read_latency_us']:.1f}")
        for r in results
    ]
    print(format_table(
        "Ablation: LogStore freeze threshold",
        ["threshold B", "freezes", "shards", "avg frags", "log bytes", "read us"],
        rows,
    ))
    small, _, large = results
    # Smaller threshold -> more freezes, more shards, more fragmentation.
    assert small["freezes"] > large["freezes"]
    assert small["shards"] > large["shards"]
    assert small["avg_fragments"] >= large["avg_fragments"]
    # Larger threshold -> more uncompressed LogStore bytes resident.
    assert large["logstore_bytes"] > small["logstore_bytes"]

"""Table 4: datasets used in the evaluation.

Regenerates the dataset inventory (nodes, edges, raw on-disk size) for
the six scaled analogues and checks the size proportions the paper's
datasets exhibit (small : medium : large mirroring orkut : twitter :
uk).
"""

from repro.bench.datasets import DATASETS, LINKBENCH, REAL_WORLD, build_dataset
from repro.bench.reporting import format_table


def collect_rows():
    rows = []
    for name in DATASETS:
        graph = build_dataset(name)
        rows.append(
            (name, graph.num_nodes, graph.num_edges,
             f"{graph.on_disk_size_bytes() / 1e6:.2f} MB", DATASETS[name].kind)
        )
    return rows


def test_table4_dataset_inventory(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    print(format_table(
        "Table 4: datasets (scaled analogues)",
        ["dataset", "#nodes", "#edges", "raw size", "type"],
        rows,
    ))
    sizes = {row[0]: build_dataset(row[0]).on_disk_size_bytes() for row in rows}
    # Real-world sizes strictly increase orkut -> twitter -> uk.
    assert sizes["orkut"] < sizes["twitter"] < sizes["uk"]
    # LinkBench datasets mirror the real-world proportions.
    assert sizes["linkbench-small"] < sizes["linkbench-medium"] < sizes["linkbench-large"]
    for real, linkbench in zip(REAL_WORLD, LINKBENCH):
        ratio = sizes[linkbench] / sizes[real]
        assert 0.4 < ratio < 1.6, f"{linkbench} should be size-comparable to {real}"

"""Figure 11 (Appendix A): fragmentation over time.

Average and maximum shards-per-node as a function of executed queries:
both grow as more updates land in successive LogStore incarnations.
"""

import numpy as np
from conftest import EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.bench.systems import ZipGSystem
from repro.core import ZipG
from repro.workloads import LinkBenchWorkload

NUM_SHARDS = 40
CHECKPOINTS = 8
OPS_PER_CHECKPOINT = 600


def run_timeline():
    graph = build_dataset("linkbench-large")
    store = ZipG.compress(
        graph, num_shards=NUM_SHARDS, alpha=32,
        logstore_threshold_bytes=5000,
        extra_property_ids=list(EXTRA_PROPERTY_IDS),
    )
    system = ZipGSystem(store)
    workload = LinkBenchWorkload(graph, seed=9)
    node_ids = graph.node_ids()
    timeline = []
    for checkpoint in range(1, CHECKPOINTS + 1):
        for operation in workload.operations(OPS_PER_CHECKPOINT):
            operation.run(system)
        counts = np.array([store.node_fragment_count(n) for n in node_ids])
        timeline.append(
            (checkpoint * OPS_PER_CHECKPOINT, float(counts.mean()), int(counts.max()))
        )
    return store, timeline


def test_figure11_fragmentation_over_time(benchmark):
    store, timeline = benchmark.pedantic(run_timeline, rounds=1, iterations=1)
    print(format_table(
        "Figure 11: fragmentation vs queries executed",
        ["#queries", "avg shards/node", "most fragmented"],
        timeline,
    ))
    averages = [row[1] for row in timeline]
    maxima = [row[2] for row in timeline]
    # Both series are (weakly) monotone and strictly grow end to end.
    assert all(a <= b + 1e-9 for a, b in zip(averages, averages[1:]))
    assert all(a <= b for a, b in zip(maxima, maxima[1:]))
    assert averages[-1] > averages[0]
    assert maxima[-1] > maxima[0]
    # The LogStore actually rolled over multiple times (the mechanism
    # that creates fragments in the first place).
    assert store.freeze_count >= 3

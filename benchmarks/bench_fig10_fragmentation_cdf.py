"""Figure 10 (Appendix A): CDF of per-node fragmentation.

The paper partitions the large LinkBench dataset across 40 shards, runs
LinkBench queries with an 8 GB LogStore threshold, and snapshots after
0.5/1/2 B queries. Scaled analogue: 40 shards, a small threshold, and
snapshots at three query counts. Shape: for >99% of nodes the data is
fragmented across a small (<10% of shards) but non-trivial number of
shards -- exactly the regime where fanned-update pointers beat both
broadcast and single-shard assumptions.
"""

import numpy as np
from conftest import EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.bench.systems import ZipGSystem
from repro.core import ZipG
from repro.workloads import LinkBenchWorkload

NUM_SHARDS = 40
SNAPSHOT_OPS = (2000, 4000, 8000)
LOGSTORE_THRESHOLD = 40000  # bytes; scaled stand-in for the paper's 8 GB


def run_fragmentation():
    graph = build_dataset("linkbench-large")
    store = ZipG.compress(
        graph, num_shards=NUM_SHARDS, alpha=32,
        logstore_threshold_bytes=LOGSTORE_THRESHOLD,
        extra_property_ids=list(EXTRA_PROPERTY_IDS),
    )
    system = ZipGSystem(store)
    workload = LinkBenchWorkload(graph, seed=3)
    node_ids = graph.node_ids()
    snapshots = {}
    executed = 0
    for target in SNAPSHOT_OPS:
        for operation in workload.operations(target - executed):
            operation.run(system)
        executed = target
        counts = np.array([store.node_fragment_count(n) for n in node_ids])
        snapshots[target] = counts
    return store, snapshots


def cdf_points(counts, total_shards):
    fractions = counts / total_shards
    return {
        "p50": float(np.percentile(fractions, 50)),
        "p99": float(np.percentile(fractions, 99)),
        "p99.9": float(np.percentile(fractions, 99.9)),
        "max": float(fractions.max()),
    }


def test_figure10_fragmentation_cdf(benchmark):
    store, snapshots = benchmark.pedantic(run_fragmentation, rounds=1, iterations=1)
    total_shards = store.num_shards
    rows = []
    for ops, counts in snapshots.items():
        points = cdf_points(counts, total_shards)
        rows.append([f"{ops} ops", points["p50"], points["p99"], points["p99.9"], points["max"]])
    print(format_table(
        f"Figure 10: fraction of {total_shards} shards a node spans",
        ["snapshot", "p50", "p99", "p99.9", "max"], rows,
    ))

    final = snapshots[SNAPSHOT_OPS[-1]]
    # The paper's headline: >99% of nodes span < 10% of the shards...
    assert np.percentile(final / total_shards, 99) < 0.10
    # ...but fragmentation is non-trivial: some nodes DO span multiple
    # shards (broadcast would be wasteful, single-shard reads wrong).
    assert final.max() > 1
    # Fragmentation grows monotonically across snapshots (Fig. 10's
    # right-shifting CDFs).
    means = [snapshots[ops].mean() for ops in SNAPSHOT_OPS]
    assert means[0] <= means[1] <= means[2]
    assert means[2] > means[0]

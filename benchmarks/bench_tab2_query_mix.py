"""Table 2: TAO / LinkBench query mixes.

Verifies the generated operation streams reproduce the published
production percentages (the inputs every throughput figure depends on).
"""

from collections import Counter

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.workloads import LINKBENCH_MIX, LinkBenchWorkload, TAO_MIX, TAOWorkload

SAMPLE_OPS = 8000


def empirical_mix(workload):
    counts = Counter(op.name for op in workload.operations(SAMPLE_OPS))
    return {name: 100.0 * counts.get(name, 0) / SAMPLE_OPS for name in TAO_MIX}


def test_table2_query_mixes(benchmark):
    graph = build_dataset("orkut")

    def run():
        return (
            empirical_mix(TAOWorkload(graph, seed=2)),
            empirical_mix(LinkBenchWorkload(graph, seed=2)),
        )

    tao, linkbench = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, TAO_MIX[name], tao[name], LINKBENCH_MIX[name], linkbench[name])
        for name in TAO_MIX
    ]
    print(format_table(
        "Table 2: query mix (published % vs generated %)",
        ["query", "TAO pub", "TAO gen", "LB pub", "LB gen"], rows,
    ))

    for name in TAO_MIX:
        # Within 1.5 percentage points of the published distribution.
        assert abs(tao[name] - TAO_MIX[name]) < 1.5, name
        assert abs(linkbench[name] - LINKBENCH_MIX[name]) < 1.5, name

"""Ablation: single system-wide LogStore vs per-shard LogStores (§3.5).

The per-shard alternative must over-provision every server with
LogStore capacity; the single LogStore provisions once. This bench
replays the same write stream both ways and compares the memory that
must be reserved, plus verifies that the single-LogStore design keeps
compressed shards untouched by writes (no decompress/re-compress).
"""

from conftest import EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.bench.systems import ZipGSystem
from repro.core import ZipG
from repro.core.logstore import LogStore
from repro.workloads import LinkBenchWorkload

NUM_SHARDS = 16
WRITE_OPS = 1200


def test_ablation_single_vs_per_shard_logstore(benchmark):
    def run():
        graph = build_dataset("linkbench-small")
        store = ZipG.compress(
            graph, num_shards=NUM_SHARDS, alpha=32,
            logstore_threshold_bytes=1 << 30,  # never freeze: observe raw load
            extra_property_ids=list(EXTRA_PROPERTY_IDS),
        )
        system = ZipGSystem(store)
        workload = LinkBenchWorkload(graph, seed=12)
        for operation in workload.operations(WRITE_OPS):
            operation.run(system)
        # Mirror the accumulated writes into hypothetical per-shard
        # LogStores to see how load would distribute.
        per_shard = [LogStore() for _ in range(NUM_SHARDS)]
        for (src, _), bucket in store.logstore._edges.items():
            for edge in bucket:
                per_shard[store.route(src)].append_edge(edge)
        for node_id, properties in store.logstore._nodes.items():
            per_shard[store.route(node_id)].append_node(node_id, dict(properties))
        return store, per_shard

    store, per_shard = benchmark.pedantic(run, rounds=1, iterations=1)
    single_bytes = store.logstore.serialized_size_bytes()
    # Per-shard provisioning: every shard must reserve capacity for the
    # *hottest* shard's load (capacity is provisioned, not elastic).
    peak = max(shard.size_bytes() for shard in per_shard)
    provisioned = peak * NUM_SHARDS

    print(format_table(
        "Ablation: LogStore placement",
        ["design", "memory reserved (B)"],
        [
            ("single LogStore (paper)", single_bytes),
            (f"per-shard x{NUM_SHARDS} (peak-provisioned)", provisioned),
        ],
    ))
    # One LogStore needs far less reserved memory than peak-provisioning
    # every shard (the §3.5 memory-efficiency argument).
    assert single_bytes < provisioned
    # And the immutable compressed shards were never rebuilt: no
    # decompress/re-compress interference with ongoing reads.
    assert store.freeze_count == 0
    assert store.num_shards == NUM_SHARDS

"""Ablation: eager vs mmap snapshot loading (§4.1 startup path).

The zero-copy claim, measured: ``load_store(mode="mmap")`` maps each
generation-numbered shard file once and builds shards as views, so its
cost is O(#files) while eager loading reads, CRC-checks, and copies
every payload byte.  Two machine-independent ratios gate the property:

* ``storage.mmap_load_speedup`` -- eager wall time / mmap wall time on
  the *same* saved store.  Must stay well above 1; it grows with store
  size precisely because mmap load time does not.
* ``storage.mmap_rss_ratio`` -- bytes the mmap path copies into the
  heap (the mutable deletion bitmaps, the only owned state) over total
  mapped shard bytes.  Pins the "load time independent of shard bytes"
  acceptance: a hidden copy creeping into a decode path drags this
  toward 1 (and COPY001 should have caught it first).

Query-result parity between the two modes is asserted here on live
queries, and exhaustively (per byte, per query class, under chaos) in
``tests/test_mmap_store.py``.
"""

import time

from conftest import record_bench

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.core import ZipG
from repro.core.persistence import load_store, save_store

ROUNDS = 5


def _build_saved_store(tmp_root):
    graph = build_dataset("orkut")
    store = ZipG.compress(graph, num_shards=4, alpha=32,
                          logstore_threshold_bytes=1 << 30)
    save_store(store, tmp_root)
    return store


def _time_loads(root):
    """Best-of-ROUNDS wall time for each load mode (seconds)."""
    timings = {}
    for mode in ("eager", "mmap"):
        best = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            loaded = load_store(root, attach_wal=False, mode=mode)
            best = min(best, time.perf_counter() - start)
        timings[mode] = (best, loaded)
    return timings


def test_ablation_mmap_load(benchmark, tmp_path):
    root = str(tmp_path / "db")

    def run():
        store = _build_saved_store(root)
        return store, _time_loads(root)

    store, timings = benchmark.pedantic(run, rounds=1, iterations=1)
    eager_s, eager_store = timings["eager"]
    mmap_s, mmap_store = timings["mmap"]

    speedup = eager_s / mmap_s
    # The only bytes the mmap path owns are the mutable deletion
    # bitmaps each shard copies out of its sections; everything else
    # stays in the page cache behind the maps.
    copied = sum(
        shard.deletions._nodes.serialized_size_bytes()
        + shard.deletions._edges.serialized_size_bytes()
        for shard in mmap_store.shards
    )
    rss_ratio = copied / mmap_store.mapped_bytes

    print(format_table(
        "Ablation: snapshot load path (orkut, 4 shards)",
        ["mode", "load ms", "heap bytes", "mapped bytes"],
        [
            ("eager", f"{eager_s * 1e3:.2f}", f"{mmap_store.mapped_bytes}", "0"),
            ("mmap", f"{mmap_s * 1e3:.2f}", f"{copied}",
             f"{mmap_store.mapped_bytes}"),
        ],
    ))

    # Parity on live queries (the exhaustive matrix lives in tests/).
    sample = sorted(
        {node_id for shard in store.shards for node_id in shard.node_file.node_ids()}
    )[:25]
    for node_id in sample:
        assert mmap_store.get_node_property(node_id) == \
            eager_store.get_node_property(node_id)
        assert mmap_store.get_neighbor_ids(node_id) == \
            eager_store.get_neighbor_ids(node_id)

    assert mmap_store.load_mode == "mmap"
    assert mmap_store.mapped_bytes > 0
    # mmap load must be decisively cheaper than reading + CRC-checking
    # + copying every byte, and must copy almost nothing.
    assert speedup > 2.0, speedup
    assert rss_ratio < 0.05, rss_ratio

    record_bench("ablation_mmap", gate={
        "storage.mmap_load_speedup": (speedup, "higher_better"),
        "storage.mmap_rss_ratio": (rss_ratio, "lower_better"),
    })

"""Ablation: erasure-coded placement vs full replication (§4.1).

Pins the two numbers the erasure-coding issue promises.  First the
*storage-overhead ratio*: Reed-Solomon (k=4, m=2) stores ~1.5x the
snapshot bytes where the paper's fault-tolerance baseline -- three
full replicas -- stores 3.0x, so the gate asserts the encoded layout
stays below 2.0x.  Second the *degraded-read p95 ratio*: with one of
three servers failed, a TAO-style read mix keeps returning **complete**
answers by reconstructing the dead server's shards from surviving
fragments, and its steady-state p95 (reconstructed shards are cached
and kept oplog-fresh) is pinned as a ratio over the healthy p95 --
never an absolute wall time, so the gate is machine independent.
"""

import time

import numpy as np

from conftest import record_bench

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.core import ZipG
from repro.core.persistence import save_store
from repro.cluster import ReplicatedZipGCluster
from repro.ec import ErasureCodedSnapshots

NUM_SERVERS = 3
EC_K = 4
EC_M = 2
REPLICA_BASELINE = 3  # the paper's fault-tolerance story: full copies
OPS = 400
ZIPF_A = 2.0


def _zipf_mix(graph, ops, seed):
    """A deterministic Zipf-skewed (node, op-kind) read sequence."""
    nodes = sorted(graph.node_ids())
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(ZIPF_A, size=ops), len(nodes)) - 1
    kinds = rng.integers(0, 2, size=ops)
    return [(nodes[int(rank)], int(kind)) for rank, kind in zip(ranks, kinds)]


def _run_mix(cluster, mix):
    """(per-op wall latencies ns, answers) for one replay of the mix."""
    latencies = np.empty(len(mix), dtype=np.int64)
    answers = []
    for index, (node, kind) in enumerate(mix):
        start = time.perf_counter_ns()
        if kind == 0:
            answers.append(cluster.get_node_property(node))
        else:
            answers.append(cluster.get_neighbor_ids(node))
        latencies[index] = time.perf_counter_ns() - start
    return latencies, answers


def test_ablation_erasure_coding(benchmark, tmp_path):
    def run():
        graph = build_dataset("orkut")
        store = ZipG.compress(graph, num_shards=4, alpha=32,
                              logstore_threshold_bytes=1 << 30)
        root = str(tmp_path / "snap")
        save_store(store, root)
        snaps = ErasureCodedSnapshots.encode_snapshot(
            root, str(tmp_path / "ec"),
            num_servers=NUM_SERVERS, k=EC_K, m=EC_M,
        )
        cluster = ReplicatedZipGCluster(
            store, num_servers=NUM_SERVERS,
            placement="ec", ec_snapshots=snaps,
        )
        mix = _zipf_mix(graph, OPS, seed=11)

        _run_mix(cluster, mix)  # warm the healthy path
        healthy_lat, healthy_answers = _run_mix(cluster, mix)

        cluster.fail_server(1)
        _run_mix(cluster, mix)  # warm: reconstruct + cache the lost shards
        degraded_lat, degraded_answers = _run_mix(cluster, mix)
        return snaps, healthy_lat, healthy_answers, degraded_lat, \
            degraded_answers

    snaps, healthy_lat, healthy_answers, degraded_lat, degraded_answers = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    manifest = snaps.manifest
    overhead_ratio = manifest.storage_bytes() / manifest.data_bytes()
    p95_ratio = float(
        np.percentile(degraded_lat, 95) / np.percentile(healthy_lat, 95)
    )

    print(format_table(
        "Ablation: erasure coding vs replication (TAO read mix)",
        ["layout", "storage ratio", "read p95 us", "complete under 1 loss"],
        [
            (f"{REPLICA_BASELINE} full replicas",
             f"{float(REPLICA_BASELINE):.2f}x", "-", "yes"),
            (f"RS(k={EC_K}, m={EC_M}) healthy", f"{overhead_ratio:.2f}x",
             f"{np.percentile(healthy_lat, 95) / 1e3:.1f}", "-"),
            (f"RS(k={EC_K}, m={EC_M}) 1 server down",
             f"{overhead_ratio:.2f}x",
             f"{np.percentile(degraded_lat, 95) / 1e3:.1f}", "yes"),
        ],
    ))

    record_bench("ablation_erasure", gate={
        "ec.storage_overhead_ratio": (overhead_ratio, "lower_better"),
        "ec.degraded_read_p95_ratio": (p95_ratio, "lower_better"),
    })

    # The acceptance bar: availability at sub-2x storage where full
    # replication pays 3x -- with *complete* (identical) answers while
    # a server is down, not partial_results degradation.
    assert overhead_ratio < 2.0 < REPLICA_BASELINE, overhead_ratio
    assert degraded_answers == healthy_answers

"""Open-loop gateway load test: latency vs offered load, shed behavior.

Drives the TAO mix (Table 2 percentages) through the async gateway at
three offered loads anchored to a measured closed-loop capacity
estimate -- below saturation (0.5x), at saturation (1.0x), and past it
(2.0x) -- plus a no-gateway control straight at the submission seam.
The artifact (``BENCH_gateway_loadtest.json``) carries the full
latency-vs-offered-load curve; the gates pin ratios only:

* the gateway's p99 overhead below saturation (vs the direct path);
* the served fraction below saturation (admission must be invisible
  when there is capacity);
* the handled fraction above saturation (every request ends
  structurally -- a result or a typed ``RetryAfter``, never a stall
  or an unstructured error);
* the shed fraction above saturation (overload must actually shed --
  a gateway that queues without bound "passes" every latency gate
  right up until it falls over).
"""

from conftest import record_bench

from repro.bench.loadtest import (
    admission_config_for,
    build_backend,
    build_load_graph,
    direct_point,
    gateway_closed_loop_capacity,
    gateway_point,
    tao_calls,
)
from repro.bench.reporting import format_table

CAPACITY_OPS = 400
WARMUP_OPS = 200
POINT_OPS = 800
#: Offered loads as fractions of the gateway's measured closed-loop
#: capacity.  Anchoring to the *gateway's* saturation point (not the
#: bare submission seam's, which is higher) is what makes "below
#: saturation" honest.  The overload point sits at 2x because the
#: closed-loop estimate is itself noisy (it self-throttles, so it
#: *under*-states true capacity): at 1.5x a fast run can absorb most
#: of the nominal excess, while 2x sheds decisively on every machine.
LOAD_FRACTIONS = (0.5, 1.0, 2.0)
BELOW, AT, ABOVE = LOAD_FRACTIONS


def test_gateway_open_loop_curve(benchmark):
    # Not named ``run``: the analyzer's name-fallback would bind a
    # closure of that name to ``contextvars.Context.run`` fan-out
    # sites and pull this whole driver into the threaded region.
    def measure():
        graph = build_load_graph()
        backend = build_backend(graph)
        try:
            capacity = gateway_closed_loop_capacity(
                backend, tao_calls(graph, CAPACITY_OPS, seed=3)
            )
            calls = tao_calls(graph, POINT_OPS, seed=7)
            config = admission_config_for(capacity)
            # Warm both paths (event-loop spin-up, first-touch costs)
            # before anything is measured.
            gateway_point(backend, calls[:WARMUP_OPS],
                          capacity * BELOW, config)
            direct_point(backend, calls[:WARMUP_OPS], capacity * BELOW)
            curve = [
                gateway_point(backend, calls, capacity * fraction, config)
                for fraction in LOAD_FRACTIONS
            ]
            direct = direct_point(backend, calls, capacity * BELOW)
        finally:
            backend.close_submitter()
        return capacity, curve, direct

    capacity, curve, direct = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    below_point, at_point, above_point = curve

    print(format_table(
        f"Gateway open-loop TAO curve (capacity ~{capacity:.0f} rps)",
        ["offered", "rps", "p50 ms", "p99 ms", "served", "shed"],
        [
            (f"direct {BELOW:.1f}x", f"{direct.offered_load:.0f}",
             f"{direct.p50_ms:.2f}", f"{direct.p99_ms:.2f}",
             f"{direct.completed}/{direct.offered}", "-"),
        ] + [
            (f"gateway {fraction:.1f}x", f"{point.offered_load:.0f}",
             f"{point.p50_ms:.2f}", f"{point.p99_ms:.2f}",
             f"{point.completed}/{point.offered}",
             f"{point.shed_fraction:.2f}")
            for fraction, point in zip(LOAD_FRACTIONS, curve)
        ],
    ))

    p99_overhead = (below_point.p99_ms / direct.p99_ms
                    if direct.p99_ms > 0 else 1.0)

    record_bench(
        "gateway_loadtest",
        result={
            "capacity_rps": capacity,
            "direct": direct.to_payload(),
            "curve": [point.to_payload() for point in curve],
        },
        gate={
            "gateway.p99_overhead_below_saturation":
                (p99_overhead, "lower_better"),
            "gateway.served_fraction_below_saturation":
                (below_point.handled_fraction, "higher_better"),
            "gateway.handled_fraction_above_saturation":
                (above_point.handled_fraction, "higher_better"),
            "gateway.shed_fraction_above_saturation":
                (above_point.shed_fraction, "higher_better"),
        },
    )

    # Structural acceptance, independent of machine speed: nothing may
    # end unstructured at any offered load, and overload must shed.
    for point in curve:
        assert point.errors == 0, point.to_payload()
        assert point.handled_fraction == 1.0, point.to_payload()
    assert direct.errors == 0
    # Below saturation the gateway is effectively transparent: nothing
    # shed, and p99 within small-integer multiples of the direct path
    # (the CI gate pins the measured ratio; this bound only catches a
    # pathological pileup).
    assert below_point.shed == 0, below_point.to_payload()
    assert p99_overhead < 6.0, p99_overhead
    # Past saturation the excess is shed with the typed error.
    assert above_point.shed_fraction > 0.05, above_point.to_payload()

"""Figure 14 (Appendix B.3): GS2/GS3 executed with and without joins.

ZipG supports both plans; the no-join plan (fetch neighbors, probe each
neighbor's properties by random access) beats the join plan (intersect
two sub-query result sets), because "Alice is likely to have much fewer
friends than the people living in Ithaca".

GS2 targets are sampled from person-scale nodes (bounded friend lists,
as for real users); at full scale the city sub-query's cardinality
dwarfs any node's degree, which is exactly the asymmetry the paper's
argument rests on.
"""

import numpy as np
import pytest
from conftest import COST_MODEL, cached_system, dataset_budget

from repro.bench.datasets import REAL_WORLD, build_dataset
from repro.bench.harness import run_mixed_workload
from repro.bench.reporting import format_table
from repro.workloads.base import Operation
from repro.workloads.graph_search import gs2_with_join, gs3_with_join
from repro.workloads.properties import CITIES, INTERESTS

OPS = 40
MAX_PERSON_DEGREE = 25


def person_nodes(graph, limit):
    nodes = [n for n in graph.node_ids() if graph.degree(n) <= MAX_PERSON_DEGREE]
    return nodes[:limit]


def gs2_operations(dataset_name, use_joins):
    graph = build_dataset(dataset_name)
    rng = np.random.default_rng(31)
    nodes = person_nodes(graph, 200)
    ops = []
    for _ in range(OPS):
        node = nodes[int(rng.integers(0, len(nodes)))]
        city = str(rng.choice(CITIES))
        if use_joins:
            ops.append(Operation(
                "GS2", lambda s, n=node, c=city: gs2_with_join(s, n, {"city": c}),
                target=node,
            ))
        else:
            ops.append(Operation(
                "GS2",
                lambda s, n=node, c=city: s.get_neighbor_ids(n, "*", {"city": c}),
                target=node,
            ))
    return ops


def gs3_operations(dataset_name, use_joins):
    rng = np.random.default_rng(31)
    ops = []
    for _ in range(OPS):
        city = str(rng.choice(CITIES))
        interest = str(rng.choice(INTERESTS))
        if use_joins:
            ops.append(Operation(
                "GS3",
                lambda s, c=city, i=interest: gs3_with_join(s, {"city": c}, {"interest": i}),
            ))
        else:
            ops.append(Operation(
                "GS3",
                lambda s, c=city, i=interest: s.get_node_ids({"city": c, "interest": i}),
            ))
    return ops


@pytest.mark.parametrize("query", ("GS2", "GS3"))
def test_figure14_joins_vs_no_joins(benchmark, query):
    make_ops = gs2_operations if query == "GS2" else gs3_operations

    def run():
        out = {}
        for dataset_name in REAL_WORLD:
            system = cached_system("zipg", dataset_name)
            budget = dataset_budget(dataset_name)
            plain = run_mixed_workload(
                system, make_ops(dataset_name, use_joins=False), COST_MODEL, budget,
                workload_name=f"{query} no-joins",
            )
            joined = run_mixed_workload(
                system, make_ops(dataset_name, use_joins=True), COST_MODEL, budget,
                workload_name=f"{query} joins",
            )
            out[dataset_name] = (plain.throughput_kops, joined.throughput_kops)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds, f"{plain:.0f}", f"{joined:.0f}"]
        for ds, (plain, joined) in results.items()
    ]
    print(format_table(f"Figure 14 ({query}): KOps", ["dataset", "no-joins", "with-joins"], rows))

    for dataset_name, (plain, joined) in results.items():
        if query == "GS2":
            # No-joins strictly wins GS2 everywhere (Fig. 14(a)).
            assert plain > joined, dataset_name
    if query == "GS3":
        # GS3's two plans are both search-bound; the no-join plan wins
        # (or ties) at scale (Fig. 14(b)).
        plain, joined = results["uk"]
        assert plain >= 0.95 * joined

"""Micro-benchmarks for the Succinct substrate (real wall-clock).

Unlike the figure benches (which price metered storage touches through
the cost model), these measure actual execution time of the compressed
primitives every ZipG query bottoms out in: compression, ``extract``,
``search``, and the NodeFile/EdgeFile operations built on them.
"""

import time

import numpy as np
import pytest
from conftest import record_bench

from repro.core.delimiters import DelimiterMap
from repro.core.nodefile import NodeFile
from repro.succinct import SuccinctFile
from repro.workloads.properties import TAOPropertyModel

TEXT_BYTES = 64 * 1024


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(5)
    model = TAOPropertyModel(rng)
    chunks = []
    size = 0
    while size < TEXT_BYTES:
        blob = " ".join(model.node_properties().values()).encode("utf-8")
        chunks.append(blob)
        size += len(blob)
    return b" ".join(chunks)[:TEXT_BYTES].replace(b"\x00", b" ")


@pytest.fixture(scope="module")
def compressed(corpus):
    return SuccinctFile(corpus, alpha=32)


def test_micro_compress_64kib(benchmark, corpus):
    result = benchmark.pedantic(
        lambda: SuccinctFile(corpus, alpha=32), rounds=3, iterations=1
    )
    assert result.original_size_bytes() == len(corpus)


def test_micro_extract_1kib(benchmark, compressed, corpus):
    """The vectorized extract kernel (one lockstep NPA walk)."""
    offsets = np.random.default_rng(1).integers(0, len(corpus) - 1024, 50)
    offset_iter = iter(offsets.tolist() * 100)

    def run():
        offset = next(offset_iter)
        return compressed.extract(offset, 1024)

    result = benchmark(run)
    assert len(result) == 1024


def test_micro_extract_scalar_1kib(benchmark, compressed, corpus):
    """Scalar baseline for the same extracts: one Python-level NPA hop
    per byte. The batched/scalar ratio is the kernel speedup."""
    offsets = np.random.default_rng(1).integers(0, len(corpus) - 1024, 50)
    offset_iter = iter(offsets.tolist() * 100)

    def run():
        offset = next(offset_iter)
        return compressed.extract_scalar(offset, 1024)

    result = benchmark(run)
    assert len(result) == 1024


def test_micro_search(benchmark, compressed, corpus):
    pattern = corpus[5_000:5_012]

    def run():
        return compressed.search(pattern)

    hits = benchmark(run)
    assert len(hits) >= 1


def test_micro_search_many_hits(benchmark, compressed, corpus):
    """Batched SA resolution over a large matching row range (the case
    the per-row scalar loop made linear in the hit count)."""
    pattern = corpus[5_000:5_002]
    assert compressed.count(pattern) > 50

    def run():
        return compressed.search(pattern)

    hits = benchmark(run)
    assert len(hits) > 50


def test_micro_search_scalar_many_hits(benchmark, compressed, corpus):
    """Scalar baseline for the many-hit search."""
    pattern = corpus[5_000:5_002]

    def run():
        return compressed.search_scalar(pattern)

    hits = benchmark(run)
    assert len(hits) > 50


def test_micro_kernel_counters_and_parity(compressed, corpus):
    """Not a timing bench: asserts the batched kernels actually ran
    batched (AccessStats counters) and match the scalar paths byte for
    byte on this corpus."""
    pattern = corpus[5_000:5_002]
    stats = compressed.stats
    before = stats.snapshot()
    batched = compressed.extract(2_048, 1_024)
    hits = compressed.search(pattern)
    delta = stats.delta_since(before)
    assert delta.batch_kernel_calls >= 2
    assert delta.npa_batched_hops > 0
    assert batched == compressed.extract_scalar(2_048, 1_024)
    assert (hits == compressed.search_scalar(pattern)).all()


def test_micro_count(benchmark, compressed, corpus):
    pattern = corpus[9_000:9_008]
    count = benchmark(lambda: compressed.count(pattern))
    assert count >= 1


def test_micro_kernel_speedup_artifact(compressed, corpus):
    """Self-timed (so it runs under ``--benchmark-disable`` in CI):
    records the batched-vs-scalar kernel speedups as the gate's
    machine-independent ratios. Both sides run on the same machine in
    the same process, so the ratio cancels absolute speed."""

    def best(fn, repeats=3):
        floor = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            floor = min(floor, time.perf_counter() - start)
        return floor

    offsets = np.random.default_rng(1).integers(
        0, len(corpus) - 1024, 8
    ).tolist()
    extract_batched = best(lambda: [compressed.extract(o, 1024) for o in offsets])
    extract_scalar = best(lambda: [compressed.extract_scalar(o, 1024) for o in offsets])
    pattern = corpus[5_000:5_002]
    search_batched = best(lambda: compressed.search(pattern))
    search_scalar = best(lambda: compressed.search_scalar(pattern))

    extract_speedup = extract_scalar / extract_batched
    search_speedup = search_scalar / search_batched
    record_bench(
        "micro_succinct",
        result={
            "workload": "micro_succinct",
            "extract_speedup_batched_over_scalar": extract_speedup,
            "search_speedup_batched_over_scalar": search_speedup,
            "extract_batched_seconds": extract_batched,
            "search_batched_seconds": search_batched,
        },
        gate={
            "micro.extract_speedup_batched_over_scalar":
                (extract_speedup, "higher_better"),
            "micro.search_speedup_batched_over_scalar":
                (search_speedup, "higher_better"),
        },
    )
    # The vectorized kernels must beat the per-byte/per-row Python
    # loops outright; the gate pins the (much larger) typical margin.
    assert extract_speedup > 1.0
    assert search_speedup > 1.0


def test_micro_nodefile_property_lookup(benchmark):
    rng = np.random.default_rng(2)
    model = TAOPropertyModel(rng)
    nodes = {i: model.node_properties() for i in range(100)}
    dmap = DelimiterMap(model.property_ids())
    node_file = NodeFile(nodes, dmap, alpha=32)
    node_iter = iter(list(range(100)) * 1000)

    def run():
        return node_file.get_property(next(node_iter), "city")

    value = benchmark(run)
    assert value is not None

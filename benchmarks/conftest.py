"""Shared fixtures for the benchmark suite.

Datasets and loaded systems are cached per pytest session so the many
figure benchmarks that share (system, dataset) pairs build each one
once. Systems are mutated slightly by write-bearing workloads -- as in
the paper's warmed-up steady state, this does not change any shape.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the paper-shape tables each benchmark prints.)
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.bench import artifacts
from repro.bench.datasets import DATASETS, build_dataset, memory_budget_bytes
from repro.bench.memory_model import CostModel
from repro.bench.systems import build_system
from repro.workloads import GraphSearchWorkload, LinkBenchWorkload, TAOWorkload

#: every PropertyID any workload may append post-compression (the
#: delimiter map is immutable, §3.3).
EXTRA_PROPERTY_IDS = tuple(
    ["city", "interest"] + [f"attr{i:02d}" for i in range(38)] + ["payload", "data"]
)

ZIPG_SHARDS = 4
ZIPG_ALPHA = 32

COST_MODEL = CostModel()


@lru_cache(maxsize=None)
def cached_system(system_name: str, dataset_name: str):
    """Build (once) a system loaded with a registry dataset."""
    graph = build_dataset(dataset_name)
    return build_system(
        system_name,
        graph,
        num_shards=ZIPG_SHARDS,
        alpha=ZIPG_ALPHA,
        extra_property_ids=list(EXTRA_PROPERTY_IDS),
    )


@lru_cache(maxsize=None)
def dataset_budget(dataset_name: str) -> int:
    return memory_budget_bytes(dataset_name, build_dataset(dataset_name))


def workload_for(dataset_name: str, seed: int = 0):
    """The paper's workload pairing: LinkBench datasets run LinkBench,
    real-world datasets run TAO."""
    graph = build_dataset(dataset_name)
    if DATASETS[dataset_name].kind == "linkbench":
        return LinkBenchWorkload(graph, seed=seed)
    return TAOWorkload(graph, seed=seed)


def graph_search_workload(dataset_name: str, seed: int = 0, use_joins: bool = False):
    return GraphSearchWorkload(build_dataset(dataset_name), seed=seed, use_joins=use_joins)


@pytest.fixture(scope="session")
def cost_model():
    return COST_MODEL


def record_bench(figure, result=None, gate=None):
    """Accumulate a result and/or gate ratios into the figure's
    ``BENCH_<figure>.json`` artifact (written at session end).

    ``gate`` maps metric name to ``(value, kind)`` where ``kind`` is
    ``"higher_better"`` or ``"lower_better"`` -- ratios only, never
    absolute wall times (the CI gate runs on arbitrary hardware).
    """
    rec = artifacts.recorder(figure)
    if result is not None:
        rec.add_result(result)
    for name, (value, kind) in (gate or {}).items():
        rec.add_gate_metric(name, value, kind)


def pytest_sessionfinish(session, exitstatus):
    """Flush every ``BENCH_*.json`` accumulated during the session."""
    for path in artifacts.write_all():
        print(f"\nwrote bench artifact {path}")

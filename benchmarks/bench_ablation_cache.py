"""Ablation: hot-set cache off vs on at two memory budgets.

Replays a TAO-style read mix (node-property gets + adjacency reads)
over a Zipf-skewed key distribution -- the access pattern ZipG's
interactive workloads exhibit (§5.1) -- three ways: cache off, cache on
at 10% of the compressed footprint, and cache on at a starvation budget
(~2%). Gates pin *ratios only* (mean and p95 speedups, the hit ratio),
never absolute wall times; the cache-off path runs through the exact
pre-cache code, so the off numbers double as the no-regression control.
"""

import time

import numpy as np

from conftest import record_bench

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.core import ZipG

OPS = 600
ZIPF_A = 2.0
FULL_BUDGET_FRACTION = 0.10
STARVED_BUDGET_FRACTION = 0.02


def _zipf_mix(graph, ops, seed):
    """A deterministic Zipf-skewed (node, op-kind) read sequence.

    Ranks beyond the node count are *clipped* to the coldest node, not
    wrapped -- wrapping would smear the heavy tail uniformly over every
    node and destroy the skew the cache is supposed to exploit.
    """
    nodes = sorted(graph.node_ids())
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(ZIPF_A, size=ops), len(nodes)) - 1
    kinds = rng.integers(0, 2, size=ops)
    return [(nodes[int(rank)], int(kind)) for rank, kind in zip(ranks, kinds)]


def _run_mix(store, mix):
    """Per-op wall latencies (ns) for one replay of the mix."""
    latencies = np.empty(len(mix), dtype=np.int64)
    for index, (node, kind) in enumerate(mix):
        start = time.perf_counter_ns()
        if kind == 0:
            store.get_node_property(node)
        else:
            store.get_neighbor_ids(node)
        latencies[index] = time.perf_counter_ns() - start
    return latencies


def test_ablation_cache_budgets(benchmark):
    def run():
        graph = build_dataset("orkut")
        store = ZipG.compress(graph, num_shards=4, alpha=32,
                              logstore_threshold_bytes=1 << 30)
        mix = _zipf_mix(graph, OPS, seed=7)
        footprint = store.storage_footprint_bytes()

        _run_mix(store, mix)  # warm the uncached path (page-ins, JIT)
        off = _run_mix(store, mix)

        on = {}
        for fraction in (FULL_BUDGET_FRACTION, STARVED_BUDGET_FRACTION):
            cache = store.enable_cache(int(footprint * fraction))
            _run_mix(store, mix)  # warm the hot set into the cache
            latencies = _run_mix(store, mix)
            on[fraction] = (latencies, cache.stats())
            store.disable_cache()
        return footprint, off, on

    footprint, off, on = benchmark.pedantic(run, rounds=1, iterations=1)

    full_lat, full_stats = on[FULL_BUDGET_FRACTION]
    starved_lat, starved_stats = on[STARVED_BUDGET_FRACTION]
    mean_speedup = float(off.mean() / full_lat.mean())
    p95_speedup = float(
        np.percentile(off, 95) / np.percentile(full_lat, 95)
    )
    starved_speedup = float(off.mean() / starved_lat.mean())

    print(format_table(
        "Ablation: hot-set cache (TAO read mix, Zipf keys)",
        ["config", "mean us", "p95 us", "hit ratio"],
        [
            ("cache off", f"{off.mean() / 1e3:.1f}",
             f"{np.percentile(off, 95) / 1e3:.1f}", "-"),
            (f"cache {FULL_BUDGET_FRACTION:.0%} of footprint",
             f"{full_lat.mean() / 1e3:.1f}",
             f"{np.percentile(full_lat, 95) / 1e3:.1f}",
             f"{full_stats['hit_ratio']:.3f}"),
            (f"cache {STARVED_BUDGET_FRACTION:.0%} of footprint",
             f"{starved_lat.mean() / 1e3:.1f}",
             f"{np.percentile(starved_lat, 95) / 1e3:.1f}",
             f"{starved_stats['hit_ratio']:.3f}"),
        ],
    ))

    record_bench("ablation_cache", gate={
        "cache_mean_speedup_10pct": (mean_speedup, "higher_better"),
        "cache_p95_speedup_10pct": (p95_speedup, "higher_better"),
        "cache_hit_ratio_10pct": (full_stats["hit_ratio"], "higher_better"),
    })

    # The acceptance bar: >= 2x lower mean latency at <= 10% of the
    # compressed store's size, on the skewed mix.
    assert full_stats["budget_bytes"] <= footprint * FULL_BUDGET_FRACTION
    assert mean_speedup >= 2.0, mean_speedup
    # Even a starved budget must never make reads slower than ~the
    # uncached path (the miss path adds one dict probe per read).
    assert starved_speedup > 0.5, starved_speedup

"""Figure 13 (Appendix B.2): breadth-first traversal latency.

Depth-5 BFS from 100 random roots on ZipG and Neo4j. Paper shape: when
the graph fits in memory (orkut) Neo4j is faster (ZipG pays the
compressed-execution and shard-aggregation overheads); when Neo4j's
representation spills (twitter), ZipG wins.
"""

from conftest import COST_MODEL, cached_system, dataset_budget

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.workloads import bfs_traversal
from repro.workloads.traversal import sample_roots

MAX_DEPTH = 5
NUM_ROOTS = 100


def traversal_latency_ms(system_name, dataset_name):
    system = cached_system(system_name, dataset_name)
    graph = build_dataset(dataset_name)
    roots = sample_roots(graph.node_ids(), count=NUM_ROOTS, seed=17)
    budget = dataset_budget(dataset_name)
    total_ns = 0.0
    for root in roots:
        before = system.aggregate_stats().snapshot()
        bfs_traversal(system, root, max_depth=MAX_DEPTH)
        delta = system.aggregate_stats().delta_since(before)
        total_ns += COST_MODEL.query_latency_ns(
            delta, system.storage_footprint_bytes(), budget
        )
    return total_ns / NUM_ROOTS / 1e6


def test_figure13_bfs_latency(benchmark):
    def run():
        return {
            ds: {
                s: traversal_latency_ms(s, ds)
                for s in ("zipg", "neo4j-tuned")
            }
            for ds in ("orkut", "twitter")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds, f"{results[ds]['zipg']:.2f} ms", f"{results[ds]['neo4j-tuned']:.2f} ms"]
        for ds in results
    ]
    print(format_table("Figure 13: avg BFS latency (depth 5, 100 roots)",
                       ["dataset", "zipg", "neo4j"], rows))

    # orkut (fits for both): Neo4j faster.
    assert results["orkut"]["neo4j-tuned"] < results["orkut"]["zipg"]
    # twitter (Neo4j spills): ZipG faster.
    assert results["twitter"]["zipg"] < results["twitter"]["neo4j-tuned"]

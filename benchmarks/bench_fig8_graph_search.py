"""Figure 8: single-server Graph Search throughput + GS1-GS5.

Paper shape: overall throughput below TAO (search queries are heavier);
on the in-memory dataset Neo4j-Tuned *beats* ZipG (its global indexes
answer searches without scans, while ZipG pays the compressed-execution
overhead and touches all partitions for GS3) -- but as data outgrows
memory the ordering flips and ZipG ends up ~3x ahead of Neo4j-Tuned.
"""

import pytest
from conftest import COST_MODEL, cached_system, dataset_budget, graph_search_workload

from repro.bench.datasets import REAL_WORLD
from repro.bench.harness import run_mixed_workload, run_query_class
from repro.bench.reporting import format_table
from repro.workloads.graph_search import GRAPH_SEARCH_QUERIES

SYSTEMS = ("zipg", "neo4j", "neo4j-tuned", "titan", "titan-compressed")
MIXED_OPS = 150
QUERY_OPS = 40


def test_figure8_graph_search_mixed(benchmark):
    def run():
        return {
            ds: {
                s: run_mixed_workload(
                    cached_system(s, ds),
                    graph_search_workload(ds, seed=7).operations(MIXED_OPS),
                    COST_MODEL, dataset_budget(ds), workload_name="graph-search",
                )
                for s in SYSTEMS
            }
            for ds in REAL_WORLD
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds] + [f"{results[ds][s].throughput_kops:.0f}" for s in SYSTEMS]
        for ds in REAL_WORLD
    ]
    print(format_table("Figure 8: Graph Search throughput (KOps)",
                       ["dataset"] + list(SYSTEMS), rows))

    kops = {ds: {s: results[ds][s].throughput_kops for s in SYSTEMS} for ds in REAL_WORLD}
    # orkut (fits in memory): Neo4j-Tuned ahead of ZipG -- the paper's
    # "overheads of executing queries on compressed graphs".
    assert kops["orkut"]["neo4j-tuned"] > kops["orkut"]["zipg"]
    # uk: the ordering flips; ZipG ahead of everyone (paper: ~3x over
    # Neo4j-Tuned; more against the rest).
    for other in ("neo4j", "neo4j-tuned", "titan", "titan-compressed"):
        assert kops["uk"]["zipg"] > 3 * kops["uk"][other], other


@pytest.mark.parametrize("query", GRAPH_SEARCH_QUERIES)
def test_figure8_component_queries(benchmark, query):
    """Figures 8(a)-(e): GS1-GS5 in isolation."""
    def run():
        out = {}
        for dataset_name in ("orkut", "uk"):
            workload = graph_search_workload(dataset_name, seed=21)
            out[dataset_name] = {
                s: run_query_class(
                    cached_system(s, dataset_name), workload, query, QUERY_OPS,
                    COST_MODEL, dataset_budget(dataset_name),
                )
                for s in SYSTEMS
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds] + [f"{results[ds][s].throughput_kops:.0f}" for s in SYSTEMS]
        for ds in results
    ]
    print(format_table(f"Figure 8 ({query})", ["dataset"] + list(SYSTEMS), rows))

    uk = {s: results["uk"][s].throughput_kops for s in SYSTEMS}
    orkut = {s: results["orkut"][s].throughput_kops for s in SYSTEMS}
    if query == "GS3":
        # Search on node attributes: ZipG touches all partitions while
        # the others use global indexes -- ZipG comparable-or-worse on
        # the small dataset, ahead once indexes spill (§5.2).
        assert orkut["neo4j-tuned"] > orkut["zipg"]
        assert uk["zipg"] > uk["neo4j-tuned"]
        assert uk["zipg"] > uk["titan"]
    else:
        # Random-access queries: ZipG's advantage grows with scale.
        assert (uk["zipg"] / uk["neo4j-tuned"]) > (orkut["zipg"] / orkut["neo4j-tuned"])
        assert uk["zipg"] > uk["titan"]

"""Figure 12 (Appendix B.1): regular path query latency, ZipG vs Neo4j.

50 gMark-style queries (linear / branched / recursive) evaluated on
both systems over an LDBC-SNB-like social graph (denser than the TAO
datasets, as gMark's social schema is). Paper shape: ZipG wins the
branched and long linear traversals by a wide margin -- its layout
jumps straight to the (source, label) EdgeRecord while Neo4j scans and
filters the full relationship chain; Neo4j wins the recursion-heavy
queries, because ZipG's Kleene-star transitive closure is collected and
computed *serially at an aggregator* -- we charge ZipG that aggregation
cost (one round trip per collected result pair), exactly as §B.1
describes.
"""

from functools import lru_cache

from conftest import COST_MODEL, EXTRA_PROPERTY_IDS

from repro.bench.reporting import format_table
from repro.bench.systems import build_system
from repro.workloads.graphs import social_graph
from repro.workloads.rpq import RPQEngine, generate_gmark_queries

NUM_NODES = 250
AVG_DEGREE = 24  # LDBC-like density: many edges per user
MAX_RESULTS = 400
SEED_NODES = 40


@lru_cache(maxsize=None)
def rpq_graph():
    return social_graph(NUM_NODES, avg_degree=AVG_DEGREE, seed=8, property_scale=0.2)


@lru_cache(maxsize=None)
def rpq_system(name):
    return build_system(name, rpq_graph(), num_shards=4, alpha=32,
                        extra_property_ids=list(EXTRA_PROPERTY_IDS))


def evaluate_all():
    graph = rpq_graph()
    node_ids = graph.node_ids()
    seeds = node_ids[:SEED_NODES]
    queries = generate_gmark_queries(50, num_labels=5, seed=4)
    budget = 10 * graph.on_disk_size_bytes()  # both systems in memory

    latencies = {}
    for system_name in ("zipg", "neo4j"):  # Fig. 12 compares against plain Neo4j
        system = rpq_system(system_name)
        engine = RPQEngine(system, node_ids)
        per_query = {}
        for query in queries:
            before = system.aggregate_stats().snapshot()
            results = engine.evaluate(query, start_nodes=seeds, max_results=MAX_RESULTS)
            delta = system.aggregate_stats().delta_since(before)
            latency_ns = COST_MODEL.query_latency_ns(
                delta, system.storage_footprint_bytes(), budget
            )
            if system_name == "zipg" and query.is_recursive:
                # Serial transitive-closure aggregation (§B.1): every
                # collected pair crosses the aggregator.
                latency_ns += len(results) * COST_MODEL.network_hop_ns
            per_query[query.query_id] = latency_ns / 1e6  # ms
        latencies[system_name] = per_query
    return queries, latencies


def test_figure12_regular_path_queries(benchmark):
    queries, latencies = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    rows = [
        (q.query_id, q.kind, f"{latencies['zipg'][q.query_id]:.2f} ms",
         f"{latencies['neo4j'][q.query_id]:.2f} ms")
        for q in queries[:12]
    ]
    print(format_table("Figure 12: RPQ latency (first 12 of 50 queries)",
                       ["query", "kind", "zipg", "neo4j"], rows))

    zipg_wins_nonrecursive = 0
    neo4j_wins_recursive = 0
    nonrecursive = [q for q in queries if not q.is_recursive]
    recursive = [q for q in queries if q.is_recursive]
    for q in nonrecursive:
        if latencies["zipg"][q.query_id] <= latencies["neo4j"][q.query_id]:
            zipg_wins_nonrecursive += 1
    for q in recursive:
        if latencies["neo4j"][q.query_id] < latencies["zipg"][q.query_id]:
            neo4j_wins_recursive += 1

    print(f"\nZipG wins {zipg_wins_nonrecursive}/{len(nonrecursive)} non-recursive; "
          f"Neo4j wins {neo4j_wins_recursive}/{len(recursive)} recursive queries")
    # Paper shape: ZipG ahead on most linear/branched queries, Neo4j
    # ahead on most recursion-heavy ones (transitive-closure bottleneck).
    assert zipg_wins_nonrecursive >= 0.6 * len(nonrecursive)
    assert neo4j_wins_recursive >= 0.6 * len(recursive)

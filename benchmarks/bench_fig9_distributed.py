"""Figure 9: distributed-cluster throughput (10 servers x 8 cores).

Paper shape: (a) TAO -- ZipG's distributed throughput scales roughly
with the core count (10x8 cores = 2.5x the 32-core single server);
Titan also gains (more aggregate memory). (b) LinkBench -- ZipG scales
*sub*-linearly: hot-node skew concentrates load on a few servers.
(c) Graph Search -- Titan's global-index search confines GS3 to <=2
servers while ZipG broadcasts to all, so Titan's search scaling looks
relatively better.
"""

from conftest import (
    COST_MODEL,
    EXTRA_PROPERTY_IDS,
    cached_system,
    dataset_budget,
    workload_for,
    graph_search_workload,
)

from repro.bench.datasets import build_dataset
from repro.bench.harness import run_mixed_workload
from repro.bench.reporting import format_table
from repro.cluster import TitanCluster, ZipGCluster, run_distributed_workload
from repro.core import ZipG

NUM_SERVERS = 10
CORES_PER_SERVER = 8
SINGLE_SERVER_CORES = 32
OPS = 250


def build_zipg_cluster(dataset_name):
    graph = build_dataset(dataset_name)
    store = ZipG.compress(
        graph, num_shards=NUM_SERVERS * 2, alpha=32,
        extra_property_ids=list(EXTRA_PROPERTY_IDS),
    )
    return ZipGCluster(store, NUM_SERVERS)


def cluster_budget(dataset_name) -> int:
    # 10 x m3.2xlarge ~ 300 GB vs one r3.8xlarge's 244 GB: scale the
    # single-server budget by the same 300/244 factor.
    return int(dataset_budget(dataset_name) * 300 / 244)


def test_figure9_distributed(benchmark):
    def run():
        results = {}
        for workload_name, dataset_name in (
            ("tao", "twitter"),
            ("linkbench", "linkbench-medium"),
            ("graph-search", "twitter"),
        ):
            if workload_name == "graph-search":
                make_ops = lambda seed: graph_search_workload(dataset_name, seed=seed).operations(OPS)
            else:
                make_ops = lambda seed: workload_for(dataset_name, seed=seed).operations(OPS)
            zipg_cluster = build_zipg_cluster(dataset_name)
            titan_cluster = TitanCluster(build_dataset(dataset_name), NUM_SERVERS)
            titan_c_cluster = TitanCluster(
                build_dataset(dataset_name), NUM_SERVERS, compressed=True
            )
            results[workload_name] = {
                "zipg-distributed": run_distributed_workload(
                    zipg_cluster, make_ops(5), COST_MODEL,
                    cluster_budget(dataset_name), CORES_PER_SERVER, workload_name,
                ),
                "titan-distributed": run_distributed_workload(
                    titan_cluster, make_ops(5), COST_MODEL,
                    cluster_budget(dataset_name), CORES_PER_SERVER, workload_name,
                ),
                "titan-c-distributed": run_distributed_workload(
                    titan_c_cluster, make_ops(5), COST_MODEL,
                    cluster_budget(dataset_name), CORES_PER_SERVER, workload_name,
                ),
                "zipg-single": run_mixed_workload(
                    cached_system("zipg", dataset_name), make_ops(5), COST_MODEL,
                    dataset_budget(dataset_name), cores=SINGLE_SERVER_CORES,
                    workload_name=workload_name,
                ),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for workload_name, cells in results.items():
        rows.append([
            workload_name,
            f"{cells['zipg-distributed'].throughput_kops:.0f}",
            f"{cells['titan-distributed'].throughput_kops:.0f}",
            f"{cells['titan-c-distributed'].throughput_kops:.0f}",
            f"{cells['zipg-single'].throughput_kops:.0f}",
            f"{cells['zipg-distributed'].load_imbalance:.2f}x",
        ])
    print(format_table(
        "Figure 9: distributed cluster (10 servers x 8 cores)",
        ["workload", "zipg-dist", "titan-dist", "titan-c-dist",
         "zipg-single(32c)", "zipg imbalance"],
        rows,
    ))

    tao = results["tao"]
    linkbench = results["linkbench"]
    search = results["graph-search"]
    # (a) TAO: distributed ZipG gains over the single 32-core server,
    # in the direction of the 2.5x core-count increase.
    tao_scaling = tao["zipg-distributed"].throughput_kops / tao["zipg-single"].throughput_kops
    assert tao_scaling > 1.2, f"TAO distributed scaling {tao_scaling:.2f}"
    # (b) LinkBench: skew concentrates load -> worse imbalance than TAO,
    # hence sub-proportional scaling.
    assert (
        linkbench["zipg-distributed"].load_imbalance
        > tao["zipg-distributed"].load_imbalance
    )
    lb_scaling = (
        linkbench["zipg-distributed"].throughput_kops
        / linkbench["zipg-single"].throughput_kops
    )
    assert lb_scaling < tao_scaling
    # (c) Graph Search: ZipG's broadcast search spreads work across all
    # servers while Titan's index confines it -- Titan touches fewer
    # servers per op.
    assert (
        search["titan-distributed"].servers_touched_per_op
        < search["zipg-distributed"].servers_touched_per_op
    )
    # ZipG still leads in absolute terms at this (twitter) scale, and
    # Titan uncompressed stays above Titan-Compressed (footnote 7).
    assert tao["zipg-distributed"].throughput_kops > tao["titan-distributed"].throughput_kops
    assert (
        tao["titan-distributed"].throughput_kops
        > tao["titan-c-distributed"].throughput_kops
    )

"""Figure 6: single-server TAO throughput + top-5 component queries.

Paper shape: when the dataset fits in memory (orkut) all systems are
comparable, with ZipG slightly ahead; at twitter scale Neo4j falls off
a cliff (pointer chasing off SSD) while Titan holds; at uk scale
everyone but ZipG degrades badly and ZipG leads by an order of
magnitude (up to 23x).
"""

import pytest
from conftest import COST_MODEL, cached_system, dataset_budget, record_bench, workload_for

from repro import obs
from repro.bench.datasets import REAL_WORLD, build_dataset
from repro.bench.harness import run_mixed_workload, run_query_class
from repro.bench.reporting import format_table
from repro.workloads import TAOWorkload

SYSTEMS = ("zipg", "neo4j", "neo4j-tuned", "titan", "titan-compressed")
TOP_QUERIES = ("assoc_range", "obj_get", "assoc_get", "assoc_count", "assoc_time_range")
MIXED_OPS = 250
QUERY_OPS = 60


def run_cell(system_name, dataset_name, seed=42):
    system = cached_system(system_name, dataset_name)
    workload = workload_for(dataset_name, seed=seed)
    return run_mixed_workload(
        system, workload.operations(MIXED_OPS), COST_MODEL,
        dataset_budget(dataset_name), workload_name=f"tao:{dataset_name}",
    )


def test_figure6_tao_mixed(benchmark):
    def run_all():
        # Trace the whole grid: only the ZipG query path opens spans,
        # so the baselines run untraced and zipg cells pick up the
        # per-layer time breakdown in their artifacts.
        obs.enable_tracing()
        try:
            return {
                ds: {s: run_cell(s, ds) for s in SYSTEMS} for ds in REAL_WORLD
            }
        finally:
            obs.disable_tracing()

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [ds] + [f"{results[ds][s].throughput_kops:.0f}" for s in SYSTEMS]
        for ds in REAL_WORLD
    ]
    print(format_table("Figure 6: TAO throughput (KOps)", ["dataset"] + list(SYSTEMS), rows))

    kops = {ds: {s: results[ds][s].throughput_kops for s in SYSTEMS} for ds in REAL_WORLD}
    # orkut: everything fits; systems comparable, ZipG (slightly) ahead.
    assert kops["orkut"]["zipg"] >= kops["orkut"]["neo4j-tuned"]
    assert kops["orkut"]["neo4j-tuned"] >= kops["orkut"]["neo4j"]
    assert kops["orkut"]["titan"] >= kops["orkut"]["titan-compressed"]
    assert kops["orkut"]["zipg"] / min(kops["orkut"].values()) < 30  # same ballpark
    # twitter: Neo4j spills; Titan maintains throughput; ZipG on top.
    assert kops["twitter"]["zipg"] > 10 * kops["twitter"]["neo4j-tuned"]
    assert kops["twitter"]["titan"] > 5 * kops["twitter"]["neo4j-tuned"]
    # uk: order-of-magnitude ZipG wins over every other system.
    for other in ("neo4j", "neo4j-tuned", "titan", "titan-compressed"):
        assert kops["uk"]["zipg"] > 10 * kops["uk"][other], other
    # The headline: up to ~23x (and beyond, against Neo4j).
    assert kops["uk"]["zipg"] / kops["uk"]["titan"] > 20

    # Artifact: zipg cells (with per-layer breakdown) + the paper-shape
    # throughput ratios the CI gate pins -- modeled, machine-independent.
    for ds in REAL_WORLD:
        record_bench("fig6_tao", result=results[ds]["zipg"])
    record_bench("fig6_tao", gate={
        "tao.uk.zipg_over_titan":
            (kops["uk"]["zipg"] / kops["uk"]["titan"], "higher_better"),
        "tao.twitter.zipg_over_neo4j_tuned":
            (kops["twitter"]["zipg"] / kops["twitter"]["neo4j-tuned"],
             "higher_better"),
        "tao.orkut.zipg_over_neo4j":
            (kops["orkut"]["zipg"] / kops["orkut"]["neo4j"], "higher_better"),
    })


@pytest.mark.parametrize("query", TOP_QUERIES)
def test_figure6_component_queries(benchmark, query):
    """Figures 6(a)-(e): each top query in isolation, orkut vs uk."""
    def run():
        out = {}
        for dataset_name in ("orkut", "uk"):
            workload = TAOWorkload(build_dataset(dataset_name), seed=13)
            out[dataset_name] = {
                s: run_query_class(
                    cached_system(s, dataset_name), workload, query, QUERY_OPS,
                    COST_MODEL, dataset_budget(dataset_name),
                )
                for s in SYSTEMS
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds] + [f"{results[ds][s].throughput_kops:.0f}" for s in SYSTEMS]
        for ds in results
    ]
    print(format_table(f"Figure 6 ({query})", ["dataset"] + list(SYSTEMS), rows))
    # The universal Figure 6 shape: ZipG's edge grows with dataset size.
    advantage_small = (
        results["orkut"]["zipg"].throughput_kops
        / results["orkut"]["neo4j-tuned"].throughput_kops
    )
    advantage_large = (
        results["uk"]["zipg"].throughput_kops
        / results["uk"]["neo4j-tuned"].throughput_kops
    )
    assert advantage_large > advantage_small
    assert results["uk"]["zipg"].throughput_kops > results["uk"]["titan"].throughput_kops

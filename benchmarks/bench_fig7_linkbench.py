"""Figure 7: single-server LinkBench throughput + top-5 queries.

Paper shape: absolute throughput is distinctly lower than TAO for every
system (write-heavy mix + skewed, larger neighborhoods); Neo4j's writes
collapse (multiple random locations per mutation); Titan writes hold up
(Cassandra) but edge reads suffer; ZipG leads via the write-optimized
LogStore + fanned updates, with a visible drop at the large dataset
(its LinkBench representation no longer fits).
"""

import pytest
from conftest import COST_MODEL, cached_system, dataset_budget, workload_for

from repro.bench.datasets import LINKBENCH, build_dataset
from repro.bench.harness import run_mixed_workload, run_query_class
from repro.bench.reporting import format_table
from repro.workloads import LinkBenchWorkload, TAOWorkload

SYSTEMS = ("zipg", "neo4j", "neo4j-tuned", "titan", "titan-compressed")
TOP_QUERIES = ("assoc_range", "obj_get", "assoc_add", "assoc_update", "obj_update")
MIXED_OPS = 250
QUERY_OPS = 50


def test_figure7_linkbench_mixed(benchmark):
    def run():
        return {
            ds: {
                s: run_mixed_workload(
                    cached_system(s, ds),
                    workload_for(ds, seed=42).operations(MIXED_OPS),
                    COST_MODEL, dataset_budget(ds), workload_name="linkbench",
                )
                for s in SYSTEMS
            }
            for ds in LINKBENCH
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds] + [f"{results[ds][s].throughput_kops:.0f}" for s in SYSTEMS]
        for ds in LINKBENCH
    ]
    print(format_table("Figure 7: LinkBench throughput (KOps)", ["dataset"] + list(SYSTEMS), rows))

    kops = {ds: {s: results[ds][s].throughput_kops for s in SYSTEMS} for ds in LINKBENCH}
    # ZipG leads on every LinkBench dataset (write-optimized LogStore).
    for ds in LINKBENCH:
        for other in ("neo4j", "neo4j-tuned", "titan"):
            assert kops[ds]["zipg"] > kops[ds][other], (ds, other)
    # ZipG's throughput drops at the large dataset (representation no
    # longer fits -- §5.2's Succinct-structures observation).
    assert kops["linkbench-large"]["zipg"] < 0.5 * kops["linkbench-medium"]["zipg"]
    # LinkBench is distinctly slower than TAO for every system (same
    # small dataset, both fully in memory).
    tao_orkut = run_mixed_workload(
        cached_system("zipg", "orkut"),
        TAOWorkload(build_dataset("orkut"), seed=1).operations(MIXED_OPS),
        COST_MODEL, dataset_budget("orkut"),
    )
    assert kops["linkbench-small"]["zipg"] < tao_orkut.throughput_kops


@pytest.mark.parametrize("query", TOP_QUERIES)
def test_figure7_component_queries(benchmark, query):
    """Figures 7(a)-(e): LinkBench's top queries in isolation."""
    def run():
        out = {}
        for dataset_name in ("linkbench-small", "linkbench-large"):
            workload = LinkBenchWorkload(build_dataset(dataset_name), seed=13)
            out[dataset_name] = {
                s: run_query_class(
                    cached_system(s, dataset_name), workload, query, QUERY_OPS,
                    COST_MODEL, dataset_budget(dataset_name),
                )
                for s in SYSTEMS
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ds] + [f"{results[ds][s].throughput_kops:.0f}" for s in SYSTEMS]
        for ds in results
    ]
    print(format_table(f"Figure 7 ({query})", ["dataset"] + list(SYSTEMS), rows))

    small = {s: results["linkbench-small"][s].throughput_kops for s in SYSTEMS}
    large = {s: results["linkbench-large"][s].throughput_kops for s in SYSTEMS}
    if query in ("assoc_add", "assoc_update"):
        # Edge writes (Figs 7(c)-(d)): Neo4j's writes hit multiple
        # random locations; Titan's blind Cassandra appends hold up;
        # ZipG's LogStore keeps it at or near the top (§5.2).
        assert small["zipg"] > small["neo4j-tuned"]
        assert small["zipg"] > small["neo4j"]
        assert small["titan"] > small["neo4j"]
        assert small["zipg"] >= 0.75 * max(small.values())
    elif query == "obj_update":
        # Fig 7(e): ZipG strictly best (Titan's index maintenance needs
        # a read-before-write; Neo4j dirties many locations).
        assert small["zipg"] >= max(small.values())
        assert small["zipg"] > small["neo4j"]
    elif query == "obj_get":
        # Fig 7(b): Neo4j does comparatively well (skewed accesses hit
        # its cache-friendly single-property chains), while ZipG's
        # throughput drops sharply at the large dataset (its Succinct
        # node structures no longer fit, §5.2).
        assert large["zipg"] < 0.2 * small["zipg"]
    else:  # assoc_range, Fig 7(a)
        # Titan suffers on range queries over large skewed
        # neighborhoods; ZipG stays ahead of it at both scales and its
        # advantage over Neo4j grows with dataset size.
        assert small["zipg"] > small["titan"]
        assert large["zipg"] > large["titan"]
        assert (large["zipg"] / max(large["neo4j-tuned"], 1e-9)) > (
            small["zipg"] / max(small["neo4j-tuned"], 1e-9)
        )

"""Ablations of the §3.3 layout decisions.

1. EdgeFile timestamp/destination widths: per-record fixed widths (the
   paper's TLength/DLength middle ground) vs a single global fixed
   width sized for the file's worst case.
2. NodeFile value encoding: the paper's variable-length values with
   explicit length metadata vs the fixed-size alternative that pads
   every value to the node's longest.
"""

from conftest import EXTRA_PROPERTY_IDS

from repro.bench.datasets import build_dataset
from repro.bench.reporting import format_table
from repro.core.delimiters import DelimiterMap
from repro.core.edgefile import EdgeFile


def collect_edges(graph):
    edges = {}
    for node_id in graph.node_ids():
        for edge_type in graph.edge_types_of(node_id):
            edges[(node_id, edge_type)] = graph.edges_of(node_id, edge_type)
    return edges


def test_ablation_timestamp_width_policy(benchmark):
    """Per-record widths store less than global worst-case widths, while
    both support the same random-access pattern."""
    graph = build_dataset("orkut")
    delimiters = DelimiterMap(set(graph.all_property_ids()) | set(EXTRA_PROPERTY_IDS))
    edges = collect_edges(graph)

    def run():
        per_record = EdgeFile(edges, delimiters, alpha=32, width_policy="per-record")
        global_width = EdgeFile(edges, delimiters, alpha=32, width_policy="global")
        return per_record, global_width

    per_record, global_width = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("per-record (paper)", per_record.original_size_bytes(),
         per_record.serialized_size_bytes()),
        ("global fixed", global_width.original_size_bytes(),
         global_width.serialized_size_bytes()),
    ]
    print(format_table("Ablation: EdgeFile width policy",
                       ["policy", "uncompressed B", "compressed B"], rows))

    assert per_record.original_size_bytes() <= global_width.original_size_bytes()
    # Same answers either way.
    some_key = sorted(edges)[0]
    left = per_record.find_record(*some_key)
    right = global_width.find_record(*some_key)
    assert left.edge_count == right.edge_count
    assert [left.timestamp_at(i) for i in range(left.edge_count)] == [
        right.timestamp_at(i) for i in range(right.edge_count)
    ]


def test_ablation_nodefile_value_encoding(benchmark):
    """The paper's variable-size values + per-value length metadata vs
    padding every value to the record's maximum (computed analytically
    from the same property data)."""
    graph = build_dataset("orkut")

    def run():
        variable_bytes = 0
        fixed_bytes = 0
        length_metadata = 0
        for node_id in graph.node_ids():
            properties = graph.node_properties(node_id)
            sizes = [len(v.encode("utf-8")) for v in properties.values()]
            if not sizes:
                continue
            variable_bytes += sum(sizes)
            fixed_bytes += max(sizes) * len(sizes)
            length_metadata += len(sizes) * 3  # the explicit len fields
        return variable_bytes, fixed_bytes, length_metadata

    variable_bytes, fixed_bytes, length_metadata = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ("variable + lengths (paper)", variable_bytes + length_metadata),
        ("fixed-size padding", fixed_bytes),
    ]
    print(format_table("Ablation: NodeFile value encoding", ["encoding", "bytes"], rows))
    # TAO value sizes vary a lot (ages vs locations), so padding to the
    # max wastes far more than the length metadata costs (§3.3).
    assert variable_bytes + length_metadata < 0.8 * fixed_bytes

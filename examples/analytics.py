#!/usr/bin/env python3
"""Light analytics directly on the compressed serving store.

The paper's introduction contrasts interactive serving (ZipG) with
batch analytics systems; this example shows the pragmatic middle:
PageRank, connected components and triangle counting executed through
the public neighbor-query API with no export step.

Run:  python examples/analytics.py
"""

import time

import numpy as np

from repro.bench.systems import ZipGSystem
from repro.workloads.analytics import (
    count_triangles,
    out_degree_distribution,
    pagerank,
    weakly_connected_components,
)
from repro.workloads.graphs import social_graph
from repro.workloads.properties import TAOPropertyModel


def main() -> None:
    graph = social_graph(150, avg_degree=6, seed=31, property_scale=0.2)
    extra = TAOPropertyModel(np.random.default_rng(0)).property_ids() + ["payload"]
    system = ZipGSystem.load(graph, num_shards=4, alpha=16, extra_property_ids=extra)
    nodes = graph.node_ids()
    print(f"compressed store: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    started = time.perf_counter()
    histogram = out_degree_distribution(system, nodes)
    top_degrees = sorted(histogram, reverse=True)[:3]
    print(f"degree histogram ({(time.perf_counter() - started) * 1e3:.0f} ms): "
          f"max degrees {top_degrees}, "
          f"{histogram.get(0, 0)} sinks")

    started = time.perf_counter()
    ranks = pagerank(system, nodes)
    top = sorted(ranks, key=ranks.get, reverse=True)[:5]
    print(f"pagerank ({(time.perf_counter() - started) * 1e3:.0f} ms): "
          f"top nodes {top}")
    for node in top[:3]:
        name = system.get_node_property(node, ["city"])
        print(f"   node {node:>4} rank {ranks[node]:.4f} {name}")

    started = time.perf_counter()
    components = weakly_connected_components(system, nodes)
    print(f"\ncomponents ({(time.perf_counter() - started) * 1e3:.0f} ms): "
          f"{len(components)} total, largest {len(components[0])} nodes")

    started = time.perf_counter()
    triangles = count_triangles(system, nodes)
    print(f"triangles ({(time.perf_counter() - started) * 1e3:.0f} ms): {triangles}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a property graph, compress it, query it.

Walks through the paper's running example -- "find friends of Alice who
live in Ithaca" -- on a small social graph, exercising every query of
the Table 1 API plus updates through the LogStore.

Run:  python examples/quickstart.py
"""

from repro.core import GraphData, ZipG, WILDCARD

ALICE, BOB, CAROL, DAN, EVE = range(5)
FRIEND, LIKES = 0, 1


def build_graph() -> GraphData:
    graph = GraphData()
    graph.add_node(ALICE, {"name": "Alice", "age": "42", "location": "Ithaca"})
    graph.add_node(BOB, {"name": "Bob", "location": "Princeton", "nickname": "Bobby"})
    graph.add_node(CAROL, {"name": "Carol", "location": "Ithaca"})
    graph.add_node(DAN, {"name": "Dan", "location": "Boston"})
    graph.add_node(EVE, {"name": "Eve", "age": "24", "location": "Ithaca"})
    graph.add_edge(ALICE, BOB, FRIEND, timestamp=1_000, properties={"since": "2015"})
    graph.add_edge(ALICE, CAROL, FRIEND, timestamp=2_000)
    graph.add_edge(ALICE, EVE, FRIEND, timestamp=3_000)
    graph.add_edge(ALICE, DAN, LIKES, timestamp=2_500)
    graph.add_edge(BOB, ALICE, FRIEND, timestamp=1_000)
    return graph


def main() -> None:
    graph = build_graph()
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.on_disk_size_bytes()} raw bytes")

    # g = compress(graph)  -- Table 1
    store = ZipG.compress(graph, num_shards=2, alpha=8)
    print(f"compressed footprint: {store.storage_footprint_bytes()} bytes "
          f"across {store.num_shards} shards\n")

    # get_node_property(nodeID, propertyIDs)
    print("Alice's age and location:",
          store.get_node_property(ALICE, ["age", "location"]))

    # get_node_ids(propertyList) -- search on the compressed NodeFile
    print("People in Ithaca:", store.get_node_ids({"location": "Ithaca"}))

    # get_neighbor_ids: the paper's running example, executed join-free
    print("Alice's friends in Ithaca:",
          store.get_neighbor_ids(ALICE, FRIEND, {"location": "Ithaca"}))

    # EdgeRecord + TimeOrder + EdgeData (§2.2)
    record = store.get_edge_record(ALICE, FRIEND)
    print(f"\nAlice has {record.edge_count} friend edges")
    begin, end = store.get_edge_range(record, 1_500, 3_500)
    print(f"friendships formed in [1500, 3500): TimeOrders {begin}..{end - 1}")
    newest = store.get_edge_data(record, record.edge_count - 1)
    print(f"Alice's most recent friend: node {newest.destination} "
          f"(timestamp {newest.timestamp})")

    # Wildcards
    print("\nAll edges out of Alice (wildcard type):",
          store.get_neighbor_ids(ALICE, WILDCARD))

    # Updates flow through the LogStore (§3.5)
    store.append_node(5, {"name": "Frank", "location": "Ithaca"})
    store.append_edge(ALICE, FRIEND, 5, timestamp=4_000)
    print("\nafter appends -- Alice's friends in Ithaca:",
          store.get_neighbor_ids(ALICE, FRIEND, {"location": "Ithaca"}))

    store.delete_edge(ALICE, FRIEND, BOB)
    print("after deleting Alice->Bob:", store.get_neighbor_ids(ALICE, FRIEND))

    # Freeze the LogStore into a new compressed shard (fanned updates)
    store.freeze_logstore()
    print(f"\nafter freeze: {store.num_shards} shards; "
          f"Alice's data spans {store.node_fragment_count(ALICE)} fragment(s)")
    print("queries still see everything:",
          store.get_neighbor_ids(ALICE, FRIEND, {"location": "Ithaca"}))


if __name__ == "__main__":
    main()

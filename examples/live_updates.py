#!/usr/bin/env python3
"""Live updates: the LogStore, freezes, and fanned-update pointers.

Simulates a running deployment: a compressed base graph absorbs a
stream of writes through the single LogStore; every time the LogStore
crosses its threshold it is frozen into a new immutable shard, and
update pointers chain each node's fragments so reads touch exactly the
shards that hold data (§3.5). The script reports fragmentation and
verifies reads stay correct throughout against an uncompressed mirror.

Run:  python examples/live_updates.py
"""

import numpy as np

from repro.core import GraphData, ZipG

NUM_NODES = 40
UPDATE_ROUNDS = 6
EDGES_PER_ROUND = 60
FRIEND = 0


def main() -> None:
    rng = np.random.default_rng(99)
    graph = GraphData()
    for node in range(NUM_NODES):
        graph.add_node(node, {"handle": f"user{node}"})
    for node in range(NUM_NODES):
        for _ in range(3):
            graph.add_edge(node, int(rng.integers(0, NUM_NODES)), FRIEND,
                           timestamp=int(rng.integers(0, 1_000)))

    store = ZipG.compress(graph, num_shards=4, alpha=8,
                          logstore_threshold_bytes=600)
    mirror = {
        (node, FRIEND): [(e.timestamp, e.destination) for e in graph.edges_of(node, FRIEND)]
        for node in range(NUM_NODES)
    }

    print(f"initial: {store.num_shards} shards, "
          f"{store.storage_footprint_bytes()} bytes\n")

    timestamp = 1_000
    for round_number in range(1, UPDATE_ROUNDS + 1):
        for _ in range(EDGES_PER_ROUND):
            # Hot nodes get most updates (zipf), like real social graphs.
            source = min(int(rng.zipf(1.6)) - 1, NUM_NODES - 1)
            destination = int(rng.integers(0, NUM_NODES))
            timestamp += 1
            store.append_edge(source, FRIEND, destination, timestamp)
            mirror[(source, FRIEND)].append((timestamp, destination))
            mirror[(source, FRIEND)].sort()

        fragments = [store.node_fragment_count(node) for node in range(NUM_NODES)]
        print(f"round {round_number}: {store.num_shards} shards "
              f"({store.freeze_count} freezes), "
              f"avg fragments/node {sum(fragments) / len(fragments):.2f}, "
              f"max {max(fragments)}")

    print("\nverifying reads against the uncompressed mirror...")
    for node in range(NUM_NODES):
        record = store.get_edge_record(node, FRIEND)
        expected = mirror[(node, FRIEND)]
        got = [(record.timestamp_at(i), record.destination_at(i))
               for i in range(record.edge_count)]
        assert got == expected, f"mismatch at node {node}"
    print(f"all {NUM_NODES} nodes consistent across "
          f"{store.num_shards} shards. fanned updates work.")

    hottest = max(range(NUM_NODES), key=store.node_fragment_count)
    locations = store._edge_locations(hottest, FRIEND)
    print(f"\nhottest node {hottest}: data spans "
          f"{store.node_fragment_count(hottest)} fragments; an edge query "
          f"touches {len(locations)} location(s) instead of all {store.num_shards}.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""ZipQL: declarative Cypher-style queries on the compressed store.

Shows the MATCH/WHERE/RETURN surface compiling down to ZipG's Table 1
primitives -- including label-regex path patterns running through the
regular-path-query engine.

Run:  python examples/declarative_queries.py
"""

import numpy as np

from repro.bench.systems import ZipGSystem
from repro.query import QueryEngine
from repro.workloads.graphs import social_graph
from repro.workloads.properties import TAOPropertyModel


def show(engine, text):
    result = engine.execute(text)
    print(f"\n  zipql> {text}")
    for row in list(result)[:6]:
        print(f"     {row}")
    if len(result) > 6:
        print(f"     ... ({len(result)} rows total)")
    if not len(result):
        print("     (no rows)")


def main() -> None:
    graph = social_graph(120, avg_degree=6, seed=17, property_scale=0.3)
    extra = TAOPropertyModel(np.random.default_rng(0)).property_ids() + ["payload"]
    system = ZipGSystem.load(graph, num_shards=4, alpha=16, extra_property_ids=extra)
    engine = QueryEngine(system, graph.node_ids())
    anchor = graph.node_ids()[5]

    print("ZipQL on a compressed TAO-annotated social graph "
          f"({graph.num_nodes} nodes, {graph.num_edges} edges):")

    show(engine, 'MATCH (p {city: "Ithaca"}) RETURN p.interest')
    show(engine, 'MATCH (p {city: "Ithaca", interest: "Music"}) RETURN p')
    show(engine, f'MATCH (a {{id: {anchor}}})-[:0]->(friend) RETURN friend')
    show(engine, f'MATCH (a {{id: {anchor}}})-[*]->(anyone) RETURN anyone.city')
    show(engine, f'MATCH (a {{id: {anchor}}})-[:0]->(f) '
                 'WHERE f.city = "Ithaca" RETURN f, f.interest')
    show(engine, f'MATCH (a {{id: {anchor}}})-[:0/0]->(fof) RETURN fof')
    show(engine, f'MATCH (a {{id: {anchor}}})-[:(0|1)/2]->(b) RETURN b')


if __name__ == "__main__":
    main()

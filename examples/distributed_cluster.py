#!/usr/bin/env python3
"""A simulated distributed ZipG deployment (§4.1, Figure 4).

Places shards across simulated servers, routes a TAO query stream
through function-shipping aggregators, and reports per-server load,
messages and the throughput scaling relative to a single server --
the Figure 9 experiment in miniature.

Run:  python examples/distributed_cluster.py
"""

import numpy as np

from repro.bench.harness import run_mixed_workload
from repro.bench.memory_model import CostModel
from repro.bench.systems import ZipGSystem
from repro.cluster import ZipGCluster, run_distributed_workload
from repro.core import ZipG
from repro.workloads import TAOWorkload
from repro.workloads.graphs import social_graph
from repro.workloads.properties import TAOPropertyModel

NUM_SERVERS = 6
CORES_PER_SERVER = 8
SINGLE_SERVER_CORES = 32
OPERATIONS = 400


def main() -> None:
    graph = social_graph(200, avg_degree=8, seed=5, property_scale=0.3)
    extra = TAOPropertyModel(np.random.default_rng(0)).property_ids() + ["payload"]
    cost_model = CostModel()
    budget = 4 * graph.on_disk_size_bytes()

    store = ZipG.compress(graph, num_shards=NUM_SERVERS * 2, alpha=32,
                          extra_property_ids=extra)
    cluster = ZipGCluster(store, NUM_SERVERS)
    print(f"cluster: {NUM_SERVERS} servers x {CORES_PER_SERVER} cores, "
          f"{store.num_shards} shards (2 per server), "
          f"LogStore on server {cluster.logstore_server}\n")

    workload = TAOWorkload(graph, seed=3)
    result = run_distributed_workload(
        cluster, workload.operations(OPERATIONS), cost_model, budget,
        cores_per_server=CORES_PER_SERVER, workload_name="tao",
    )

    print(f"{'server':>8}{'busy (ms)':>12}{'messages':>10}")
    for server in cluster.servers:
        print(f"{server.server_id:>8}{server.busy_ns / 1e6:>12.2f}{server.messages:>10}")

    print(f"\ndistributed: {result.throughput_kops:,.0f} KOps "
          f"(imbalance {result.load_imbalance:.2f}x, "
          f"{result.servers_touched_per_op:.2f} servers touched per op)")

    single = ZipGSystem.load(graph, num_shards=4, alpha=32, extra_property_ids=extra)
    single_result = run_mixed_workload(
        single, TAOWorkload(graph, seed=3).operations(OPERATIONS),
        cost_model, budget, cores=SINGLE_SERVER_CORES,
    )
    scaling = result.throughput_kops / single_result.throughput_kops
    print(f"single 32-core server: {single_result.throughput_kops:,.0f} KOps")
    print(f"distributed scaling: {scaling:.2f}x "
          f"(cores grew {NUM_SERVERS * CORES_PER_SERVER / SINGLE_SERVER_CORES:.2f}x)")


if __name__ == "__main__":
    main()

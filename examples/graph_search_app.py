#!/usr/bin/env python3
"""Facebook-Graph-Search-style queries on a compressed graph.

Implements Table 3's GS1-GS5 ("All friends of Alice", "Alice's friends
in Ithaca", "Musicians in Ithaca", ...) and contrasts the join-free
execution plan against the join-based alternative (Appendix B.3).

Run:  python examples/graph_search_app.py
"""

import time

import numpy as np

from repro.bench.systems import ZipGSystem
from repro.workloads.graph_search import gs2_with_join, gs3_with_join
from repro.workloads.graphs import social_graph
from repro.workloads.properties import TAOPropertyModel


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - started) * 1e3
    preview = result if len(result) <= 8 else result[:8] + ["..."]
    print(f"  {label:<46} {elapsed:7.2f} ms -> {preview}")
    return result


def main() -> None:
    graph = social_graph(150, avg_degree=6, seed=11, property_scale=0.3)
    extra = TAOPropertyModel(np.random.default_rng(0)).property_ids() + ["payload"]
    system = ZipGSystem.load(graph, num_shards=4, alpha=16, extra_property_ids=extra)
    alice = graph.node_ids()[3]

    print("Graph Search queries (Table 3):")
    timed("GS1: all friends of Alice",
          lambda: system.get_neighbor_ids(alice, "*"))
    timed("GS2: Alice's friends in Ithaca",
          lambda: system.get_neighbor_ids(alice, "*", {"city": "Ithaca"}))
    timed("GS3: Musicians in Ithaca",
          lambda: system.get_node_ids({"city": "Ithaca", "interest": "Music"}))
    timed("GS4: close friends of Alice (type 0)",
          lambda: system.get_neighbor_ids(alice, 0))
    timed("GS5: all data on Alice's type-0 edges",
          lambda: [e.destination for e in system.edges_from_index(alice, 0, 0, None)])

    print("\nJoin vs no-join plans (Appendix B.3):")
    plain = timed("GS2 without joins (probe neighbors)",
                  lambda: system.get_neighbor_ids(alice, "*", {"city": "Ithaca"}))
    joined = timed("GS2 with a join (friends ∩ Ithaca)",
                   lambda: gs2_with_join(system, alice, {"city": "Ithaca"}))
    assert sorted(plain) == joined, "both plans must agree"

    plain3 = timed("GS3 without joins",
                   lambda: system.get_node_ids({"city": "Ithaca", "interest": "Music"}))
    joined3 = timed("GS3 with a join",
                    lambda: gs3_with_join(system, {"city": "Ithaca"}, {"interest": "Music"}))
    assert plain3 == joined3, "both plans must agree"
    print("\nboth plans return identical results; "
          "the no-join plan is the one ZipG favors (§2.2).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A TAO-style social-network serving workload on ZipG.

Generates a power-law social graph annotated with Facebook-TAO-style
properties (40 PropertyIDs per node, 5 edge types, timestamps over a
50-day span), compresses it, and serves the published TAO query mix
(Table 2), reporting per-query latency and the storage saving relative
to the uncompressed input.

Run:  python examples/social_network.py
"""

import time
from collections import defaultdict

from repro.bench.systems import ZipGSystem
from repro.workloads import TAOWorkload
from repro.workloads.graphs import social_graph
from repro.workloads.properties import TAOPropertyModel

import numpy as np

NUM_NODES = 200
AVG_DEGREE = 8
NUM_OPERATIONS = 2_000


def main() -> None:
    print("generating TAO-annotated social graph...")
    graph = social_graph(NUM_NODES, AVG_DEGREE, seed=42, property_scale=0.5)
    raw = graph.on_disk_size_bytes()
    print(f"  {graph.num_nodes} nodes, {graph.num_edges} edges, {raw / 1e6:.2f} MB raw")

    print("compressing into ZipG...")
    extra = TAOPropertyModel(np.random.default_rng(0)).property_ids() + ["payload"]
    started = time.perf_counter()
    system = ZipGSystem.load(graph, num_shards=4, alpha=32, extra_property_ids=extra)
    footprint = system.storage_footprint_bytes()
    print(f"  compressed in {time.perf_counter() - started:.1f}s; "
          f"footprint {footprint / 1e6:.2f} MB "
          f"({raw / footprint:.2f}x smaller than raw)")

    print(f"\nserving {NUM_OPERATIONS} TAO operations (Table 2 mix)...")
    workload = TAOWorkload(graph, seed=7)
    wall = defaultdict(float)
    counts = defaultdict(int)
    for operation in workload.operations(NUM_OPERATIONS):
        started = time.perf_counter()
        operation.run(system)
        wall[operation.name] += time.perf_counter() - started
        counts[operation.name] += 1

    print(f"\n{'query':<18}{'count':>8}{'avg wall':>14}")
    print("-" * 40)
    for name in sorted(counts, key=counts.get, reverse=True):
        avg_us = wall[name] / counts[name] * 1e6
        print(f"{name:<18}{counts[name]:>8}{avg_us:>11.1f} us")

    stats = system.aggregate_stats()
    print(f"\nstorage touches: {stats.random_accesses} random, "
          f"{stats.searches} searches, {stats.writes} writes, "
          f"{stats.npa_hops} NPA hops on the compressed representation")


if __name__ == "__main__":
    main()

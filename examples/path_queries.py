#!/usr/bin/env python3
"""Regular path queries and traversals on a compressed graph.

Evaluates regex-over-edge-label path queries (Appendix B.1) -- linear,
branched and Kleene-star-recursive -- plus bounded-depth BFS
(Appendix B.2), all through the public ZipG API.

Run:  python examples/path_queries.py
"""

import time

import numpy as np

from repro.bench.systems import ZipGSystem
from repro.workloads import bfs_traversal
from repro.workloads.graphs import social_graph
from repro.workloads.properties import TAOPropertyModel
from repro.workloads.rpq import PathQuery, RPQEngine, generate_gmark_queries


def main() -> None:
    graph = social_graph(120, avg_degree=6, seed=23, property_scale=0.2)
    extra = TAOPropertyModel(np.random.default_rng(0)).property_ids() + ["payload"]
    system = ZipGSystem.load(graph, num_shards=2, alpha=16, extra_property_ids=extra)
    engine = RPQEngine(system, graph.node_ids())
    seeds = graph.node_ids()[:15]

    print("hand-written path queries (labels are EdgeTypes 0-4):")
    for expression, description in (
        ("0/1", "a type-0 edge followed by a type-1 edge"),
        ("(0|1)/2", "type 0 OR 1, then type 2"),
        ("3*", "any number of type-3 edges (incl. none)"),
        ("0/2+", "type 0 then one-or-more type 2"),
    ):
        started = time.perf_counter()
        pairs = engine.evaluate(PathQuery("q", expression), start_nodes=seeds)
        elapsed = (time.perf_counter() - started) * 1e3
        print(f"  {expression:<10} ({description}): "
              f"{len(pairs)} (start, end) pairs in {elapsed:.1f} ms")

    print("\ngMark-style generated workload (first 10 of 50):")
    for query in generate_gmark_queries(50, seed=1)[:10]:
        started = time.perf_counter()
        pairs = engine.evaluate(query, start_nodes=seeds, max_results=200)
        elapsed = (time.perf_counter() - started) * 1e3
        print(f"  {query.query_id:<4} {query.kind:<10} {query.expression:<14} "
              f"-> {len(pairs):>4} pairs, {elapsed:6.1f} ms")

    print("\nbreadth-first traversals (depth <= 3):")
    for root in graph.node_ids()[:5]:
        started = time.perf_counter()
        visited = bfs_traversal(system, root, max_depth=3)
        elapsed = (time.perf_counter() - started) * 1e3
        print(f"  from node {root:>3}: reached {len(visited):>4} nodes in {elapsed:6.1f} ms")


if __name__ == "__main__":
    main()

"""Tests for binary serialization of the compressed structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delimiters import DelimiterMap
from repro.core.edgefile import EdgeFile
from repro.core.model import Edge
from repro.core.nodefile import NodeFile
from repro.succinct import SuccinctFile
from repro.succinct.serialize import (
    pack_array,
    pack_ints,
    pack_sections,
    unpack_array,
    unpack_ints,
    unpack_sections,
)


class TestFraming:
    def test_sections_roundtrip(self):
        sections = {"a": b"hello", "b": b"", "long": b"x" * 5000}
        assert unpack_sections(pack_sections(sections)) == sections

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            unpack_sections(b"NOPE" + b"\x00" * 10)

    def test_trailing_bytes_rejected(self):
        blob = pack_sections({"a": b"1"}) + b"junk"
        with pytest.raises(ValueError):
            unpack_sections(blob)

    @pytest.mark.parametrize("dtype", ["<i8", "<u8", "|u1"])
    def test_array_roundtrip(self, dtype):
        array = np.arange(37).astype(np.dtype(dtype))
        restored = unpack_array(pack_array(array))
        assert restored.dtype == np.dtype(dtype)
        assert (restored == array).all()

    def test_ints_roundtrip(self):
        values = (0, -5, 2**62)
        assert unpack_ints(pack_ints(*values)) == values


class TestSuccinctFileSerialization:
    def test_roundtrip_queries(self):
        text = b"persisted structures load without suffix sorting"
        original = SuccinctFile(text, alpha=4)
        restored = SuccinctFile.from_bytes(original.to_bytes())
        assert restored.decompress() == text
        assert list(restored.search(b"s")) == list(original.search(b"s"))
        assert restored.alpha == original.alpha
        assert restored.serialized_size_bytes() == original.serialized_size_bytes()

    def test_empty_file(self):
        restored = SuccinctFile.from_bytes(SuccinctFile(b"").to_bytes())
        assert len(restored) == 0
        assert restored.count(b"x") == 0

    @settings(max_examples=25, deadline=None)
    @given(
        text=st.binary(min_size=1, max_size=80).map(lambda b: bytes(x or 1 for x in b)),
        alpha=st.integers(min_value=1, max_value=8),
    )
    def test_property_roundtrip(self, text, alpha):
        original = SuccinctFile(text, alpha=alpha)
        restored = SuccinctFile.from_bytes(original.to_bytes())
        assert restored.decompress() == text


class TestLayoutSerialization:
    def test_nodefile_roundtrip(self):
        dmap = DelimiterMap(["age", "city"])
        nodes = {1: {"age": "42", "city": "Ithaca"}, 5: {"city": "Boston"}}
        original = NodeFile(nodes, dmap, alpha=4)
        restored = NodeFile.from_bytes(original.to_bytes(), dmap)
        assert restored.get_properties(1) == nodes[1]
        assert restored.get_property(5, "age") is None
        assert restored.find_nodes({"city": "Ithaca"}) == [1]
        assert restored.node_ids().tolist() == [1, 5]

    def test_edgefile_roundtrip(self):
        dmap = DelimiterMap(["w"])
        edges = {
            (1, 0): [Edge(1, 2, 0, 10, {"w": "a"}), Edge(1, 3, 0, 20)],
            (4, 1): [Edge(4, 1, 1, 5)],
        }
        original = EdgeFile(edges, dmap, alpha=4)
        restored = EdgeFile.from_bytes(original.to_bytes(), dmap)
        record = restored.find_record(1, 0)
        assert record.edge_count == 2
        assert record.all_destinations() == [2, 3]
        assert record.properties_at(0) == {"w": "a"}
        assert restored.num_edges == 3
        assert len(restored.records_of_type(1)) == 1

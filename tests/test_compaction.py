"""Tests for periodic garbage collection (§4.1): shard compaction."""

import pytest

from repro.core import GraphData, NodeNotFound, ZipG


def build_store():
    graph = GraphData()
    for node in range(6):
        graph.add_node(node, {"name": f"n{node}", "city": "Ithaca"})
    graph.add_edge(0, 1, 0, 100)
    graph.add_edge(0, 2, 0, 200)
    graph.add_edge(3, 4, 0, 150)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=1 << 30,
                         extra_property_ids=["zip"])


def fragment_store(store, rounds=3):
    """Create several frozen shards with interleaved updates."""
    timestamp = 1_000
    for round_number in range(rounds):
        for node in range(3):
            timestamp += 1
            store.append_edge(node, 0, 5, timestamp=timestamp)
        store.append_node(10 + round_number, {"name": f"new{round_number}"})
        store.freeze_logstore()
    return store


class TestCompaction:
    def test_reclaims_shards(self):
        store = fragment_store(build_store())
        before = store.num_shards
        reclaimed = store.compact_frozen_shards()
        assert reclaimed == before - store.num_shards
        assert store.num_shards == store.num_initial_shards + 1

    def test_noop_without_frozen_shards(self):
        store = build_store()
        assert store.compact_frozen_shards() == 0

    def test_queries_unchanged_after_compaction(self):
        store = fragment_store(build_store())
        expected = {
            node: (store.get_node_property(node),
                   store.get_edge_record(node, 0).destinations())
            for node in range(6)
        }
        expected_search = store.get_node_ids({"city": "Ithaca"})
        store.compact_frozen_shards()
        for node, (properties, destinations) in expected.items():
            assert store.get_node_property(node) == properties
            assert store.get_edge_record(node, 0).destinations() == destinations
        assert store.get_node_ids({"city": "Ithaca"}) == expected_search
        for round_number in range(3):
            assert store.get_node_property(10 + round_number) == {
                "name": f"new{round_number}"
            }

    def test_fragmentation_collapses(self):
        store = fragment_store(build_store())
        assert store.node_fragment_count(0) > 2
        store.compact_frozen_shards()
        assert store.node_fragment_count(0) <= 2  # home + one merged shard

    def test_deleted_data_physically_dropped(self):
        store = fragment_store(build_store())
        store.delete_node(10)
        store.delete_edge(0, 0, 5)
        before = store.storage_footprint_bytes()
        store.compact_frozen_shards()
        assert store.storage_footprint_bytes() < before
        with pytest.raises(NodeNotFound):
            store.get_node_property(10)
        assert 5 not in store.get_edge_record(0, 0).destinations()

    def test_newest_node_version_wins(self):
        store = build_store()
        store.update_node(1, {"name": "v1", "city": "Boston"})
        store.freeze_logstore()
        store.update_node(1, {"name": "v2", "city": "Chicago"})
        store.freeze_logstore()
        store.compact_frozen_shards()
        assert store.get_node_property(1) == {"name": "v2", "city": "Chicago"}
        assert store.get_node_ids({"city": "Chicago"}) == [1]

    def test_writes_continue_after_compaction(self):
        store = fragment_store(build_store())
        store.compact_frozen_shards()
        store.append_edge(1, 0, 3, timestamp=9_999)
        assert 3 in store.get_edge_record(1, 0).destinations()
        store.freeze_logstore()
        assert 3 in store.get_edge_record(1, 0).destinations()
        # And a second compaction round still works.
        store.compact_frozen_shards()
        assert 3 in store.get_edge_record(1, 0).destinations()

    def test_repeated_compaction_idempotent(self):
        store = fragment_store(build_store())
        store.compact_frozen_shards()
        snapshot = store.get_edge_record(0, 0).destinations()
        assert store.compact_frozen_shards() in (0, 1)  # merge of one shard
        assert store.get_edge_record(0, 0).destinations() == snapshot

"""Tests for the paper-flagged search extensions: node-property prefix
search and edge-property search (§3.3)."""

import pytest

from repro.core import GraphData, ZipG
from repro.core.delimiters import DelimiterMap
from repro.core.nodefile import NodeFile


class TestPrefixSearch:
    @pytest.fixture
    def node_file(self):
        nodes = {
            1: {"location": "Ithaca", "name": "Alice"},
            2: {"location": "Irvine", "name": "Bob"},
            3: {"location": "Boston", "name": "Ira"},
            4: {"name": "Ivy"},  # no location
        }
        return NodeFile(nodes, DelimiterMap(["location", "name"]), alpha=4)

    def test_prefix_matches(self, node_file):
        assert node_file.find_nodes_by_prefix("location", "I") == [1, 2]
        assert node_file.find_nodes_by_prefix("location", "Ith") == [1]
        assert node_file.find_nodes_by_prefix("location", "B") == [3]

    def test_prefix_no_match(self, node_file):
        assert node_file.find_nodes_by_prefix("location", "Z") == []

    def test_prefix_does_not_leak_other_properties(self, node_file):
        # Names starting with "I" exist (Ira, Ivy) but must not match a
        # *location* prefix search.
        assert 3 not in node_file.find_nodes_by_prefix("location", "I")
        assert node_file.find_nodes_by_prefix("name", "I") == [3, 4]

    def test_empty_prefix_means_property_present(self, node_file):
        assert node_file.find_nodes_by_prefix("location", "") == [1, 2, 3]

    def test_full_value_equals_exact_search(self, node_file):
        assert node_file.find_nodes_by_prefix("location", "Ithaca") == \
            node_file.find_nodes({"location": "Ithaca"})


@pytest.fixture
def edge_store():
    graph = GraphData()
    for node in range(4):
        graph.add_node(node, {"name": f"n{node}"})
    graph.add_edge(0, 1, 0, 100, {"label": "close", "w": "2"})
    graph.add_edge(0, 2, 0, 200, {"label": "work"})
    graph.add_edge(1, 2, 1, 300, {"label": "close"})
    graph.add_edge(2, 3, 0, 400)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         extra_property_ids=["label", "w"])


class TestEdgePropertySearch:
    def test_basic_match(self, edge_store):
        hits = edge_store.find_edges("label", "close")
        assert [(s, t, d.destination) for s, t, d in hits] == [(0, 0, 1), (1, 1, 2)]

    def test_exact_value_only(self, edge_store):
        assert edge_store.find_edges("label", "clo") == []
        assert edge_store.find_edges("label", "closer") == []

    def test_no_cross_property_match(self, edge_store):
        assert edge_store.find_edges("w", "close") == []
        hits = edge_store.find_edges("w", "2")
        assert [(s, d.destination) for s, _, d in hits] == [(0, 1)]

    def test_includes_logstore_edges(self, edge_store):
        edge_store.append_edge(3, 0, 0, timestamp=500, properties={"label": "close"})
        hits = edge_store.find_edges("label", "close")
        assert (3, 0) in [(s, t) for s, t, _ in hits]

    def test_survives_freeze(self, edge_store):
        edge_store.append_edge(3, 0, 0, timestamp=500, properties={"label": "close"})
        edge_store.freeze_logstore()
        hits = edge_store.find_edges("label", "close")
        assert len(hits) == 3

    def test_deleted_edges_excluded(self, edge_store):
        edge_store.delete_edge(0, 0, 1)
        hits = edge_store.find_edges("label", "close")
        assert [(s, t) for s, t, _ in hits] == [(1, 1)]

    def test_edge_data_payload(self, edge_store):
        hits = edge_store.find_edges("label", "work")
        assert len(hits) == 1
        _, _, data = hits[0]
        assert data.destination == 2
        assert data.timestamp == 200
        assert data.properties == {"label": "work"}

    def test_no_matches(self, edge_store):
        assert edge_store.find_edges("label", "nothing") == []

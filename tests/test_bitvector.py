"""Unit tests for the rank/select bit vector."""

import numpy as np
import pytest

from repro.succinct import BitVector


class TestBasics:
    def test_empty(self):
        vec = BitVector(0)
        assert len(vec) == 0
        assert vec.count() == 0
        assert vec.rank1(0) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_set_get_clear(self):
        vec = BitVector(130)
        vec.set(0)
        vec.set(63)
        vec.set(64)
        vec.set(129)
        assert vec[0] and vec[63] and vec[64] and vec[129]
        assert not vec[1] and not vec[128]
        vec.clear(64)
        assert not vec[64]

    def test_out_of_range(self):
        vec = BitVector(10)
        with pytest.raises(IndexError):
            vec[10]
        with pytest.raises(IndexError):
            vec.set(-1)
        with pytest.raises(IndexError):
            vec.rank1(11)

    def test_from_indices(self):
        vec = BitVector.from_indices(100, [3, 50, 99])
        assert vec[3] and vec[50] and vec[99]
        assert vec.count() == 3

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.from_indices(10, [10])

    def test_from_indices_duplicates_collapse(self):
        vec = BitVector.from_indices(16, [5, 5, 5])
        assert vec.count() == 1


class TestRankSelect:
    @pytest.fixture
    def random_vec(self):
        rng = np.random.default_rng(42)
        size = 1000
        indices = np.sort(rng.choice(size, 137, replace=False))
        return BitVector.from_indices(size, indices), set(indices.tolist()), size

    def test_rank1_matches_naive(self, random_vec):
        vec, members, size = random_vec
        for index in range(0, size + 1, 17):
            assert vec.rank1(index) == sum(1 for m in members if m < index)

    def test_rank0_complements_rank1(self, random_vec):
        vec, _, size = random_vec
        for index in (0, 100, size):
            assert vec.rank0(index) + vec.rank1(index) == index

    def test_select1_inverts_rank1(self, random_vec):
        vec, members, _ = random_vec
        ordered = sorted(members)
        for rank, index in enumerate(ordered):
            assert vec.select1(rank) == index
            assert vec.rank1(index) == rank

    def test_select_out_of_range(self, random_vec):
        vec, members, _ = random_vec
        with pytest.raises(IndexError):
            vec.select1(len(members))

    def test_set_indices_roundtrip(self, random_vec):
        vec, members, _ = random_vec
        assert vec.set_indices().tolist() == sorted(members)

    def test_rank_invalidated_on_mutation(self):
        vec = BitVector(100)
        vec.set(10)
        assert vec.rank1(100) == 1
        vec.set(20)
        assert vec.rank1(100) == 2
        vec.clear(10)
        assert vec.rank1(100) == 1

    def test_serialized_size(self):
        assert BitVector(64).serialized_size_bytes() == 8
        assert BitVector(65).serialized_size_bytes() == 16

"""Unit tests for update pointers and deletion bitmaps."""

from repro.core.deletes import DeletionIndex
from repro.core.pointers import ACTIVE_LOGSTORE, UpdatePointerTable


class TestUpdatePointerTable:
    def test_node_pointers_in_append_order(self):
        table = UpdatePointerTable()
        table.add_node_pointer(1, 3)
        table.add_node_pointer(1, 5)
        table.add_node_pointer(1, 3)  # dedupe
        assert table.node_shards(1) == [3, 5]
        assert table.node_shards(2) == []

    def test_edge_pointers_per_type(self):
        table = UpdatePointerTable()
        table.add_edge_pointer(1, 0, 4)
        table.add_edge_pointer(1, 1, 5)
        assert table.edge_shards(1, 0) == [4]
        assert table.edge_shards(1, 1) == [5]
        assert table.edge_shards(1, 2) == []

    def test_all_edge_shards_union(self):
        table = UpdatePointerTable()
        table.add_edge_pointer(1, 0, 4)
        table.add_edge_pointer(1, 1, 5)
        table.add_edge_pointer(1, 1, 4)
        assert table.all_edge_shards(1) == [4, 5]

    def test_promote_active_node(self):
        table = UpdatePointerTable()
        table.add_node_pointer(1, ACTIVE_LOGSTORE)
        table.promote_node_active(1, 7)
        assert table.node_shards(1) == [7]

    def test_promote_active_preserves_order(self):
        table = UpdatePointerTable()
        table.add_node_pointer(1, 3)
        table.add_node_pointer(1, ACTIVE_LOGSTORE)
        table.promote_node_active(1, 9)
        assert table.node_shards(1) == [3, 9]

    def test_promote_active_edge(self):
        table = UpdatePointerTable()
        table.add_edge_pointer(2, 1, ACTIVE_LOGSTORE)
        table.promote_edge_active(2, 1, 8)
        assert table.edge_shards(2, 1) == [8]

    def test_promote_noop_without_active(self):
        table = UpdatePointerTable()
        table.add_node_pointer(1, 3)
        table.promote_node_active(1, 9)
        assert table.node_shards(1) == [3]

    def test_fragment_count(self):
        table = UpdatePointerTable()
        assert table.fragment_count(1) == 0
        table.add_node_pointer(1, 3)
        table.add_edge_pointer(1, 0, 3)
        table.add_edge_pointer(1, 0, 5)
        assert table.fragment_count(1) == 2  # shards {3, 5}

    def test_tracked_nodes(self):
        table = UpdatePointerTable()
        table.add_node_pointer(1, 3)
        table.add_edge_pointer(2, 0, 4)
        assert table.tracked_nodes() == {1, 2}

    def test_serialized_size(self):
        table = UpdatePointerTable()
        assert table.serialized_size_bytes() == 0
        table.add_node_pointer(1, 3)
        assert table.serialized_size_bytes() > 0


class TestDeletionIndex:
    def test_node_bitmap(self):
        index = DeletionIndex(10, 20)
        assert not index.node_deleted(5)
        index.delete_node(5)
        assert index.node_deleted(5)
        assert index.num_deleted_nodes() == 1

    def test_edge_bitmap(self):
        index = DeletionIndex(10, 20)
        index.delete_edge(19)
        assert index.edge_deleted(19)
        assert not index.edge_deleted(0)
        assert index.num_deleted_edges() == 1

    def test_serialized_size(self):
        assert DeletionIndex(64, 64).serialized_size_bytes() == 16

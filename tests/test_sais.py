"""Tests for the SA-IS suffix array builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.sais import build_suffix_array_sais
from repro.succinct.suffix_array import build_suffix_array


def naive(data: bytes):
    return sorted(range(len(data)), key=lambda i: data[i:])


class TestSAIS:
    @pytest.mark.parametrize(
        "text",
        [
            b"banana",
            b"mississippi",
            b"aaaa",
            b"abcabc",
            b"x",
            b"ba",
            b"abab",
            b"cabbage",
            bytes(range(1, 128)),
            b"the quick brown fox jumps over the lazy dog",
        ],
    )
    def test_matches_naive(self, text):
        assert build_suffix_array_sais(text).tolist() == naive(text)

    def test_empty(self):
        assert build_suffix_array_sais(b"").tolist() == []

    def test_deep_recursion_input(self):
        # Repetitive inputs force the recursive reduced problem.
        text = b"abab" * 40 + b"aab" * 30
        assert build_suffix_array_sais(text).tolist() == naive(text)

    def test_random_small_alphabet(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            text = bytes(rng.integers(1, 4, int(rng.integers(1, 120)), dtype=np.uint8))
            assert build_suffix_array_sais(text).tolist() == naive(text)


@settings(max_examples=80, deadline=None)
@given(st.binary(min_size=0, max_size=150))
def test_sais_agrees_with_prefix_doubling(data):
    assert build_suffix_array_sais(data).tolist() == build_suffix_array(data).tolist()


class TestSuccinctFileIntegration:
    def test_sais_backed_file_queries(self):
        from repro.succinct import SuccinctFile

        text = b"compressed graphs, compressed queries"
        sf = SuccinctFile(text, alpha=4, sa_algorithm="sais")
        assert sf.decompress() == text
        assert list(sf.search(b"compressed")) == [0, 19]

    def test_invalid_algorithm_rejected(self):
        from repro.succinct import SuccinctFile

        with pytest.raises(ValueError):
            SuccinctFile(b"abc", sa_algorithm="quantum")

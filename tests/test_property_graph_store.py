"""Property-based tests: ZipG against the in-memory oracle.

A random property graph is compressed, then a random sequence of
appends/deletes is applied to both ZipG and a plain mirror; every query
in the Table 1 API must agree at every step. This exercises the full
stack: layouts, Succinct search/extract, the LogStore, freezes, update
pointers and deletion bitmaps.
"""

import pytest
from conftest import hypothesis_examples
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GraphData, NodeNotFound, ZipG

CITIES = ["Ithaca", "Boston", "Chicago"]
PROPERTY_IDS = ["city", "name"]


@st.composite
def graph_strategy(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=8))
    graph = GraphData()
    for node_id in range(num_nodes):
        properties = {}
        if draw(st.booleans()):
            properties["city"] = draw(st.sampled_from(CITIES))
        if draw(st.booleans()):
            properties["name"] = f"n{node_id}"
        graph.add_node(node_id, properties)
    num_edges = draw(st.integers(min_value=0, max_value=12))
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        etype = draw(st.integers(min_value=0, max_value=2))
        ts = draw(st.integers(min_value=0, max_value=1000))
        graph.add_edge(src, dst, etype, ts)
    return graph


class Mirror:
    """Ground-truth state mirroring ZipG's update semantics."""

    def __init__(self, graph: GraphData):
        self.nodes = {n: graph.node_properties(n) for n in graph.node_ids()}
        self.edges = []  # (src, dst, etype, ts)
        for edge in graph.all_edges():
            self.edges.append([edge.source, edge.destination, edge.edge_type, edge.timestamp])

    def neighbor_ids(self, src, etype):
        out = [
            (ts, dst)
            for (s, dst, et, ts) in self.edges
            if s == src and et == etype
        ]
        return [dst for ts, dst in sorted(out)]

    def find(self, props):
        return sorted(
            n for n, p in self.nodes.items() if all(p.get(k) == v for k, v in props.items())
        )


@settings(max_examples=hypothesis_examples(25), deadline=None)
@given(graph=graph_strategy(), data=st.data())
def test_zipg_agrees_with_oracle_under_updates(graph, data):
    store = ZipG.compress(
        graph,
        num_shards=2,
        alpha=4,
        logstore_threshold_bytes=120,
        extra_property_ids=PROPERTY_IDS,
    )
    mirror = Mirror(graph)
    node_ids = graph.node_ids()
    max_id = max(node_ids) if node_ids else 0

    num_ops = data.draw(st.integers(min_value=0, max_value=12))
    for _ in range(num_ops):
        op = data.draw(st.sampled_from(["add_edge", "add_node", "del_edge", "del_node", "freeze"]))
        if op == "add_edge" and mirror.nodes:
            src = data.draw(st.sampled_from(sorted(mirror.nodes)))
            dst = data.draw(st.integers(min_value=0, max_value=max_id))
            etype = data.draw(st.integers(min_value=0, max_value=2))
            ts = data.draw(st.integers(min_value=0, max_value=1000))
            store.append_edge(src, etype, dst, ts)
            mirror.edges.append([src, dst, etype, ts])
        elif op == "add_node":
            node_id = max_id + 1
            max_id += 1
            properties = {"city": data.draw(st.sampled_from(CITIES))}
            store.append_node(node_id, properties)
            mirror.nodes[node_id] = properties
        elif op == "del_edge" and mirror.edges:
            src, dst, etype, _ = data.draw(st.sampled_from(mirror.edges))
            store.delete_edge(src, etype, dst)
            mirror.edges = [
                e for e in mirror.edges if not (e[0] == src and e[1] == dst and e[2] == etype)
            ]
        elif op == "del_node" and mirror.nodes:
            node_id = data.draw(st.sampled_from(sorted(mirror.nodes)))
            store.delete_node(node_id)
            mirror.nodes.pop(node_id)
        elif op == "freeze":
            store.freeze_logstore()

    # --- Verify every query against the mirror ---
    for node_id in sorted(mirror.nodes):
        assert store.get_node_property(node_id) == mirror.nodes[node_id]
        for etype in range(3):
            assert store.get_neighbor_ids(node_id, etype) == mirror.neighbor_ids(node_id, etype)
            record = store.get_edge_record(node_id, etype)
            expected = sorted(
                ts for (s, d, et, ts) in mirror.edges if s == node_id and et == etype
            )
            assert record.edge_count == len(expected)
            assert [record.timestamp_at(i) for i in range(record.edge_count)] == expected

    for city in CITIES:
        assert store.get_node_ids({"city": city}) == mirror.find({"city": city})

    deleted = [n for n in range(max_id + 1) if n not in mirror.nodes]
    for node_id in deleted[:3]:
        with pytest.raises(NodeNotFound):
            store.get_node_property(node_id)

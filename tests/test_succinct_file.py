"""Unit tests for the Succinct flat-file store."""

import numpy as np
import pytest

from repro.succinct import SuccinctFile


def naive_search(data: bytes, pattern: bytes):
    out = []
    start = 0
    while True:
        index = data.find(pattern, start)
        if index < 0:
            return out
        out.append(index)
        start = index + 1


@pytest.fixture(scope="module")
def sample_text():
    return b"the quick brown fox jumps over the lazy dog; the fox was quick."


@pytest.fixture(scope="module")
def sample_file(sample_text):
    return SuccinctFile(sample_text, alpha=4)


class TestConstruction:
    def test_rejects_sentinel_in_input(self):
        with pytest.raises(ValueError):
            SuccinctFile(b"bad\x00data")

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            SuccinctFile(b"abc", alpha=0)

    def test_empty_input(self):
        sf = SuccinctFile(b"")
        assert len(sf) == 0
        assert sf.extract(0, 10) == b""
        assert sf.count(b"x") == 0

    def test_single_byte(self):
        sf = SuccinctFile(b"a", alpha=1)
        assert sf.extract(0, 1) == b"a"
        assert sf.count(b"a") == 1

    def test_len_is_input_size(self, sample_file, sample_text):
        assert len(sample_file) == len(sample_text)


class TestExtract:
    def test_full_roundtrip(self, sample_file, sample_text):
        assert sample_file.decompress() == sample_text

    def test_every_offset_and_length(self):
        text = b"abracadabra"
        sf = SuccinctFile(text, alpha=3)
        for offset in range(len(text) + 1):
            for length in range(len(text) - offset + 1):
                assert sf.extract(offset, length) == text[offset : offset + length]

    def test_extract_clamps_at_end(self, sample_file, sample_text):
        assert sample_file.extract(len(sample_text) - 3, 100) == sample_text[-3:]

    def test_extract_rejects_bad_offset(self, sample_file):
        with pytest.raises(IndexError):
            sample_file.extract(-1, 1)
        with pytest.raises(IndexError):
            sample_file.extract(len(sample_file) + 1, 1)

    def test_extract_rejects_negative_length(self, sample_file):
        with pytest.raises(ValueError):
            sample_file.extract(0, -1)

    def test_char_at(self, sample_file, sample_text):
        for offset in (0, 5, len(sample_text) - 1):
            assert sample_file.char_at(offset) == sample_text[offset]

    def test_extract_until(self):
        sf = SuccinctFile(b"alpha;beta;gamma", alpha=2)
        assert sf.extract_until(0, ord(";")) == b"alpha"
        assert sf.extract_until(6, ord(";")) == b"beta"
        assert sf.extract_until(11, ord(";")) == b"gamma"  # hits EOF

    def test_extract_until_limit(self):
        sf = SuccinctFile(b"alpha;beta", alpha=2)
        assert sf.extract_until(0, ord(";"), limit=3) == b"alp"


class TestSearch:
    @pytest.mark.parametrize(
        "pattern", [b"the", b"fox", b"quick", b"q", b".", b"zzz", b"the fox"]
    )
    def test_matches_naive(self, sample_file, sample_text, pattern):
        got = list(sample_file.search(pattern))
        assert got == naive_search(sample_text, pattern)

    def test_count_matches_search(self, sample_file):
        for pattern in (b"the", b"o", b"nothere"):
            assert sample_file.count(pattern) == len(sample_file.search(pattern))

    def test_empty_pattern_counts_all_positions(self, sample_file, sample_text):
        # Every suffix (including the sentinel's) matches the empty pattern.
        assert sample_file.count(b"") == len(sample_text) + 1

    def test_pattern_with_sentinel_rejected(self, sample_file):
        with pytest.raises(ValueError):
            sample_file.search(b"a\x00b")

    def test_overlapping_occurrences(self):
        sf = SuccinctFile(b"aaaa", alpha=1)
        assert list(sf.search(b"aa")) == [0, 1, 2]

    def test_repetitive_text(self):
        text = b"abcabcabcabc"
        sf = SuccinctFile(text, alpha=2)
        assert list(sf.search(b"abc")) == naive_search(text, b"abc")
        assert list(sf.search(b"cab")) == naive_search(text, b"cab")


class TestAlphaTradeoff:
    @pytest.mark.parametrize("alpha", [1, 2, 4, 8, 16, 64])
    def test_correct_at_all_sampling_rates(self, sample_text, alpha):
        sf = SuccinctFile(sample_text, alpha=alpha)
        assert sf.decompress() == sample_text
        assert list(sf.search(b"the")) == naive_search(sample_text, b"the")

    def test_larger_alpha_smaller_footprint(self):
        text = bytes(np.random.default_rng(7).integers(1, 255, 4000, dtype=np.uint8))
        small = SuccinctFile(text, alpha=4).serialized_size_bytes()
        large = SuccinctFile(text, alpha=64).serialized_size_bytes()
        assert large < small

    def test_larger_alpha_more_hops(self, sample_text):
        fast = SuccinctFile(sample_text, alpha=1)
        slow = SuccinctFile(sample_text, alpha=32)
        fast.extract(17, 5)
        slow.extract(17, 5)
        assert slow.stats.npa_hops > fast.stats.npa_hops


class TestStats:
    def test_extract_counts(self, sample_text):
        sf = SuccinctFile(sample_text, alpha=4)
        sf.extract(3, 7)
        assert sf.stats.random_accesses == 1
        assert sf.stats.sequential_bytes == 7

    def test_search_counts(self, sample_text):
        sf = SuccinctFile(sample_text, alpha=4)
        hits = sf.search(b"the")
        assert sf.stats.searches == 1
        assert sf.stats.random_accesses == len(hits)

    def test_compressible_text_compresses(self):
        # Highly repetitive text => NPA deltas are tiny => real compression.
        text = b"abcd" * 4096
        sf = SuccinctFile(text, alpha=64)
        assert sf.serialized_size_bytes() < sf.original_size_bytes()
        assert sf.compression_ratio() > 1.0

"""Property-based tests for the NodeFile / EdgeFile layouts.

Random property lists and edge sets must round-trip exactly through
the compressed flat-file layouts, and search must agree with a naive
evaluation -- for both delimiter regimes (1- and 2-byte).
"""

import string

from conftest import hypothesis_examples
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delimiters import DelimiterMap
from repro.core.edgefile import EdgeFile
from repro.core.model import Edge
from repro.core.nodefile import NodeFile

value_strategy = st.text(
    alphabet=string.ascii_letters + string.digits + " .,-", min_size=0, max_size=20
)
SMALL_POOL = ["age", "city", "name", "zip"]
BIG_POOL = [f"p{i:03d}" for i in range(30)]  # 2-byte delimiter regime
small_ids = st.sampled_from(SMALL_POOL)
big_ids = st.sampled_from(BIG_POOL)


@st.composite
def node_map_strategy(draw, id_pool):
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    nodes = {}
    for node_id in range(num_nodes):
        properties = draw(
            st.dictionaries(id_pool, value_strategy, max_size=4)
        )
        nodes[node_id * 3] = properties  # non-contiguous ids
    return nodes


@settings(max_examples=hypothesis_examples(40), deadline=None)
@given(nodes=node_map_strategy(small_ids), alpha=st.integers(min_value=1, max_value=8))
def test_nodefile_roundtrip_single_byte(nodes, alpha):
    _check_nodefile(nodes, SMALL_POOL, alpha)


@settings(max_examples=hypothesis_examples(25), deadline=None)
@given(nodes=node_map_strategy(big_ids), alpha=st.integers(min_value=1, max_value=8))
def test_nodefile_roundtrip_two_byte(nodes, alpha):
    _check_nodefile(nodes, BIG_POOL, alpha)


def _check_nodefile(nodes, id_pool, alpha):
    # Build the map over the full pool, like a shared graph-wide map.
    dmap = DelimiterMap(id_pool)
    node_file = NodeFile(nodes, dmap, alpha=alpha)
    for node_id, properties in nodes.items():
        stored = node_file.get_properties(node_id)
        expected = {k: v for k, v in properties.items() if v != ""}
        assert stored == expected
        for property_id, value in properties.items():
            got = node_file.get_property(node_id, property_id)
            assert got == (value if value != "" else None)
    # Exact-value search agrees with a naive scan.
    for node_id, properties in nodes.items():
        for property_id, value in properties.items():
            if value == "":
                continue
            expected_nodes = sorted(
                n for n, p in nodes.items() if p.get(property_id) == value
            )
            assert node_file.find_nodes({property_id: value}) == expected_nodes


@st.composite
def edge_map_strategy(draw):
    num_records = draw(st.integers(min_value=1, max_value=5))
    edges = {}
    for _ in range(num_records):
        source = draw(st.integers(min_value=0, max_value=50))
        edge_type = draw(st.integers(min_value=0, max_value=3))
        if (source, edge_type) in edges:
            continue
        bucket = []
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            bucket.append(Edge(
                source,
                draw(st.integers(min_value=0, max_value=10_000)),
                edge_type,
                draw(st.integers(min_value=0, max_value=100_000)),
                draw(st.dictionaries(small_ids, value_strategy, max_size=2)),
            ))
        edges[(source, edge_type)] = bucket
    return edges


@settings(max_examples=hypothesis_examples(40), deadline=None)
@given(edges=edge_map_strategy(), alpha=st.integers(min_value=2, max_value=16))
def test_edgefile_roundtrip(edges, alpha):
    dmap = DelimiterMap(["age", "city", "name", "zip"])
    edge_file = EdgeFile(edges, dmap, alpha=alpha)
    for (source, edge_type), bucket in edges.items():
        record = edge_file.find_record(source, edge_type)
        assert record is not None
        expected = sorted(bucket, key=lambda e: (e.timestamp, e.destination))
        assert record.edge_count == len(expected)
        for order, edge in enumerate(expected):
            assert record.timestamp_at(order) == edge.timestamp
            assert record.destination_at(order) == edge.destination
            # Sparse (delimiter-bounded) edge PropertyLists round-trip
            # exactly -- empty strings included.
            assert record.properties_at(order) == edge.properties


@settings(max_examples=hypothesis_examples(30), deadline=None)
@given(edges=edge_map_strategy(), data=st.data())
def test_edgefile_time_range_matches_bisect(edges, data):
    import bisect

    dmap = DelimiterMap(["age", "city", "name", "zip"])
    edge_file = EdgeFile(edges, dmap, alpha=4)
    for (source, edge_type), bucket in edges.items():
        record = edge_file.find_record(source, edge_type)
        timestamps = sorted(e.timestamp for e in bucket)
        t_low = data.draw(st.integers(min_value=0, max_value=100_001))
        t_high = data.draw(st.integers(min_value=t_low, max_value=100_002))
        begin, end = record.time_range(t_low, t_high)
        assert begin == bisect.bisect_left(timestamps, t_low)
        assert end == bisect.bisect_left(timestamps, t_high)


@settings(max_examples=hypothesis_examples(30), deadline=None)
@given(edges=edge_map_strategy())
def test_edgefile_width_policies_agree(edges):
    """Per-record and global width policies store identical content."""
    dmap = DelimiterMap(["age", "city", "name", "zip"])
    per_record = EdgeFile(edges, dmap, alpha=4, width_policy="per-record")
    global_width = EdgeFile(edges, dmap, alpha=4, width_policy="global")
    assert per_record.original_size_bytes() <= global_width.original_size_bytes()
    for key in edges:
        left = per_record.find_record(*key)
        right = global_width.find_record(*key)
        assert left.edge_count == right.edge_count
        for order in range(left.edge_count):
            assert left.timestamp_at(order) == right.timestamp_at(order)
            assert left.destination_at(order) == right.destination_at(order)

"""Tests for ZipQL, the Cypher-inspired query layer."""

import pytest

from repro.bench.systems import build_system
from repro.core import GraphData
from repro.query import ParseError, QueryEngine, parse_query


@pytest.fixture(scope="module")
def graph():
    graph = GraphData()
    people = {
        0: {"name": "Alice", "city": "Ithaca", "interest": "Music"},
        1: {"name": "Bob", "city": "Boston", "interest": "Music"},
        2: {"name": "Carol", "city": "Ithaca", "interest": "Films"},
        3: {"name": "Dan", "city": "Ithaca", "interest": "Music"},
        4: {"name": "Eve", "city": "Boston", "interest": "Art"},
    }
    for node_id, properties in people.items():
        graph.add_node(node_id, properties)
    graph.add_edge(0, 1, 0, 10)   # friend edges (type 0)
    graph.add_edge(0, 2, 0, 20)
    graph.add_edge(2, 3, 0, 30)
    graph.add_edge(1, 4, 0, 40)
    graph.add_edge(0, 3, 1, 50)   # likes edges (type 1)
    graph.add_edge(3, 4, 1, 60)
    return graph


@pytest.fixture(scope="module", params=["zipg", "neo4j-tuned"])
def engine(request, graph):
    system = build_system(request.param, graph, num_shards=2, alpha=4)
    return QueryEngine(system, graph.node_ids())


class TestParser:
    def test_basic_shape(self):
        query = parse_query('MATCH (a)-[:0]->(b) RETURN b')
        assert query.source.variable == "a"
        assert query.edge.path_expression == "0"
        assert query.target.variable == "b"

    def test_node_properties_and_id(self):
        query = parse_query('MATCH (a {city: "Ithaca", id: 3})-[:1]->(b) RETURN a')
        assert query.source.node_id == 3
        assert query.source.properties == {"city": "Ithaca"}

    def test_where_and_returns(self):
        query = parse_query(
            'MATCH (a)-[:0]->(b) WHERE b.city = "Boston" AND a.city = "Ithaca" '
            'RETURN a, b.name'
        )
        assert len(query.predicates) == 2
        assert query.returns[1].property_id == "name"

    def test_path_expressions(self):
        assert parse_query('MATCH (a)-[:0/1]->(b) RETURN b').edge.path_expression == "0/1"
        assert parse_query('MATCH (a)-[:0|1]->(b) RETURN b').edge.path_expression == "0|1"
        assert parse_query('MATCH (a)-[:(0/1)*]->(b) RETURN b').edge.path_expression == "(0/1)*"

    def test_wildcard_edge(self):
        assert parse_query('MATCH (a)-[*]->(b) RETURN b').edge.path_expression is None

    def test_node_only(self):
        query = parse_query('MATCH (a {city: "Ithaca"}) RETURN a')
        assert query.edge is None and query.target is None

    @pytest.mark.parametrize(
        "bad",
        [
            'MATCH a RETURN a',
            'MATCH (a)-[:0]->(b)',
            'MATCH (a)-[:0]->(b) RETURN c',
            'MATCH (a)-[:0]->(b) WHERE c.x = "y" RETURN a',
            'MATCH (a {id: "five"})-[:0]->(b) RETURN b',
            'MATCH (a)-[:zz]->(b) RETURN b',
            'MATCH (a)-[:]->(b) RETURN b',
            'RETURN a',
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)


class TestExecution:
    def test_node_only_search(self, engine):
        result = engine.execute('MATCH (a {city: "Ithaca"}) RETURN a')
        assert sorted(result.column("a")) == [0, 2, 3]

    def test_anchored_by_id(self, engine):
        result = engine.execute('MATCH (a {id: 0})-[:0]->(b) RETURN b')
        assert sorted(result.column("b")) == [1, 2]

    def test_anchored_by_property(self, engine):
        result = engine.execute('MATCH (a {city: "Boston"})-[:0]->(b) RETURN a, b')
        assert [(r["a"], r["b"]) for r in result] == [(1, 4)]

    def test_target_properties(self, engine):
        result = engine.execute(
            'MATCH (a {id: 0})-[:0]->(b {city: "Ithaca"}) RETURN b'
        )
        assert result.column("b") == [2]

    def test_where_clause(self, engine):
        result = engine.execute(
            'MATCH (a {id: 0})-[:0]->(b) WHERE b.interest = "Music" RETURN b.name'
        )
        assert result.column("b.name") == ["Bob"]

    def test_projection(self, engine):
        result = engine.execute('MATCH (a {id: 2}) RETURN a.name, a.city')
        assert result.rows == [{"a.name": "Carol", "a.city": "Ithaca"}]

    def test_wildcard_edge(self, engine):
        result = engine.execute('MATCH (a {id: 0})-[*]->(b) RETURN b')
        assert sorted(result.column("b")) == [1, 2, 3]

    def test_path_regex_two_hops(self, engine):
        result = engine.execute('MATCH (a {id: 0})-[:0/0]->(b) RETURN b')
        assert sorted(set(result.column("b"))) == [3, 4]

    def test_path_regex_alternation(self, engine):
        result = engine.execute('MATCH (a {id: 3})-[:0|1]->(b) RETURN b')
        assert result.column("b") == [4]

    def test_unanchored_regex_seeds_by_label(self, engine):
        result = engine.execute('MATCH (a)-[:1]->(b) RETURN a, b')
        assert sorted((r["a"], r["b"]) for r in result) == [(0, 3), (3, 4)]

    def test_kleene_star(self, engine):
        result = engine.execute('MATCH (a {id: 0})-[:0*]->(b) RETURN b')
        # reflexive + transitive closure of friend edges from 0
        assert sorted(set(result.column("b"))) == [0, 1, 2, 3, 4]

    def test_empty_result(self, engine):
        result = engine.execute('MATCH (a {city: "Nowhere"}) RETURN a')
        assert len(result) == 0

    def test_conflicting_anchor(self, engine):
        result = engine.execute('MATCH (a {id: 0, city: "Boston"}) RETURN a')
        assert len(result) == 0

    def test_column_accessor_unknown(self, engine):
        result = engine.execute('MATCH (a {id: 0}) RETURN a')
        with pytest.raises(KeyError):
            result.column("z")

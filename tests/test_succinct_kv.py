"""Unit tests for the Succinct key-value interface."""

import pytest

from repro.succinct import SuccinctKV
from repro.succinct.kv import build_kv


@pytest.fixture
def records():
    return {
        10: b"age=42;location=Ithaca",
        20: b"age=24;location=Princeton",
        35: b"age=31;location=Ithaca;nickname=Cat",
        7: b"location=Boston",
    }


@pytest.fixture
def kv(records):
    return SuccinctKV(records, alpha=4)


class TestGet:
    def test_get_every_record(self, kv, records):
        for key, value in records.items():
            assert kv.get(key) == value

    def test_missing_key_raises(self, kv):
        with pytest.raises(KeyError):
            kv.get(999)

    def test_contains(self, kv):
        assert 10 in kv
        assert 11 not in kv

    def test_len_and_keys_sorted(self, kv):
        assert len(kv) == 4
        assert kv.keys().tolist() == [7, 10, 20, 35]

    def test_empty_store(self):
        kv = SuccinctKV({})
        assert len(kv) == 0
        assert kv.search(b"x") == []

    def test_value_with_delimiter_rejected(self):
        with pytest.raises(ValueError):
            SuccinctKV({1: b"bad\x1evalue"})


class TestSearch:
    def test_search_finds_matching_keys(self, kv):
        assert kv.search(b"Ithaca") == [10, 35]
        assert kv.search(b"Boston") == [7]

    def test_search_no_match(self, kv):
        assert kv.search(b"Chicago") == []

    def test_search_deduplicates_within_record(self):
        kv = SuccinctKV({1: b"abab", 2: b"cd"})
        assert kv.search(b"ab") == [1]

    def test_offset_translation(self, kv, records):
        for key in records:
            offset = kv.record_offset(key)
            assert kv.offset_to_key(offset) == key
            # Any offset inside the record maps back to the same key.
            assert kv.offset_to_key(offset + 2) == key


class TestRandomAccessWithinRecord:
    def test_extract_from(self, kv):
        assert kv.extract_from(10, 4, 2) == b"42"
        assert kv.extract_from(35, 0, 6) == b"age=31"

    def test_sizes_accounted(self, kv, records):
        payload = sum(len(v) + 1 for v in records.values())
        assert kv.original_size_bytes() == payload
        assert kv.serialized_size_bytes() > 0

    def test_build_kv_helper(self):
        kv = build_kv([(1, b"one"), (2, b"two")])
        assert kv.get(2) == b"two"

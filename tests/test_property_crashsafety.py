"""Property-based crash safety: a stateful machine mutating a
WAL-armed store, crashing at random injected points, and checking that
recovery always matches the oracle of applied operations."""

import shutil
import tempfile

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from conftest import chaos_seeds, hypothesis_examples
from repro import chaos
from repro.chaos import ChaosInjector, FaultRule, SimulatedCrash
from repro.core import GraphData, ZipG
from repro.core.persistence import SAVE_CRASH_POINTS, attach_wal, load_store, save_store
from repro.core.wal import CRASH_POINT_POST_FSYNC, CRASH_POINT_PRE_FSYNC

NODE_IDS = st.integers(min_value=0, max_value=15)
TIMESTAMPS = st.integers(min_value=0, max_value=10_000)
CRASH_SITES = list(SAVE_CRASH_POINTS) + [
    CRASH_POINT_PRE_FSYNC,
    CRASH_POINT_POST_FSYNC,
    chaos.SITE_SAVE_WRITE,
    chaos.SITE_WAL_WRITE,
]


def fresh_store():
    graph = GraphData()
    for i in range(4):
        graph.add_node(i, {"name": f"seed{i}", "city": "Ithaca"})
    graph.add_edge(0, 1, 0, 10)
    graph.add_edge(1, 2, 0, 20)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=1 << 20)


class CrashSafetyMachine(RuleBasedStateMachine):
    """Mutations go to a live WAL-armed store; a ``crash_during_*``
    rule kills the process model mid-operation, after which we model
    the restart: reload from disk and keep going.  The invariant
    compares the store against an oracle updated only when an
    operation *returned* (crashed WAL appends may or may not have
    become durable -- both outcomes are accepted and resynced)."""

    def __init__(self):
        super().__init__()
        self.root = tempfile.mkdtemp(prefix="zipg-crash-")
        self.store = fresh_store()
        save_store(self.store, self.root)
        attach_wal(self.store, self.root)

    def teardown(self):
        chaos.uninstall()
        shutil.rmtree(self.root, ignore_errors=True)

    # -- plain operations (always succeed, oracle applies) ------------

    @initialize()
    def start(self):
        pass

    @rule(node=NODE_IDS, ts=TIMESTAMPS, other=NODE_IDS)
    def append_edge(self, node, ts, other):
        self.store.append_edge(node, 0, other, timestamp=ts)

    @rule(node=NODE_IDS)
    def append_node(self, node):
        self.store.append_node(node, {"name": f"v{node}", "city": "Ithaca"})

    @rule(node=NODE_IDS, other=NODE_IDS)
    def delete_edge(self, node, other):
        self.store.delete_edge(node, 0, other)

    @rule()
    def snapshot(self):
        save_store(self.store, self.root)

    # -- crashing operations -------------------------------------------

    @rule(site=st.sampled_from(CRASH_SITES), node=NODE_IDS, ts=TIMESTAMPS)
    def crash_during_append(self, site, node, ts):
        fault = "torn_write" if site.endswith("write") else "crash"
        injector = ChaosInjector(seed=node, rules=[
            FaultRule(site=site, fault=fault, times=1),
        ])
        with chaos.injected(injector):
            try:
                self.store.append_edge(node, 0, (node + 1) % 16, timestamp=ts)
            except SimulatedCrash:
                self.restart()

    @rule(site=st.sampled_from(CRASH_SITES), seed=st.integers(0, 99))
    def crash_during_save(self, site, seed):
        fault = "torn_write" if site.endswith("write") else "crash"
        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site=site, fault=fault, times=1),
        ])
        with chaos.injected(injector):
            try:
                save_store(self.store, self.root)
            except SimulatedCrash:
                self.restart()

    def restart(self):
        """The process died: everything in memory is gone.  Recovery
        must never raise, and its answers replace the live store."""
        self.store = load_store(self.root)

    # -- the safety property -------------------------------------------

    @invariant()
    def reload_matches_live_store(self):
        """At every quiescent point, what is on disk must reproduce
        the live store exactly (the WAL makes every completed mutation
        durable)."""
        recovered = load_store(self.root, attach_wal=False)
        for node in range(16):
            assert recovered.has_node(node) == self.store.has_node(node)
            if self.store.has_node(node):
                assert recovered.get_node_property(node) == \
                    self.store.get_node_property(node)
            left = self.store.get_edge_record(node, 0)
            right = recovered.get_edge_record(node, 0)
            assert right.edge_count == left.edge_count
            assert right.destinations() == left.destinations()
        assert recovered.get_node_ids({"city": "Ithaca"}) == \
            self.store.get_node_ids({"city": "Ithaca"})


CrashSafetyMachine.TestCase.settings = settings(
    max_examples=hypothesis_examples(10),
    stateful_step_count=12,
    deadline=None,
)

TestCrashSafety = CrashSafetyMachine.TestCase


@pytest.mark.parametrize("seed", chaos_seeds())
def test_quick_crash_loop(seed):
    """A deterministic, non-Hypothesis companion: one crash at every
    site for each CI chaos seed (fast enough for the PR gate)."""
    for site in CRASH_SITES:
        root = tempfile.mkdtemp(prefix="zipg-loop-")
        try:
            store = fresh_store()
            save_store(store, root)
            attach_wal(store, root)
            fault = "torn_write" if site.endswith("write") else "crash"
            injector = ChaosInjector(seed=seed, rules=[
                FaultRule(site=site, fault=fault, times=1),
            ])
            with chaos.injected(injector):
                try:
                    store.append_edge(0, 0, 5, timestamp=77)
                    save_store(store, root)
                except SimulatedCrash:
                    pass  # the kill; recovery below must still work
            recovered = load_store(root)
            assert recovered.get_edge_record(0, 0).edge_count in (1, 2)
        finally:
            chaos.uninstall()
            shutil.rmtree(root, ignore_errors=True)

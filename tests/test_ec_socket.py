"""End-to-end erasure coding over real processes and TCP.

The issue's acceptance scenario: ``repro ec-encode`` a graph, spawn
three ``serve-shard`` processes each holding only *its* fragment
directory, front them with ``serve-master --placement ec``, SIGKILL
one shard server, and verify reads come back **complete** (non-partial
-- reconstruction over ``ec_fetch_fragment`` RPCs, since the killed
server's fragments are genuinely unreachable).  Then restart the
server with a blank fragment disk, ``recover_server`` it, and watch
the background rebuild repopulate its fragments and re-admit it.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.bench.systems import ZipGSystem
from repro.cli import main
from repro.cluster import PartialResult
from repro.core import GraphData
from repro.ec import ECManifest, FragmentStore
from repro.server.client import ZipGClient

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)
NUM_SHARDS = 4
NUM_SERVERS = 3
ALPHA = 8


def build_graph() -> GraphData:
    graph = GraphData()
    for i in range(20):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
    for i in range(20):
        graph.add_edge(i, (i + 1) % 20, 0, timestamp=i)
        graph.add_edge(i, (i + 3) % 20, 1, timestamp=100 + i)
    return graph


def write_graph_file(graph: GraphData, path) -> None:
    lines = []
    for node_id in sorted(graph.node_ids()):
        properties = graph.node_properties(node_id)
        encoded = ";".join(f"{k}={v}" for k, v in sorted(properties.items()))
        lines.append(f"N {node_id} {encoded}")
    for edge in graph.all_edges():
        lines.append(f"E {edge.source} {edge.destination} "
                     f"{edge.edge_type} {edge.timestamp}")
    path.write_text("\n".join(lines) + "\n")


def spawn(*cli_args: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *cli_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def read_listening(proc: subprocess.Popen, timeout_s: float = 120.0):
    result = {}

    def reader():
        result["line"] = proc.stdout.readline()

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout_s)
    line = result.get("line", "")
    if not line.startswith("LISTENING"):
        proc.kill()
        stderr = proc.stderr.read() if proc.stderr else ""
        raise AssertionError(
            f"server did not announce its address: {line!r}\n{stderr}"
        )
    _tag, host, port = line.split()
    return host, int(port)


class EcDeployment:
    """Three fragment-holding shard servers plus an ec master."""

    def __init__(self, graph_file, ec_root: str):
        self.graph_file = str(graph_file)
        self.ec_root = ec_root
        self.procs = {}
        self.addresses = {}
        for server_id in range(NUM_SERVERS):
            self.spawn_shard(server_id, port=0)
        master = spawn(
            "serve-master", "--file", self.graph_file, "--port", "0",
            "--shards", str(NUM_SHARDS), "--alpha", str(ALPHA),
            "--placement", "ec", "--ec-root", ec_root, "--retries", "1",
            *self.shard_flags(),
        )
        self.procs["master"] = master
        self.master_address = read_listening(master)

    def shard_flags(self):
        flags = []
        for server_id, (host, port) in sorted(self.addresses.items()):
            flags.extend(["--shard", f"{server_id}={host}:{port}"])
        return flags

    def spawn_shard(self, server_id: int, port: int) -> None:
        proc = spawn(
            "serve-shard", "--server-id", str(server_id),
            "--file", self.graph_file, "--port", str(port),
            "--shards", str(NUM_SHARDS), "--alpha", str(ALPHA),
            "--ec-dir", os.path.join(self.ec_root, f"server-{server_id}"),
        )
        self.procs[f"shard{server_id}"] = proc
        self.addresses[server_id] = read_listening(proc)

    def kill_shard(self, server_id: int) -> None:
        proc = self.procs[f"shard{server_id}"]
        proc.kill()
        self.reap(proc)

    def restart_shard(self, server_id: int) -> None:
        """Bring a killed server back on its original address."""
        self.spawn_shard(server_id, port=self.addresses[server_id][1])

    @staticmethod
    def reap(proc: subprocess.Popen) -> int:
        try:
            return proc.wait(timeout=15)
        finally:
            for stream in (proc.stdout, proc.stderr):
                if stream:
                    stream.close()

    def interrupt(self, name: str) -> int:
        proc = self.procs[name]
        proc.send_signal(signal.SIGINT)
        return self.reap(proc)

    def close(self):
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
            self.reap(proc)


@pytest.fixture
def deployment(tmp_path):
    graph_file = tmp_path / "graph.txt"
    write_graph_file(build_graph(), graph_file)
    ec_root = str(tmp_path / "ec")
    # Encode once, in-process: the CLI path the operators run.
    assert main(["ec-encode", "--file", str(graph_file),
                 "--ec-root", ec_root,
                 "--num-servers", str(NUM_SERVERS),
                 "--shards", str(NUM_SHARDS), "--alpha", str(ALPHA)]) == 0
    deployment = EcDeployment(graph_file, ec_root)
    try:
        yield deployment
    finally:
        deployment.close()


def run_read_mix(client: ZipGClient, system: ZipGSystem) -> None:
    """Reads across every routing path, checked against a local store."""
    for node_id in (0, 3, 7, 12, 19):
        assert client.get_node_property(node_id) == \
            system.get_node_property(node_id)
        assert client.get_neighbor_ids(node_id) == \
            system.get_neighbor_ids(node_id)
    assert client.get_node_ids({"kind": "x"}) == \
        system.get_node_ids({"kind": "x"})


def wait_until(predicate, timeout_s: float = 90.0, interval_s: float = 0.25):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def test_ec_deployment_survives_sigkill_and_rebuilds(deployment, tmp_path):
    graph = build_graph()
    system = ZipGSystem.load(graph, num_shards=NUM_SHARDS, alpha=ALPHA)
    ec_root = deployment.ec_root
    manifest = ECManifest.load(os.path.join(ec_root, "ec-manifest.json"))
    host, port = deployment.master_address
    with ZipGClient(host, port, timeout_s=60.0) as client:
        topology = client.topology()
        assert topology["placement"] == "ec"
        assert topology["replication_factor"] == 1
        assert topology["num_servers"] == NUM_SERVERS

        # Phase 1: healthy parity, then replicated writes.
        run_read_mix(client, system)
        client.append_node(500, {"name": "added", "kind": "x"})
        system.append_node(500, {"name": "added", "kind": "x"})
        assert client.get_node_property(500) == \
            {"name": "added", "kind": "x"}

        # Phase 2: kill -9 one shard server.  Its shard has NO replica
        # (replication_factor=1) -- yet reads stay complete because the
        # master reconstructs from the survivors' fragments over RPC.
        deployment.kill_shard(1)
        run_read_mix(client, system)
        partial = client.get_node_ids({"kind": "x"}, partial_results=True)
        assert isinstance(partial, PartialResult)
        assert partial.complete and not partial.errors
        assert partial.value == system.get_node_ids({"kind": "x"})

        # A write quarantines the dead server (its apply_write fails).
        client.append_node(501, {"name": "late", "kind": "y"})
        system.append_node(501, {"name": "late", "kind": "y"})
        assert client.down_servers() == [1]
        run_read_mix(client, system)

        # Phase 3: the server returns with a blank fragment disk.
        victim = FragmentStore(os.path.join(ec_root, "server-1"))
        assert victim.wipe() > 0
        deployment.restart_shard(1)
        assert client.recover_server(1)
        assert wait_until(
            lambda: not client.down_servers()
            and not client.catching_up_servers()
        ), "rebuild did not re-admit server 1"

        # Its fragments were re-encoded from the survivors and pushed
        # back over ec_store_fragment, byte-verified.
        for name, index in manifest.server_fragments(1):
            info = manifest.files[name].fragments[index]
            assert victim.has(name, index, info.crc32, info.bytes)

        # Re-admitted server answers again; parity holds end to end.
        run_read_mix(client, system)
        assert client.get_node_property(501) == \
            {"name": "late", "kind": "y"}

    assert deployment.interrupt("master") == 0
    for server_id in range(NUM_SERVERS):
        assert deployment.interrupt(f"shard{server_id}") == 0

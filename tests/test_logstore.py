"""Unit tests for the query-optimized LogStore."""

import pytest

from repro.core.logstore import LogStore
from repro.core.model import Edge


@pytest.fixture
def store():
    log = LogStore()
    log.append_node(1, {"name": "Alice", "city": "Ithaca"})
    log.append_node(2, {"name": "Bob", "city": "Ithaca"})
    log.append_edge(Edge(1, 2, 0, 300))
    log.append_edge(Edge(1, 3, 0, 100))
    log.append_edge(Edge(1, 4, 1, 200, {"note": "x"}))
    return log


class TestNodes:
    def test_get_properties(self, store):
        assert store.get_properties(1) == {"name": "Alice", "city": "Ithaca"}
        assert store.get_properties(1, ["city"]) == {"city": "Ithaca"}
        assert store.get_property(2, "name") == "Bob"
        assert store.get_property(2, "zip") is None

    def test_find_live_nodes_uses_index(self, store):
        assert store.find_live_nodes({"city": "Ithaca"}) == [1, 2]
        assert store.find_live_nodes({"city": "Ithaca", "name": "Bob"}) == [2]
        assert store.find_live_nodes({"city": "Nowhere"}) == []

    def test_find_all(self, store):
        assert store.find_live_nodes({}) == [1, 2]

    def test_reappend_replaces_version(self, store):
        store.append_node(1, {"name": "Alice", "city": "Boston"})
        assert store.get_property(1, "city") == "Boston"
        assert store.find_live_nodes({"city": "Ithaca"}) == [2]

    def test_delete_node(self, store):
        assert store.delete_node(1)
        assert not store.node_live(1)
        assert store.find_live_nodes({"city": "Ithaca"}) == [2]
        assert not store.delete_node(1)  # already tombstoned
        assert not store.delete_node(99)  # never present

    def test_append_revives_tombstone(self, store):
        store.delete_node(1)
        store.append_node(1, {"name": "Alice2"})
        assert store.node_live(1)


class TestEdges:
    def test_fragment_sorted_by_timestamp(self, store):
        fragment = store.edge_fragment(1, 0)
        assert fragment.edge_count == 2
        assert [fragment.timestamp_at(i) for i in range(2)] == [100, 300]
        assert fragment.all_destinations() == [3, 2]

    def test_missing_fragment(self, store):
        assert store.edge_fragment(9, 0) is None
        assert store.edge_fragment(1, 7) is None

    def test_fragments_wildcard(self, store):
        fragments = store.edge_fragments(1)
        assert sorted(f.edge_type for f in fragments) == [0, 1]

    def test_fragments_of_type(self, store):
        fragments = store.fragments_of_type(0)
        assert [f.source for f in fragments] == [1]

    def test_edge_data(self, store):
        fragment = store.edge_fragment(1, 1)
        data = fragment.edge_data_at(0)
        assert (data.destination, data.timestamp) == (4, 200)
        assert data.properties == {"note": "x"}

    def test_time_range(self, store):
        fragment = store.edge_fragment(1, 0)
        assert fragment.time_range(100, 300) == (0, 1)
        assert fragment.time_range(None, None) == (0, 2)

    def test_delete_edges_physical(self, store):
        # LogStore deletes are physical: the edge vanishes from the
        # fragment (no tombstone that a re-append could resurrect).
        assert store.delete_edges(1, 0, 2) == 1
        fragment = store.edge_fragment(1, 0)
        assert fragment.edge_count == 1
        assert fragment.all_destinations() == [3]
        assert fragment.deleted_count() == 0

    def test_delete_then_reappend_single_edge(self, store):
        store.delete_edges(1, 0, 2)
        store.append_edge(Edge(1, 2, 0, 999))
        fragment = store.edge_fragment(1, 0)
        assert fragment.all_destinations() == [3, 2]  # exactly one copy back

    def test_delete_missing_edge(self, store):
        assert store.delete_edges(1, 0, 999) == 0


class TestFreezeSupport:
    def test_live_contents_reflects_deletes(self, store):
        store.delete_node(2)
        store.delete_edges(1, 0, 3)
        nodes, edges = store.live_contents()
        assert set(nodes) == {1}
        assert [e.destination for e in edges[(1, 0)]] == [2]
        assert (1, 1) in edges

    def test_fully_deleted_record_dropped(self, store):
        store.delete_edges(1, 1, 4)
        _, edges = store.live_contents()
        assert (1, 1) not in edges
        assert store.edge_fragment(1, 1) is None

    def test_is_empty(self):
        assert LogStore().is_empty()

    def test_size_grows_with_writes(self):
        log = LogStore()
        assert log.size_bytes() == 0
        log.append_node(1, {"a": "b"})
        first = log.size_bytes()
        log.append_edge(Edge(1, 2, 0, 10))
        assert log.size_bytes() > first

    def test_size_shrinks_on_physical_delete(self):
        log = LogStore()
        log.append_edge(Edge(1, 2, 0, 10))
        before = log.size_bytes()
        log.delete_edges(1, 0, 2)
        assert log.size_bytes() < before

    def test_serialized_size_includes_index_overhead(self, store):
        assert store.serialized_size_bytes() > store.size_bytes()

"""repro.chaos: deterministic fault injection + resilient executor."""

import io
import threading
import time

import pytest

from repro import chaos
from repro.chaos import ChaosInjector, FaultInjected, FaultRule, SimulatedCrash
from repro.core.errors import DeadlineExceeded
from repro.core.executor import ShardExecutor, ShardResult


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()


# ----------------------------------------------------------------------
# FaultRule matching and triggers
# ----------------------------------------------------------------------


class TestFaultRule:
    def test_site_glob_matching(self):
        rule = FaultRule(site="save.*")
        assert rule.matches("save.write", {})
        assert rule.matches("save.committed", {})
        assert not rule.matches("wal.write", {})

    def test_tag_filters(self):
        rule = FaultRule(site="*", match={"server": 1})
        assert rule.matches("x", {"server": 1})
        assert not rule.matches("x", {"server": 2})
        assert not rule.matches("x", {})

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", fault="meteor")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", probability=1.5)

    def test_after_skips_initial_hits(self):
        injector = ChaosInjector(rules=[FaultRule(site="s", after=2)])
        injector.kick("s")
        injector.kick("s")
        with pytest.raises(FaultInjected):
            injector.kick("s")

    def test_times_caps_firings(self):
        injector = ChaosInjector(rules=[FaultRule(site="s", times=1)])
        with pytest.raises(FaultInjected):
            injector.kick("s")
        injector.kick("s")  # spent

    def test_custom_error_class_and_instance(self):
        injector = ChaosInjector(rules=[FaultRule(site="a", error=KeyError)])
        with pytest.raises(KeyError):
            injector.kick("a")
        boom = RuntimeError("boom")
        injector2 = ChaosInjector(rules=[FaultRule(site="a", error=boom)])
        with pytest.raises(RuntimeError) as info:
            injector2.kick("a")
        assert info.value is boom


class TestInjectorDeterminism:
    def rules(self):
        return [FaultRule(site="s", probability=0.5)]

    def fire_pattern(self, seed, hits=40):
        injector = ChaosInjector(seed=seed, rules=self.rules())
        pattern = []
        for _ in range(hits):
            try:
                injector.kick("s")
                pattern.append(0)
            except FaultInjected:
                pattern.append(1)
        return pattern

    def test_same_seed_same_schedule(self):
        assert self.fire_pattern(7) == self.fire_pattern(7)

    def test_different_seed_different_schedule(self):
        assert self.fire_pattern(7) != self.fire_pattern(8)

    def test_injection_log_records_fired_faults(self):
        injector = ChaosInjector(rules=[FaultRule(site="s", times=2)])
        for _ in range(3):
            try:
                injector.kick("s")
            except FaultInjected:
                pass  # expected: counting firings via the log
        assert injector.injection_log == [("s", "error"), ("s", "error")]


class TestFaultKinds:
    def test_crash_is_not_an_exception(self):
        assert not issubclass(SimulatedCrash, Exception)
        injector = ChaosInjector(rules=[FaultRule(site="s", fault="crash")])
        with pytest.raises(SimulatedCrash):
            injector.kick("s")

    def test_crash_point_only_fires_crash_rules(self):
        injector = ChaosInjector(rules=[FaultRule(site="s", fault="error")])
        injector.crash_point("s")  # error rules do not fire at crash points
        injector2 = ChaosInjector(rules=[FaultRule(site="s", fault="crash")])
        with pytest.raises(SimulatedCrash):
            injector2.crash_point("s")

    def test_latency_sleeps(self):
        injector = ChaosInjector(
            rules=[FaultRule(site="s", fault="latency", latency_s=0.02)]
        )
        start = time.monotonic()
        injector.kick("s")
        assert time.monotonic() - start >= 0.02

    def test_torn_write_persists_prefix_then_crashes(self):
        buffer = io.BytesIO()
        injector = ChaosInjector(
            rules=[FaultRule(site="w", fault="torn_write", keep_bytes=3)]
        )
        with pytest.raises(SimulatedCrash):
            injector.write_bytes("w", buffer, b"abcdef")
        assert buffer.getvalue() == b"abc"

    def test_write_without_due_rule_writes_everything(self):
        buffer = io.BytesIO()
        ChaosInjector().write_bytes("w", buffer, b"abcdef")
        assert buffer.getvalue() == b"abcdef"


class TestInstallation:
    def test_sites_are_noops_without_injector(self):
        chaos.kick("anything")
        chaos.crash_point("anything")
        buffer = io.BytesIO()
        chaos.write_bytes("anything", buffer, b"data")
        assert buffer.getvalue() == b"data"

    def test_injected_context_installs_and_removes(self):
        injector = ChaosInjector(rules=[FaultRule(site="s")])
        with chaos.injected(injector):
            assert chaos.active() is injector
            with pytest.raises(FaultInjected):
                chaos.kick("s")
        assert chaos.active() is None
        chaos.kick("s")  # no-op again


# ----------------------------------------------------------------------
# Resilient executor
# ----------------------------------------------------------------------


class Flaky:
    """Callable failing the first ``fail_first`` invocations per item."""

    def __init__(self, fail_first):
        self.fail_first = fail_first
        self.calls = {}
        self._lock = threading.Lock()

    def __call__(self, item):
        with self._lock:
            seen = self.calls.get(item, 0)
            self.calls[item] = seen + 1
        if seen < self.fail_first:
            raise RuntimeError(f"flaky {item} attempt {seen}")
        return item * 10


class TestExecutorResilience:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_retries_recover_flaky_items(self, workers):
        with ShardExecutor(workers) as executor:
            assert executor.map(Flaky(2), [1, 2, 3], retries=2) == [10, 20, 30]

    def test_failure_propagates_when_retries_exhausted(self):
        with ShardExecutor(2) as executor:
            with pytest.raises(RuntimeError):
                executor.map(Flaky(3), [1, 2], retries=1)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_partial_mode_returns_structured_results(self, workers):
        def only_even(item):
            if item % 2:
                raise ValueError(f"odd {item}")
            return item

        with ShardExecutor(workers) as executor:
            results = executor.map(only_even, [0, 1, 2, 3], partial=True)
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert all(isinstance(r, ShardResult) for r in results)
        assert [r.ok for r in results] == [True, False, True, False]
        assert results[2].value == 2
        assert isinstance(results[1].error, ValueError)
        assert results[1].attempts == 1

    def test_deadline_converts_slow_calls(self):
        def slow(item):
            time.sleep(0.03)
            return item

        with ShardExecutor(1) as executor:
            results = executor.map(slow, [1], deadline_s=0.001, partial=True)
        assert not results[0].ok
        assert isinstance(results[0].error, DeadlineExceeded)

    def test_deadline_retry_can_succeed(self):
        """A fast failure retried within the remaining budget succeeds
        (the budget spans all attempts, not each one separately)."""
        calls = []

        def fail_once(item):
            calls.append(item)
            if len(calls) == 1:
                raise ValueError("transient")
            return item

        with ShardExecutor(1) as executor:
            assert executor.map(fail_once, [5], deadline_s=5.0, retries=1) == [5]
        assert len(calls) == 2

    def test_deadline_budgets_whole_retry_loop(self):
        """Regression: the deadline used to reset per attempt, so
        ``1 + retries`` slow attempts each got a fresh budget.  Now a
        first attempt that burns the whole budget makes the retry's
        result arrive over-deadline: total wall time stays bounded by
        ``deadline_s`` plus one attempt."""
        calls = []

        def slow(item):
            calls.append(item)
            time.sleep(0.03)
            return item

        with ShardExecutor(1) as executor:
            begin = time.monotonic()
            results = executor.map(slow, [5], deadline_s=0.02, retries=3,
                                   partial=True)
            wall = time.monotonic() - begin
        assert not results[0].ok
        assert isinstance(results[0].error, DeadlineExceeded)
        # Old behavior: 4 attempts x 0.03s each = ~0.12s. New: the
        # budget (0.02s) plus at most one extra attempt (0.03s).
        assert len(calls) <= 2
        assert wall < 0.03 * 3

    def test_deadline_budget_exhausted_stops_retrying(self):
        """A failure with no budget left must not burn more attempts;
        the result chains the attempt's error under DeadlineExceeded."""
        calls = []

        def slow_fail(item):
            calls.append(item)
            time.sleep(0.03)
            raise ValueError("kaput")

        with ShardExecutor(1) as executor:
            results = executor.map(slow_fail, [5], deadline_s=0.02,
                                   retries=5, partial=True)
        assert len(calls) == 1
        assert not results[0].ok
        assert isinstance(results[0].error, DeadlineExceeded)
        assert isinstance(results[0].error.__cause__, ValueError)

    def test_deadline_skips_backoff_that_overruns_budget(self):
        """A backoff sleep larger than the remaining budget is skipped
        so the final attempt gets the time instead of the pillow."""
        calls = []

        def fail_once(item):
            calls.append(item)
            if len(calls) == 1:
                raise ValueError("transient")
            return item

        with ShardExecutor(1) as executor:
            begin = time.monotonic()
            # backoff_s far exceeds the budget: sleeping would make the
            # retry pointless, so it must be skipped and still succeed.
            assert executor.map(fail_once, [5], deadline_s=0.5,
                                retries=1, backoff_s=10.0) == [5]
            wall = time.monotonic() - begin
        assert len(calls) == 2
        assert wall < 1.0

    def test_chaos_site_fires_inside_executor(self):
        injector = ChaosInjector(
            rules=[FaultRule(site=chaos.SITE_EXECUTOR_CALL,
                             match={"index": 1}, times=1)]
        )
        with chaos.injected(injector):
            with ShardExecutor(2) as executor:
                assert executor.map(lambda x: x, [7, 8, 9], retries=1) == [7, 8, 9]
        assert injector.injection_log == [(chaos.SITE_EXECUTOR_CALL, "error")]

    def test_simulated_crash_is_not_retried(self):
        injector = ChaosInjector(
            rules=[FaultRule(site=chaos.SITE_EXECUTOR_CALL, fault="crash")]
        )
        with chaos.injected(injector):
            with ShardExecutor(1) as executor:
                with pytest.raises(SimulatedCrash):
                    executor.map(lambda x: x, [1], retries=5, partial=True)

    def test_backoff_waits_between_attempts(self):
        start = time.monotonic()
        with ShardExecutor(1) as executor:
            executor.map(Flaky(1), [1], retries=1, backoff_s=0.02)
        assert time.monotonic() - start >= 0.02

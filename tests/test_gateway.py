"""The async query gateway: admission, shedding, batching, drain.

Most tests drive :class:`GatewayService` directly with a fake clock
(deterministic token buckets) and a hand-completed backend
(deterministic queue/dispatch interleavings); a final group goes over
real sockets through :class:`GatewayServer` / :class:`GatewayClient`
to pin the wire semantics -- typed ``RetryAfter`` with its hint
intact, ``GatewayClosed`` after drain, partial results under
degradation.
"""

import asyncio
import threading
from concurrent.futures import Future

import pytest

from conftest import chaos_seeds
from repro import chaos, obs
from repro.obs.metrics import Counter, Gauge
from repro.chaos import ChaosInjector, FaultRule
from repro.cluster import ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.errors import GatewayClosed, RetryAfter
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    GatewayServer,
    GatewayService,
    TokenBucket,
    resolve,
)
from repro.gateway.admission import AdmissionController


@pytest.fixture(autouse=True)
def clean_slate():
    obs.reset()
    yield
    chaos.uninstall()
    obs.reset()


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ManualBackend:
    """submit() hands back futures the test completes explicitly."""

    def __init__(self):
        self.calls = []
        self.futures = []
        self.lock = threading.Lock()

    def submit(self, method, *args, **kwargs):
        future = Future()
        with self.lock:
            self.calls.append((method, args, kwargs))
            self.futures.append(future)
        return future

    def complete_all(self, result="done"):
        with self.lock:
            pending = [f for f in self.futures if not f.done()]
        for future in pending:
            future.set_result(result)


class EchoBackend:
    """submit() resolves immediately with the call signature."""

    def __init__(self):
        self.calls = []

    def submit(self, method, *args, **kwargs):
        self.calls.append((method, args, kwargs))
        future = Future()
        future.set_result((method, args, tuple(sorted(kwargs.items()))))
        return future


def run(coro):
    return asyncio.run(coro)


async def pump(backend, waiters, result="done"):
    """Complete ManualBackend futures as the dispatchers create them.

    Dispatch happens after ``start()``; a single ``complete_all()``
    races it and strands futures created later, so keep completing
    until every waiter settles.
    """
    for _ in range(2000):
        backend.complete_all(result)
        if all(w.done() for w in waiters):
            return
        await asyncio.sleep(0.005)
    raise AssertionError("waiters never settled")


def counter_total(name):
    return sum(m.value for m in obs.get_registry().metrics()
               if isinstance(m, Counter) and m.name == name)


def gauge_values(name):
    return [m.value for m in obs.get_registry().metrics()
            if isinstance(m, Gauge) and m.name == name]


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        bucket.try_take(), bucket.try_take()
        assert not bucket.try_take()
        # A hair past one token's worth of time at 10/s (0.1 exactly
        # loses to float rounding in monotonic-delta arithmetic).
        clock.advance(0.101)
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_burst_caps_accumulation(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_time_to_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.time_to_token() == 0.0
        bucket.try_take()
        assert bucket.time_to_token() == pytest.approx(0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


class TestRouter:
    def test_read_write_admin_classification(self):
        assert resolve("get_neighbor_ids").kind == "read"
        assert resolve("append_edge").kind == "write"
        assert resolve("ping").kind == "admin"

    def test_admin_bypasses_admission(self):
        assert not resolve("topology").admission
        assert resolve("edge_count").admission

    def test_only_broadcast_reads_are_sheddable(self):
        assert resolve("get_node_ids").sheddable
        assert resolve("find_edges").sheddable
        assert not resolve("get_neighbor_ids").sheddable
        assert not resolve("append_node").sheddable

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            resolve("drop_all_tables")


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def make(self, clock, rate=100.0, burst=50.0, depth=4, shed=0.75):
        return AdmissionController(
            tenant_rate=rate, tenant_burst=burst, queue_depth=depth,
            shed_threshold=shed, clock=clock,
        )

    def admit(self, controller, tenant="t", method="edge_count",
              sheddable=False):
        return controller.admit(tenant, method, (), {}, object(),
                                sheddable=sheddable)

    def test_queue_full_rejection_carries_retry_hint(self):
        clock = FakeClock()
        controller = self.make(clock, rate=2.0, depth=4)
        for _ in range(4):
            self.admit(controller)
        with pytest.raises(RetryAfter) as info:
            self.admit(controller)
        assert info.value.reason == "queue_full"
        # 4 queued at 2 admissions/s: the earliest useful retry is ~2s.
        assert info.value.retry_after_s == pytest.approx(2.0)

    def test_rate_limit_rejection_carries_time_to_token(self):
        clock = FakeClock()
        controller = self.make(clock, rate=4.0, burst=1.0, depth=100)
        self.admit(controller)
        with pytest.raises(RetryAfter) as info:
            self.admit(controller)
        assert info.value.reason == "rate_limit"
        assert info.value.retry_after_s == pytest.approx(0.25)

    def test_degrade_flag_past_shed_threshold(self):
        clock = FakeClock()
        controller = self.make(clock, depth=4, shed=0.5)
        flags = [self.admit(controller, sheddable=True).degrade
                 for _ in range(4)]
        # Depth at admit time: 0, 1, 2, 3 against a threshold of 2.
        assert flags == [False, False, True, True]

    def test_unsheddable_methods_never_degrade(self):
        clock = FakeClock()
        controller = self.make(clock, depth=2, shed=0.5)
        assert not self.admit(controller).degrade
        assert not self.admit(controller).degrade

    def test_tenants_do_not_share_buckets_or_queues(self):
        clock = FakeClock()
        controller = self.make(clock, rate=100.0, burst=2.0, depth=100)
        self.admit(controller, tenant="hot")
        self.admit(controller, tenant="hot")
        with pytest.raises(RetryAfter):
            self.admit(controller, tenant="hot")
        # The quiet tenant's bucket is untouched by the hot tenant.
        self.admit(controller, tenant="quiet")
        assert controller.queue_depth_of("hot") == 2
        assert controller.queue_depth_of("quiet") == 1

    def test_round_robin_across_tenants(self):
        clock = FakeClock()
        controller = self.make(clock, depth=100)
        for _ in range(3):
            self.admit(controller, tenant="hot")
        self.admit(controller, tenant="quiet")
        ring, cursor = [], 0
        order = []
        while True:
            entry, cursor = controller.next_entry(ring, cursor)
            if entry is None:
                break
            order.append(entry.tenant)
        assert order == ["hot", "quiet", "hot", "hot"]


# ----------------------------------------------------------------------
# The service pipeline
# ----------------------------------------------------------------------


class TestGatewayService:
    def test_request_flows_end_to_end(self):
        async def scenario():
            service = GatewayService(EchoBackend(), GatewayConfig(
                dispatchers=2))
            await service.start()
            result = await service.handle("edge_count", [7, 0], tenant="a")
            await service.drain()
            return result

        assert run(scenario()) == ("edge_count", (7, 0), ())

    def test_queue_full_sheds_with_retry_after(self):
        async def scenario():
            backend = ManualBackend()
            # No dispatchers started: everything admitted stays queued.
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0, queue_depth=3))
            waiters = [asyncio.ensure_future(
                service.handle("edge_count", [i, 0], tenant="a"))
                for i in range(3)]
            await asyncio.sleep(0)  # let the waiters admit
            with pytest.raises(RetryAfter) as info:
                await service.handle("edge_count", [99, 0], tenant="a")
            # Release the queued work so the drain below is clean.
            await service.start()
            await pump(backend, waiters)
            await asyncio.gather(*waiters)
            await service.drain()
            return info.value

        shed = run(scenario())
        assert shed.reason == "queue_full"
        assert shed.retry_after_s > 0

    def test_hot_tenant_cannot_starve_quiet_tenant(self):
        async def order_scenario():
            backend = EchoBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=64, dispatchers=1))
            hot = [asyncio.ensure_future(
                service.handle("get_node_property", [i, "*"], tenant="hot"))
                for i in range(20)]
            await asyncio.sleep(0)
            quiet = asyncio.ensure_future(
                service.handle("get_node_property", [777, "*"],
                               tenant="quiet"))
            await asyncio.sleep(0)
            await service.start()
            await asyncio.gather(quiet, *hot)
            await service.drain()
            return [args[0] for _, args, _ in backend.calls]

        order = run(order_scenario())
        assert order.index(777) <= 2

    def test_identical_reads_coalesce_onto_one_backend_call(self):
        async def scenario():
            backend = ManualBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=64, dispatchers=4))
            await service.start()
            waiters = [asyncio.ensure_future(
                service.handle("edge_count", [5, 0], tenant="a"))
                for _ in range(6)]
            # Let dispatchers park on the (single) in-flight call
            # before anything completes, so the riders pile up.
            for _ in range(20):
                await asyncio.sleep(0)
            await pump(backend, waiters, result=42)
            results = await asyncio.gather(*waiters)
            await service.drain()
            return results, len(backend.calls)

        results, calls = run(scenario())
        assert results == [42] * 6
        # 4 dispatchers, 6 requests, 1 identical in-flight read: far
        # fewer backend calls than requests (first dispatch leads, the
        # rest ride).
        assert calls < 6
        assert counter_total("zipg_gateway_batched_total") + calls == 6

    def test_writes_never_coalesce(self):
        async def scenario():
            backend = ManualBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=64, dispatchers=4))
            await service.start()
            waiters = [asyncio.ensure_future(
                service.handle("append_edge", [1, 0, 2, 0, {}], tenant="a"))
                for _ in range(4)]
            await pump(backend, waiters, result=None)
            await asyncio.gather(*waiters)
            await service.drain()
            return len(backend.calls)

        assert run(scenario()) == 4

    def test_degraded_reads_dispatch_with_partial_results(self):
        async def scenario():
            backend = EchoBackend()
            clock = FakeClock()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=4, shed_threshold=0.5, dispatchers=1),
                clock=clock)
            waiters = [asyncio.ensure_future(
                service.handle("find_edges", ["kind", str(i)], tenant="a"))
                for i in range(4)]
            await asyncio.sleep(0)  # queue them all before dispatch
            await service.start()
            await asyncio.gather(*waiters)
            await service.drain()
            return backend.calls

        calls = run(scenario())
        degraded = [kwargs for _, _, kwargs in calls
                    if kwargs.get("partial_results")]
        # Depths 2 and 3 sat past the 0.5 * 4 threshold at admit time.
        assert len(degraded) == 2

    def test_admin_bypasses_a_full_queue(self):
        async def scenario():
            backend = ManualBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0, queue_depth=1))
            waiter = asyncio.ensure_future(
                service.handle("edge_count", [1, 0], tenant="a"))
            await asyncio.sleep(0)
            with pytest.raises(RetryAfter):
                await service.handle("edge_count", [2, 0], tenant="a")
            # Admin still answers (local shim: ManualBackend has no ping).
            pong = await service.handle("ping", [], tenant="a")
            await service.start()
            await pump(backend, [waiter])
            await waiter
            await service.drain()
            return pong

        assert run(scenario()) == "pong"

    def test_clean_drain_completes_queued_work(self):
        async def scenario():
            backend = ManualBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=16, dispatchers=2))
            waiters = [asyncio.ensure_future(
                service.handle("edge_count", [i, 0], tenant=f"t{i % 3}"))
                for i in range(9)]
            await asyncio.sleep(0)  # all queued, none dispatched
            await service.start()
            drainer = asyncio.ensure_future(service.drain())
            # Drain must not reject queued work: complete the backend
            # and every waiter resolves with its result.
            await pump(backend, waiters, result="ok")
            results = await asyncio.gather(*waiters)
            await drainer
            with pytest.raises(GatewayClosed):
                await service.handle("edge_count", [0, 0], tenant="t0")
            return results, service.queue_depths()

        results, depths = run(scenario())
        assert results == ["ok"] * 9
        assert all(depth == 0 for depth in depths.values())

    def test_shed_metrics_and_depth_gauge(self):
        async def scenario():
            backend = ManualBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0, queue_depth=2))
            waiters = [asyncio.ensure_future(
                service.handle("edge_count", [i, 0], tenant="m"))
                for i in range(2)]
            await asyncio.sleep(0)
            for _ in range(3):
                with pytest.raises(RetryAfter):
                    await service.handle("edge_count", [9, 0], tenant="m")
            await service.start()
            await pump(backend, waiters)
            await asyncio.gather(*waiters)
            await service.drain()

        run(scenario())
        assert counter_total("zipg_gateway_shed_total") == 3
        assert counter_total("zipg_gateway_admitted_total") == 2
        depths = gauge_values("zipg_gateway_queue_depth")
        assert depths and all(value == 0 for value in depths)


# ----------------------------------------------------------------------
# Shed-path chaos: structured failures only
# ----------------------------------------------------------------------


class TestGatewayChaos:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_admit_faults_stay_structured(self, seed):
        async def scenario():
            backend = EchoBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=64, dispatchers=2))
            await service.start()
            outcomes = {"ok": 0, "shed": 0}
            for i in range(40):
                try:
                    await service.handle("edge_count", [i, 0], tenant="c")
                    outcomes["ok"] += 1
                except RetryAfter:
                    outcomes["shed"] += 1
            await service.drain()
            return outcomes

        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site=chaos.SITE_GATEWAY_ADMIT, fault="error",
                      probability=0.4,
                      error=RetryAfter("chaos shed", 0.01, "injected")),
        ])
        with chaos.injected(injector):
            outcomes = run(scenario())
        # Deterministic per seed; every request either succeeded or
        # shed with the typed error -- nothing leaked unstructured.
        assert outcomes["ok"] + outcomes["shed"] == 40
        assert outcomes["shed"] > 0

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_dispatch_faults_surface_per_request(self, seed):
        async def scenario():
            backend = EchoBackend()
            service = GatewayService(backend, GatewayConfig(
                tenant_rate=1000.0, tenant_burst=1000.0,
                queue_depth=64, dispatchers=2))
            await service.start()
            ok = failed = 0
            for i in range(30):
                try:
                    await service.handle("append_node", [i, {}], tenant="c")
                    ok += 1
                except KeyError:
                    failed += 1
            await service.drain()
            return ok, failed, len(backend.calls)

        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site=chaos.SITE_GATEWAY_DISPATCH, fault="error",
                      probability=0.3, error=KeyError),
        ])
        with chaos.injected(injector):
            ok, failed, calls = run(scenario())
        assert ok + failed == 30
        assert failed > 0
        # A dispatch-site fault costs the backend nothing.
        assert calls == ok


# ----------------------------------------------------------------------
# Over the wire
# ----------------------------------------------------------------------


def make_cluster():
    graph = GraphData()
    for i in range(16):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
        graph.add_edge(i, (i + 1) % 16, 0, timestamp=i)
    store = ZipG.compress(graph, num_shards=2, alpha=8,
                          logstore_threshold_bytes=1 << 20)
    return ReplicatedZipGCluster(store, num_servers=2, replication_factor=1)


class TestGatewayWire:
    def test_queries_writes_and_admin_round_trip(self):
        cluster = make_cluster()
        try:
            with GatewayServer(cluster, GatewayConfig(
                    tenant_rate=1000.0, tenant_burst=500.0,
                    queue_depth=64, dispatchers=4)) as server:
                host, port = server.address
                with GatewayClient(host, port, tenant="alice") as client:
                    assert client.ping()
                    assert client.topology()["num_shards"] == 2
                    assert client.get_neighbor_ids(0) == [1]
                    client.append_edge(0, 0, 5, timestamp=99)
                    assert sorted(client.get_neighbor_ids(0)) == [1, 5]
                    assert len(client.get_node_ids({"kind": "x"})) == 8
        finally:
            cluster.close_submitter()

    def test_retry_after_decodes_with_hint(self):
        cluster = make_cluster()
        try:
            with GatewayServer(cluster, GatewayConfig(
                    tenant_rate=0.001, tenant_burst=1.0,
                    queue_depth=2, dispatchers=1)) as server:
                host, port = server.address
                with GatewayClient(host, port, tenant="bob") as client:
                    assert client.edge_count(0, 0) == 1
                    with pytest.raises(RetryAfter) as info:
                        for _ in range(3):
                            client.edge_count(0, 0)
                    assert info.value.retry_after_s > 0
                    assert info.value.reason == "rate_limit"
        finally:
            cluster.close_submitter()

    def test_tenants_are_isolated_over_the_wire(self):
        cluster = make_cluster()
        try:
            with GatewayServer(cluster, GatewayConfig(
                    tenant_rate=0.001, tenant_burst=2.0,
                    queue_depth=64, dispatchers=2)) as server:
                host, port = server.address
                with GatewayClient(host, port, tenant="hog") as hog, \
                        GatewayClient(host, port, tenant="fair") as fair:
                    shed = 0
                    for _ in range(4):
                        try:
                            hog.edge_count(0, 0)
                        except RetryAfter:
                            shed += 1
                    assert shed >= 2  # the hog exhausted its own bucket
                    # A different tenant's bucket is untouched.
                    assert fair.edge_count(0, 0) == 1
        finally:
            cluster.close_submitter()

"""EXC001 fixture: an RPC dispatch surface raising an exception type
the wire codec cannot reconstruct."""
# zipg: exception-registry


class WireError(Exception):
    pass


class KnownError(WireError):
    pass


class LazyError(WireError):
    pass


class UnknownError(WireError):
    pass


_EXCEPTION_TYPES = {exc.__name__: exc for exc in (KnownError,)}


def register_exception(exc_type):
    _EXCEPTION_TYPES[exc_type.__name__] = exc_type


register_exception(LazyError)


# zipg: rpc-entry
def dispatch(method):
    if method == "boom":
        raise UnknownError("EXC001: not in the codec registry")
    if method == "known":
        raise KnownError("clean: listed in _EXCEPTION_TYPES")
    return _helper()


def _helper():
    raise LazyError("clean: registered via register_exception")

"""Fixture: COPY001 violations (never imported, only analyzed)."""

# zipg: hot-path

import numpy as np


def full_tobytes(view):
    return view.tobytes()  # COPY001: whole-buffer materialization


def wrap_in_bytes(payload):
    return bytes(payload)  # COPY001: copies the underlying buffer


def attribute_in_bytes(shard):
    return bytes(shard.blob)  # COPY001: attribute arg is still a copy


def frombuffer_copy(payload):
    return np.frombuffer(payload, dtype=np.uint8).copy()  # COPY001


def sanctioned_copy(view):
    return view.tobytes()  # zipg: owned-copy


def generic_ignore(view):
    return bytes(view)  # zipg: ignore[COPY001]


def not_a_buffer_copy(n, view):
    padding = bytes(n + 1)  # allocation from an int: not flagged
    header = bytes(view[:4])  # slice arg: bounded, not flagged
    return padding + header


def struct_tobytes(array):
    return array.tobytes("F")  # ordered form: not the zero-arg pattern

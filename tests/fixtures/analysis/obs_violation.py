"""Fixture: OBS001 violations (never imported, only analyzed)."""

# zipg: query-api

from repro import obs


class BareStore:
    def get_neighbor_ids(self, node_id):  # OBS001(a): no span
        return [node_id]

    def find_edges(self, property_id, value):  # OBS001(b): fan-out, no span
        return self.executor.map(lambda shard: shard.find(value), self._shards)

    @obs.traced("store.get_node_ids", layer="graph_store")
    def get_node_ids(self, properties):  # ok: traced decorator
        return self.executor.map(lambda shard: shard.search(properties), self._shards)

    def update_node(self, node_id, properties):  # ok: with-span body
        with obs.span("store.update_node", layer="graph_store"):
            self._log.append((node_id, properties))

    # zipg: span-free
    def has_node(self, node_id):  # ok: opted out
        return node_id in self._ids

    def _get_internal(self, node_id):  # ok: private helper
        return self._ids[node_id]

    def route(self, node_id):  # ok: not a query-surface name
        return node_id % 4

"""Fixture: LAYOUT001/LAYOUT002 violations (never imported, only analyzed)."""

from repro.core.delimiters import END_OF_RECORD, EDGE_FIELD_SEPARATOR


def terminate(buffer):
    buffer.append(0x1D)  # LAYOUT001: raw END_OF_RECORD byte


def sentinel_payload():
    return bytes([0x00])  # LAYOUT001: raw control byte as payload


# zipg: layout-writer[record]
def write_record(out, values):
    for value in values:
        out.extend(str(value).zfill(4).encode("ascii"))  # LAYOUT002: bare 4
    out.append(END_OF_RECORD)


# zipg: layout-parser[record]
def parse_record(raw):
    # LAYOUT002: depends on EDGE_FIELD_SEPARATOR, which write_record
    # never references.
    return raw.split(bytes([EDGE_FIELD_SEPARATOR]))


# zipg: layout-parser[orphan]
def parse_orphan(raw):  # LAYOUT002: no layout-writer[orphan] anywhere
    return raw

"""Fixture: LOCK001 violations (never imported, only analyzed)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._pending = 0

    def add(self, amount):
        with self._lock:
            self._total += amount  # establishes _total as lock-guarded

    def _flush_locked(self):
        self._pending = 0  # guarded via the *_locked convention

    def unguarded_add(self, amount):
        self._total += amount  # LOCK001(a): guarded attr, no lock held

    def flush(self):
        with self._lock:
            self._flush_locked()  # fine: lock held at the call site

    def bad_flush(self):
        self._flush_locked()  # LOCK001(c): *_locked call without the lock


class Outsider:
    def poke(self, counter):
        counter._total = 0  # LOCK001(b): private guarded attr, foreign class

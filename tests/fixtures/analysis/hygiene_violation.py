"""Fixture: API001/API002 violations (never imported, only analyzed)."""

# zipg: public-api


def untyped_lookup(store, node_id):  # API001: no annotations
    return store.get(node_id)


def typed_lookup(store: object, node_id: int) -> object:
    return store


def swallow_everything(store):  # API001 too (unannotated)
    try:
        return store.flush()
    except:  # API002: bare except
        return None


def swallow_zipg_error(store: object) -> None:
    try:
        store.flush()
    except ZipGError:  # API002: silently swallowed
        pass

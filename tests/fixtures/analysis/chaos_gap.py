"""CHAOS001 fixture: raw I/O in a robust-path module outside any
repro.chaos site (plus the covered shapes that must stay clean)."""
# zipg: robust-path

import os

from repro import chaos


def torn_truncate(path, valid):
    with open(path, "r+b") as handle:
        handle.truncate(valid)  # CHAOS001: fault injection cannot reach
        os.fsync(handle.fileno())  # CHAOS001: same gap


def covered_write(path, payload):
    with open(path, "wb") as handle:
        chaos.write_bytes("fixture.write", handle, payload)  # clean
        os.fsync(handle.fileno())  # clean: hook in this function


def _helper_fsync(handle):
    os.fsync(handle.fileno())  # clean: every caller is chaos-covered


def caller(path):
    chaos.kick("fixture.flush")
    with open(path, "ab") as handle:
        _helper_fsync(handle)

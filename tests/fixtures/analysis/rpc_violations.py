"""Fixture: raw socket I/O outside the framing module (RPC001)."""

import socket


def leak_request(host, port, payload):
    sock = socket.create_connection((host, port))
    sock.sendall(payload)  # RPC001: bypasses length-prefix framing
    return sock.recv(4096)  # RPC001: unframed read


def scatter_gather(sock):
    sock.sendmsg([b"a", b"b"])  # RPC001: unframed vectored write
    buffer = bytearray(16)
    sock.recv_into(buffer)  # RPC001: unframed read into a buffer
    return bytes(buffer)


def pump_generator(gen):
    return gen.send(None)  # zipg: ignore[RPC001] - generator, not a socket


def framed_ok(sock, frame_bytes):
    # OK: no raw I/O primitive -- this is what callers should do
    # (repro.server.ipc owns the sendall underneath).
    from repro.server import ipc

    return ipc.send_frame(sock, frame_bytes)

"""DEADLOCK001 fixture: a static AB/BA lock-order inversion."""

import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.hits = 0

    def forward(self):
        with self._a:
            self._grab_b()  # edge Pair._a -> Pair._b

    def _grab_b(self):
        with self._b:
            self.hits += 1

    def backward(self):
        with self._b:
            self._grab_a()  # edge Pair._b -> Pair._a: the inversion

    def _grab_a(self):
        with self._a:
            self.hits -= 1

    def straight(self):
        with self._a:
            self.hits = 0  # clean: single lock, no ordering edge

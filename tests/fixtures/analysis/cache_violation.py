"""Fixture: a cache-backed store with one mutator that forgets to bump
the epoch (CACHE001) plus the compliant/suppressed variants."""
# zipg: cache-backed


class Epoch:
    def __init__(self):
        self._value = 0

    def bump(self):
        self._value += 1
        return self._value


class CachedStore:
    def __init__(self):
        self.epoch = Epoch()
        self._items = {}

    def append_item(self, key, value):  # OK: bumps directly
        self._items[key] = value
        self.epoch.bump()

    def update_item(self, key, value):  # OK: bumps via append_item
        if key in self._items:
            self.append_item(key, value)

    def delete_item(self, key):  # CACHE001: stale entries stay reachable
        self._items.pop(key, None)

    def remove_quietly(self, key):  # zipg: ignore[CACHE001]
        self._items.pop(key, None)

    def get_item(self, key):  # OK: not a mutator
        return self._items.get(key)

"""Fixture: LOCK002 violations (never imported, only analyzed)."""

import threading


class SelfDeadlock:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            with self._lock:  # LOCK002: non-reentrant self re-acquire
                pass


class Left:
    def __init__(self):
        self._left_lock = threading.Lock()

    def cross(self, right):
        with self._left_lock:
            right.respond(self)  # acquires Right._right_lock while holding ours

    def reenter(self):
        with self._left_lock:
            pass


class Right:
    def __init__(self):
        self._right_lock = threading.Lock()

    def respond(self, left):
        with self._right_lock:  # LOCK002: completes Left -> Right -> Left
            left.reenter()

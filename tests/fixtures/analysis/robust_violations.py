"""Fixture: ROBUST001 violations (never imported, only analyzed)."""
# zipg: robust-path


def bare_handler(path):
    try:
        return open(path, "rb").read()
    except:  # ROBUST001: bare except on the robustness path
        return b""


def swallowed_oserror(handle):
    try:
        handle.flush()
    except OSError:
        pass  # ROBUST001: silently swallowed


def swallowed_in_loop(paths):
    out = []
    for path in paths:
        try:
            out.append(open(path, "rb").read())
        except OSError:
            continue  # ROBUST001: silently skipped
    return out


def acknowledged_swallow(handle):
    try:
        handle.close()
    except OSError:
        pass  # zipg: ignore[ROBUST001]


def handled_ok(handle):
    try:
        handle.flush()
    except OSError as exc:
        raise RuntimeError("flush failed") from exc

"""Fixture: HOT001/HOT002 violations (never imported, only analyzed)."""

# zipg: hot-path


def scalar_walk(file, offsets):
    out = []
    for offset in offsets:
        out.append(file.extract_scalar(offset, 8))  # HOT001
    return out


def npa_chase(npa, row, steps):
    for _ in range(steps):
        row = npa[row]  # HOT001: per-element NPA indexing
    return row


def per_edge_decode(fragment):
    return [
        fragment.properties_at(order)  # HOT002: batched alternative exists
        for order in range(fragment.edge_count)
    ]


def suppressed_walk(file, offsets):
    out = []
    for offset in offsets:
        out.append(file.extract_scalar(offset, 8))  # zipg: ignore[HOT001]
    return out


# zipg: scalar-ok
def sanctioned_walk(file, offsets):
    return [file.extract_scalar(offset, 8) for offset in offsets]

"""Fixture: blocking calls on the gateway's event loop (GATE001)."""
# zipg: gateway-path

import socket
import threading
import time

_LOCK = threading.Lock()


async def slow_admit(tenant):
    time.sleep(0.1)  # GATE001: stalls every tenant, not just this one
    return tenant


async def nap_between_polls():
    sleep(1)  # GATE001: bare sleep is time.sleep in disguise


async def push_reply(sock, frame):
    sock.sendall(frame)  # GATE001 (and RPC001): sync socket write
    return sock.recv(4)  # GATE001: sync socket read


async def dial_backend(host, port):
    return socket.create_connection((host, port))  # GATE001: blocking connect


async def guarded_update(state):
    _LOCK.acquire()  # GATE001: thread lock parks the whole loop
    try:
        state["n"] = state.get("n", 0) + 1
    finally:
        _LOCK.release()


# zipg: executor-offload
def pool_worker(task):
    # OK: declared off-loop -- this runs on the submission pool.
    time.sleep(0.01)
    return task()


async def idiomatic(lock, reader, writer, payload):
    # OK: the asyncio spellings of all of the above.
    import asyncio

    from repro.server import ipc

    await asyncio.sleep(0.1)
    async with lock:
        await ipc.send_frame_async(writer, payload)
        return await ipc.recv_frame_async(reader)

"""RACE001 fixture: unlocked shared-state writes reachable from a
thread entry point (and the locked shapes that must stay clean)."""

import threading


class SharedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self.last = 0
        self.pending = 0

    def start(self):
        threading.Thread(target=self._worker, daemon=True).start()

    def _worker(self):
        self._bump_unsafe()
        self._bump_safe()
        self.flush()

    def _bump_unsafe(self):
        self.total += 1  # RACE001: no path holds the lock

    def _bump_safe(self):
        with self._lock:
            self.last += 1  # clean: syntactically under the lock

    def flush(self):
        with self._lock:
            self._write_through()

    def _write_through(self):
        self.pending = 0  # clean: every caller path holds the lock

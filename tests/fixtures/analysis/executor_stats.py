"""Fixture: LOCK003 violation (never imported, only analyzed)."""


def count_shard(shard):
    shard.stats.npa_hops += 1  # unlocked hot-path increment
    return shard.total()


def fan_out_bad(executor, shards):
    return executor.map(count_shard, shards)  # LOCK003: no stats_of=


def fan_out_good(executor, shards):
    return executor.map(
        count_shard, shards, stats_of=lambda shard: shard.stats
    )

"""The memory-budgeted hot-set cache (repro.perf): budget accounting,
segmented-LRU behavior, single-flight loads, epoch invalidation on the
live store, and crash/failover freshness with the cache enabled."""

import threading
import time

import numpy as np
import pytest

from conftest import chaos_seeds
from repro import chaos, obs
from repro.chaos import ChaosInjector, FaultRule, SimulatedCrash
from repro.cluster.replication import ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.persistence import attach_wal, load_store, save_store
from repro.perf import (
    ENTRY_OVERHEAD_BYTES,
    CacheBudget,
    Epoch,
    HotSetCache,
    estimate_size,
)

#: put() charges estimate_size(payload) + ENTRY_OVERHEAD_BYTES; a
#: 52-byte bytes payload estimates to 100, so one entry costs 196.
_ENTRY = 100 + ENTRY_OVERHEAD_BYTES
_PAYLOAD = b"x" * 52


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()


def build_store(**kwargs):
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100, {"w": "5"})
    graph.add_edge(1, 3, 0, 200)
    graph.add_edge(2, 3, 1, 50)
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("alpha", 4)
    kwargs.setdefault("logstore_threshold_bytes", 1 << 20)
    return ZipG.compress(graph, **kwargs)


# ----------------------------------------------------------------------
# Budget + size estimation units
# ----------------------------------------------------------------------


class TestCacheBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheBudget(0)
        with pytest.raises(ValueError):
            CacheBudget(-5)
        with pytest.raises(ValueError):
            CacheBudget(100, protected_fraction=0.0)
        with pytest.raises(ValueError):
            CacheBudget(100, protected_fraction=1.0)

    def test_protected_bytes(self):
        assert CacheBudget(1000, protected_fraction=0.8).protected_bytes == 800


class TestEstimateSize:
    def test_scalar_types(self):
        assert estimate_size(None) == 8
        assert estimate_size(True) == 28
        assert estimate_size(7) == 32
        assert estimate_size(b"abcd") == 4 + 48
        assert estimate_size("abcd") == 4 + 56

    def test_numpy_arrays_use_nbytes(self):
        array = np.zeros(100, dtype=np.int64)
        assert estimate_size(array) == array.nbytes + 96

    def test_containers_recurse(self):
        assert estimate_size([7, 7]) == 56 + 64
        assert estimate_size({"k": 7}) == 64 + (1 + 56) + 32

    def test_fallback_for_exotic_objects(self):
        assert estimate_size(object()) > 0


class TestEpoch:
    def test_bump_is_monotone(self):
        epoch = Epoch()
        assert epoch.value == 0
        assert epoch.bump() == 1
        assert epoch.bump() == 2
        assert int(epoch) == 2


# ----------------------------------------------------------------------
# Segmented-LRU behavior under the byte budget
# ----------------------------------------------------------------------


class TestHotSetCache:
    def test_put_get_roundtrip_and_negative_caching(self):
        cache = HotSetCache(1 << 16)
        assert cache.get("missing") == (False, None)
        assert cache.put("k", None)  # None is a cachable value
        assert cache.get("k") == (True, None)

    def test_eviction_keeps_bytes_under_budget(self):
        budget = 10 * _ENTRY
        cache = HotSetCache(budget)
        for i in range(50):
            assert cache.put(i, _PAYLOAD)
            assert cache.bytes_used <= budget
        assert len(cache) <= 10
        snap = cache.stats()
        assert snap["evictions"] == 40
        assert snap["bytes"] <= budget

    def test_oversized_entry_rejected(self):
        cache = HotSetCache(256)
        assert not cache.put("huge", b"x" * 1024)
        assert len(cache) == 0

    def test_reput_replaces_without_double_charge(self):
        cache = HotSetCache(1 << 16)
        cache.put("k", _PAYLOAD)
        cache.put("k", _PAYLOAD)
        assert cache.bytes_used == _ENTRY
        assert len(cache) == 1

    def test_rereferenced_entry_survives_scan(self):
        # A promoted (twice-touched) entry must outlive a one-touch
        # scan that is much larger than the whole budget.
        cache = HotSetCache(CacheBudget(10 * _ENTRY, protected_fraction=0.5))
        cache.put("hot", _PAYLOAD)
        assert cache.get("hot")[0]  # promote to protected
        for i in range(100):
            cache.put(i, _PAYLOAD)
        assert cache.get("hot")[0]

    def test_clear_preserves_counters(self):
        cache = HotSetCache(1 << 16)
        cache.put("k", _PAYLOAD)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0
        assert cache.stats()["hits"] == 1

    def test_get_or_load_single_flight(self):
        cache = HotSetCache(1 << 20)
        started = threading.Event()
        release = threading.Event()
        calls = []

        def loader():
            calls.append(1)
            started.set()
            release.wait(5)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_load("k", loader))
            )
            for _ in range(5)
        ]
        for thread in threads:
            thread.start()
        assert started.wait(5)
        release.set()
        for thread in threads:
            thread.join(5)
        assert results == ["value"] * 5
        assert len(calls) == 1  # one loader execution for 5 callers

    def test_get_or_load_propagates_loader_errors(self):
        cache = HotSetCache(1 << 16)

        def loader():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            cache.get_or_load("k", loader)
        assert cache.get("k") == (False, None)  # nothing cached

    def test_metrics_exported_through_obs(self):
        cache = HotSetCache(1 << 16, name="test")
        cache.put("k", _PAYLOAD)
        cache.get("k")
        cache.get("absent")
        counters = obs.get_registry().collected_counters()
        for name in ("zipg_cache_hits_total", "zipg_cache_misses_total",
                     "zipg_cache_evictions_total", "zipg_cache_bytes_total"):
            assert name in counters, name
        assert counters["zipg_cache_hits_total"] >= 1.0
        assert counters["zipg_cache_misses_total"] >= 1.0


# ----------------------------------------------------------------------
# Epoch invalidation on the live store
# ----------------------------------------------------------------------


def _twin_stores():
    """One cached and one uncached store built from the same graph."""
    cached, oracle = build_store(), build_store()
    cached.enable_cache(1 << 20)
    return cached, oracle


def _apply_both(cached, oracle, fn):
    fn(cached)
    fn(oracle)


def _assert_agree(cached, oracle):
    for node in (1, 2, 3, 9):
        assert cached.has_node(node) == oracle.has_node(node), node
        if oracle.has_node(node):
            assert cached.get_node_property(node) == \
                oracle.get_node_property(node), node
        for edge_type in (0, 1):
            assert cached.get_neighbor_ids(node, edge_type) == \
                oracle.get_neighbor_ids(node, edge_type), (node, edge_type)
    assert cached.get_node_ids({"city": "Ithaca"}) == \
        oracle.get_node_ids({"city": "Ithaca"})
    assert cached.find_edges("w", "5") == oracle.find_edges("w", "5")


class TestStoreEpochInvalidation:
    def test_repeat_reads_hit_the_cache(self):
        store = build_store()
        cache = store.enable_cache(1 << 20)
        first = store.get_neighbor_ids(1, 0)
        assert store.get_neighbor_ids(1, 0) == first
        assert cache.stats()["hits"] >= 1

    @pytest.mark.parametrize("mutate", [
        lambda s: s.append_node(9, {"name": "Ida", "city": "Ithaca"}),
        lambda s: s.append_edge(1, 0, 3, timestamp=900),
        lambda s: s.delete_edge(1, 0, 2),
        lambda s: s.delete_node(3),
        lambda s: s.update_node(2, {"name": "Bobby", "city": "Ithaca"}),
    ], ids=["append_node", "append_edge", "delete_edge", "delete_node",
            "update_node"])
    def test_mutation_invalidates_cached_reads(self, mutate):
        cached, oracle = _twin_stores()
        _assert_agree(cached, oracle)  # warm every cached read path
        _apply_both(cached, oracle, mutate)
        _assert_agree(cached, oracle)  # stale answers would differ here

    def test_freeze_and_compact_invalidate(self):
        cached, oracle = _twin_stores()
        _assert_agree(cached, oracle)
        for step in (
            lambda s: s.append_edge(1, 0, 9, timestamp=901),
            lambda s: s.append_node(9, {"name": "Ida", "city": "Ithaca"}),
            lambda s: s.freeze_logstore(),
            lambda s: s.append_edge(9, 0, 1, timestamp=902),
            lambda s: s.compact_frozen_shards(),
        ):
            _apply_both(cached, oracle, step)
            _assert_agree(cached, oracle)

    def test_disable_cache_reverts_to_uncached_path(self):
        cached, oracle = _twin_stores()
        _assert_agree(cached, oracle)
        cached.disable_cache()
        assert cached.cache is None
        _assert_agree(cached, oracle)

    def test_wal_replay_bumps_epoch(self):
        store = build_store()
        before = store.epoch.value
        store.apply_wal_record("node", [9, {"name": "Ida"}])
        assert store.epoch.value > before


# ----------------------------------------------------------------------
# Concurrency: readers racing a writer must never see stale data and
# the byte budget must hold at every sample.
# ----------------------------------------------------------------------


class TestConcurrentHammer:
    def test_readers_racing_appends_see_fresh_monotone_results(self):
        store = build_store()
        budget = 32 * 1024
        cache = store.enable_cache(budget)
        writes = 60
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for i in range(writes):
                    store.append_edge(1, 0, 100 + i, timestamp=1000 + i)
                    time.sleep(0.001)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                last = 0
                while not stop.is_set():
                    count = len(store.get_neighbor_ids(1, 0))
                    # Appends only: a shrinking result is a stale read.
                    assert count >= last, (count, last)
                    last = count
                    assert cache.bytes_used <= budget
                    store.get_node_property(2)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors, errors
        # Final cached answer equals the uncached truth.
        final = store.get_neighbor_ids(1, 0)
        store.disable_cache()
        assert final == store.get_neighbor_ids(1, 0)
        assert len(final) == 2 + writes


# ----------------------------------------------------------------------
# Chaos: crash recovery and replica failover with the cache enabled
# ----------------------------------------------------------------------


class TestCacheUnderChaos:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_no_stale_read_survives_crash_recovery(self, tmp_path, seed):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        store.enable_cache(64 * 1024)
        store.get_neighbor_ids(1, 0)  # warm
        store.get_node_property(2)
        store.append_node(9, {"name": "Ida", "city": "Ithaca"})
        store.append_edge(1, 0, 9, timestamp=300)
        store.delete_edge(1, 0, 3)
        store.update_node(2, {"name": "Bobby", "city": "Boston"})
        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site="save.*", fault="crash", probability=0.5),
        ])
        chaos.install(injector)
        try:
            save_store(store, root)
        except SimulatedCrash:
            pass
        finally:
            chaos.uninstall()
        loaded = load_store(root)
        loaded.enable_cache(64 * 1024)
        for _ in range(2):  # second pass reads through the cache
            assert loaded.get_node_property(2) == store.get_node_property(2)
            assert loaded.get_node_property(9) == store.get_node_property(9)
            assert loaded.get_neighbor_ids(1, 0) == \
                store.get_neighbor_ids(1, 0)
            assert loaded.get_node_ids({"city": "Ithaca"}) == \
                store.get_node_ids({"city": "Ithaca"})

    def test_replica_failover_serves_fresh_data(self):
        store = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=3,
                                        replication_factor=2)
        store.enable_cache(64 * 1024)
        before = cluster.get_node_ids({"city": "Ithaca"})
        assert cluster.get_node_ids({"city": "Ithaca"}) == before  # cached
        store.append_node(9, {"name": "Ida", "city": "Ithaca"})
        cluster.fail_server(1)
        after = cluster.get_node_ids({"city": "Ithaca"})
        assert 9 in after and set(before) <= set(after)

"""Unit tests for the property-graph data model."""

import pytest

from repro.core import Edge, GraphData


@pytest.fixture
def social_graph():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "location": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "location": "Princeton"})
    graph.add_node(3, {"name": "Carol", "location": "Ithaca"})
    graph.add_edge(1, 2, edge_type=0, timestamp=100)
    graph.add_edge(1, 3, edge_type=0, timestamp=50)
    graph.add_edge(1, 2, edge_type=1, timestamp=75, properties={"note": "hi"})
    graph.add_edge(2, 3, edge_type=0, timestamp=10)
    return graph


class TestEdge:
    def test_rejects_negative_type(self):
        with pytest.raises(ValueError):
            Edge(1, 2, -1)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            Edge(1, 2, 0, -5)

    def test_frozen(self):
        edge = Edge(1, 2, 0)
        with pytest.raises(AttributeError):
            edge.source = 5


class TestGraphData:
    def test_counts(self, social_graph):
        assert social_graph.num_nodes == 3
        assert social_graph.num_edges == 4

    def test_add_edge_autocreates_endpoints(self):
        graph = GraphData()
        graph.add_edge(7, 9)
        assert graph.has_node(7) and graph.has_node(9)

    def test_negative_node_id_rejected(self):
        graph = GraphData()
        with pytest.raises(ValueError):
            graph.add_node(-1)

    def test_edges_sorted_by_timestamp(self, social_graph):
        edges = social_graph.edges_of(1, 0)
        assert [e.timestamp for e in edges] == [50, 100]

    def test_edges_all_types(self, social_graph):
        assert len(social_graph.edges_of(1)) == 3
        assert social_graph.edge_types_of(1) == [0, 1]

    def test_degree(self, social_graph):
        assert social_graph.degree(1) == 3
        assert social_graph.degree(1, 0) == 2
        assert social_graph.degree(3) == 0

    def test_all_property_ids(self, social_graph):
        assert social_graph.all_property_ids() == {"name", "location", "note"}

    def test_find_nodes(self, social_graph):
        assert social_graph.find_nodes({"location": "Ithaca"}) == [1, 3]
        assert social_graph.find_nodes({"location": "Ithaca", "name": "Alice"}) == [1]
        assert social_graph.find_nodes({"location": "Nowhere"}) == []

    def test_neighbor_ids(self, social_graph):
        assert social_graph.neighbor_ids(1, 0) == [3, 2]  # time order
        assert social_graph.neighbor_ids(1, 0, {"location": "Ithaca"}) == [3]

    def test_on_disk_size_positive_and_monotone(self, social_graph):
        size = social_graph.on_disk_size_bytes()
        assert size > 0
        social_graph.add_node(99, {"name": "Dave"})
        assert social_graph.on_disk_size_bytes() > size

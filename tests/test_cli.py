"""Tests for the command-line interface."""

import pytest

from repro.cli import _load_graph_file, main


class TestInfoAndDatasets:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro-zipg" in out
        assert "zipg" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "orkut" in out and "linkbench-large" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFootprintAndWorkload:
    def test_footprint(self, capsys):
        assert main(["footprint", "--dataset", "orkut"]) == 0
        out = capsys.readouterr().out
        assert "zipg" in out and "x raw" in out

    def test_workload(self, capsys):
        assert main(["workload", "--dataset", "orkut", "--workload", "tao",
                     "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert "KOps" in out

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["footprint", "--dataset", "mars"])


class TestGraphFileAndQuery:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(
            "# demo graph\n"
            "N 0 name=Alice;city=Ithaca\n"
            "N 1 name=Bob;city=Boston\n"
            "N 2 name=Carol;city=Ithaca\n"
            "E 0 1 0 10\n"
            "E 0 2 0 20\n"
        )
        return str(path)

    def test_load_graph_file(self, graph_file):
        graph = _load_graph_file(graph_file)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.node_properties(0) == {"name": "Alice", "city": "Ithaca"}

    def test_query_command(self, graph_file, capsys):
        code = main([
            "query", "--file", graph_file, "--shards", "2",
            'MATCH (a {id: 0})-[:0]->(b {city: "Ithaca"}) RETURN b.name',
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Carol" in out

    def test_bad_graph_record(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("X nonsense\n")
        with pytest.raises(SystemExit):
            _load_graph_file(str(path))


class TestExperimentsCommand:
    def test_compact_report(self, capsys):
        code = main(["experiments", "--datasets", "orkut", "--ops", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Table 5" in out
        assert "Figure 8" in out

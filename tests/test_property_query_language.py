"""Property-based tests: ZipQL results vs an in-memory oracle.

Random graphs and randomly generated queries from the supported grammar
must produce the same rows as a direct evaluation over GraphData.
"""

from conftest import hypothesis_examples
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.systems import ZipGSystem
from repro.core import GraphData
from repro.query import QueryEngine

CITIES = ["Ithaca", "Boston"]
INTERESTS = ["Music", "Films"]


@st.composite
def graph_strategy(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    graph = GraphData()
    for node_id in range(num_nodes):
        graph.add_node(node_id, {
            "city": draw(st.sampled_from(CITIES)),
            "interest": draw(st.sampled_from(INTERESTS)),
        })
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        graph.add_edge(
            draw(st.integers(min_value=0, max_value=num_nodes - 1)),
            draw(st.integers(min_value=0, max_value=num_nodes - 1)),
            draw(st.integers(min_value=0, max_value=1)),
            draw(st.integers(min_value=0, max_value=100)),
        )
    return graph


def oracle_node_match(graph, properties):
    return sorted(graph.find_nodes(properties))


def oracle_edge_match(graph, source_props, label, target_props):
    rows = []
    for source in graph.find_nodes(source_props or {}):
        for edge in graph.edges_of(source, label):
            target_properties = graph.node_properties(edge.destination)
            if all(target_properties.get(k) == v for k, v in (target_props or {}).items()):
                rows.append((source, edge.destination))
    return sorted(set(rows))


@settings(max_examples=hypothesis_examples(20), deadline=None)
@given(graph=graph_strategy(), data=st.data())
def test_zipql_matches_oracle(graph, data):
    system = ZipGSystem.load(graph, num_shards=2, alpha=4)
    engine = QueryEngine(system, graph.node_ids())

    # Node-only query.
    city = data.draw(st.sampled_from(CITIES))
    result = engine.execute(f'MATCH (a {{city: "{city}"}}) RETURN a')
    assert sorted(result.column("a")) == oracle_node_match(graph, {"city": city})

    # Single-hop typed query with optional source/target filters.
    label = data.draw(st.integers(min_value=0, max_value=1))
    use_source_filter = data.draw(st.booleans())
    use_target_filter = data.draw(st.booleans())
    source_props = {"city": city} if use_source_filter else {}
    target_props = (
        {"interest": data.draw(st.sampled_from(INTERESTS))} if use_target_filter else {}
    )
    source_clause = f'(a {{city: "{city}"}})' if use_source_filter else "(a)"
    if use_target_filter:
        target_clause = f'(b {{interest: "{target_props["interest"]}"}})'
    else:
        target_clause = "(b)"
    query = f"MATCH {source_clause}-[:{label}]->{target_clause} RETURN a, b"
    result = engine.execute(query)
    got = sorted({(row["a"], row["b"]) for row in result})
    assert got == oracle_edge_match(graph, source_props, label, target_props)

    # WHERE on the target is equivalent to an inline property pattern.
    interest = data.draw(st.sampled_from(INTERESTS))
    inline = engine.execute(
        f'MATCH (a)-[:{label}]->(b {{interest: "{interest}"}}) RETURN a, b'
    )
    where = engine.execute(
        f'MATCH (a)-[:{label}]->(b) WHERE b.interest = "{interest}" RETURN a, b'
    )
    assert sorted((r["a"], r["b"]) for r in inline) == sorted(
        (r["a"], r["b"]) for r in where
    )

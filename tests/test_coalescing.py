"""Single-flight and batch coalescing (repro.perf.coalesce), the
executor's shared fan-outs, and the cluster retry/backoff/deadline
knobs flowing through the coalesced broadcast path."""

import threading
import time

import pytest

from repro import chaos
from repro.chaos import ChaosInjector, FaultInjected, FaultRule
from repro.cluster.replication import ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.errors import DeadlineExceeded
from repro.core.executor import ShardExecutor
from repro.perf import BatchCoalescer, SingleFlight


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()


def build_store():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100, {"w": "5"})
    graph.add_edge(1, 3, 0, 200)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=1 << 20)


def _await(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


# ----------------------------------------------------------------------
# SingleFlight
# ----------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_callers_share_one_execution(self):
        flights = SingleFlight()
        release = threading.Event()
        calls = []

        def fn():
            calls.append(1)
            release.wait(5)
            return "result"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(flights.do("k", fn))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        _await(lambda: flights.shared == 3)
        release.set()
        for thread in threads:
            thread.join(5)
        assert results == ["result"] * 4
        assert len(calls) == 1
        assert flights.shared == 3

    def test_sequential_calls_do_not_share(self):
        flights = SingleFlight()
        assert flights.do("k", lambda: 1) == 1
        assert flights.do("k", lambda: 2) == 2  # flight already retired
        assert flights.shared == 0

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def fn():
            entered.set()
            release.wait(5)
            raise FaultInjected("boom")

        outcomes = []

        def call():
            try:
                flights.do("k", fn)
            except FaultInjected as exc:
                outcomes.append(exc)

        leader = threading.Thread(target=call)
        leader.start()
        assert entered.wait(5)
        follower = threading.Thread(target=call)
        follower.start()
        _await(lambda: flights.shared == 1)
        release.set()
        leader.join(5)
        follower.join(5)
        assert len(outcomes) == 2

    def test_on_shared_hook_fires_per_follower(self):
        shared_calls = []
        flights = SingleFlight(on_shared=lambda: shared_calls.append(1))
        release = threading.Event()
        entered = threading.Event()

        def fn():
            entered.set()
            release.wait(5)
            return 0

        leader = threading.Thread(target=lambda: flights.do("k", fn))
        leader.start()
        assert entered.wait(5)
        follower = threading.Thread(target=lambda: flights.do("k", fn))
        follower.start()
        _await(lambda: flights.shared == 1)
        release.set()
        leader.join(5)
        follower.join(5)
        assert len(shared_calls) == 1


# ----------------------------------------------------------------------
# BatchCoalescer
# ----------------------------------------------------------------------


class TestBatchCoalescer:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchCoalescer(lambda reqs: reqs, window_s=-0.1)
        with pytest.raises(ValueError):
            BatchCoalescer(lambda reqs: reqs, max_batch=0)

    def test_single_submit_routes_through_batch_fn(self):
        batches = []

        def batch_fn(requests):
            batches.append(list(requests))
            return [r * 2 for r in requests]

        coalescer = BatchCoalescer(batch_fn, window_s=0.0)
        assert coalescer.submit(21) == 42
        assert batches == [[21]]

    def test_concurrent_submits_coalesce_into_one_batch(self):
        batches = []

        def batch_fn(requests):
            batches.append(list(requests))
            return [r * 2 for r in requests]

        coalescer = BatchCoalescer(batch_fn, window_s=0.25)
        results = {}

        def submit(value):
            results[value] = coalescer.submit(value)

        leader = threading.Thread(target=submit, args=(1,))
        leader.start()
        _await(lambda: coalescer._open is not None)  # window open
        followers = [threading.Thread(target=submit, args=(v,))
                     for v in (2, 3)]
        for thread in followers:
            thread.start()
        _await(lambda: coalescer._coalesced == 2)
        leader.join(5)
        for thread in followers:
            thread.join(5)
        assert len(batches) == 1 and sorted(batches[0]) == [1, 2, 3]
        assert results == {1: 2, 2: 4, 3: 6}  # per-slot routing

    def test_batch_error_propagates_to_every_submitter(self):
        def batch_fn(requests):
            raise FaultInjected("kernel failed")

        coalescer = BatchCoalescer(batch_fn, window_s=0.0)
        with pytest.raises(FaultInjected):
            coalescer.submit(1)


# ----------------------------------------------------------------------
# ShardExecutor.map_shared
# ----------------------------------------------------------------------


class TestMapShared:
    def test_none_key_bypasses_coalescing(self):
        with ShardExecutor(max_workers=1) as executor:
            assert executor.map_shared(None, lambda x: x + 1, [1, 2]) == [2, 3]

    def test_concurrent_identical_fanouts_share_one_execution(self):
        executor = ShardExecutor(max_workers=2)
        calls = []
        release = threading.Event()
        entered = threading.Event()

        def fn(item):
            calls.append(item)
            entered.set()
            release.wait(5)
            return item * 2

        results = [None, None]

        def call(slot):
            results[slot] = executor.map_shared(("q", 7), fn, [1, 2])

        leader = threading.Thread(target=call, args=(0,))
        leader.start()
        assert entered.wait(5)
        follower = threading.Thread(target=call, args=(1,))
        follower.start()
        _await(lambda: executor._fanout_flights.shared == 1)
        release.set()
        leader.join(5)
        follower.join(5)
        executor.close()
        assert results[0] == results[1] == [2, 4]
        assert sorted(calls) == [1, 2]  # one fan-out total, not two

    def test_different_keys_do_not_share(self):
        with ShardExecutor(max_workers=1) as executor:
            calls = []

            def fn(item):
                calls.append(item)
                return item

            executor.map_shared(("q", 1), fn, [1])
            executor.map_shared(("q", 2), fn, [1])
            assert len(calls) == 2


# ----------------------------------------------------------------------
# Cluster knobs through the coalesced broadcast
# ----------------------------------------------------------------------


class TestClusterKnobs:
    def test_broadcast_flight_key_embeds_epoch(self, monkeypatch):
        store = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=2,
                                        replication_factor=1)
        keys = []
        real = store.executor.map_shared

        def spy(flight_key, *args, **kwargs):
            keys.append(flight_key)
            return real(flight_key, *args, **kwargs)

        monkeypatch.setattr(store.executor, "map_shared", spy)
        expected = cluster.get_node_ids({"city": "Ithaca"})
        assert cluster.get_node_ids({"city": "Ithaca"}) == expected
        assert keys[0] is not None and keys[0] == keys[1]
        store.append_node(9, {"city": "Ithaca"})  # bumps the store epoch
        cluster.get_node_ids({"city": "Ithaca"})
        assert keys[2] != keys[1]

    def test_retries_knob_reaches_broadcast_fanout(self):
        store = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=2,
                                        replication_factor=1, retries=1)
        chaos.install(ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_EXECUTOR_CALL, times=1),
        ]))
        # First shard call fails once; the plumbed retry absorbs it.
        assert cluster.get_node_ids({"city": "Ithaca"}) == [1, 3]

    def test_no_retries_control(self):
        store = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=2,
                                        replication_factor=1)
        chaos.install(ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_EXECUTOR_CALL, times=1),
        ]))
        with pytest.raises(FaultInjected):
            cluster.get_node_ids({"city": "Ithaca"})

    def test_backoff_knob_paces_broadcast_retries(self, monkeypatch):
        from repro.core import executor as executor_module

        sleeps = []
        monkeypatch.setattr(executor_module.time, "sleep",
                            lambda seconds: sleeps.append(seconds))
        store = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=2,
                                        replication_factor=1, retries=1,
                                        backoff_s=0.05)
        chaos.install(ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_EXECUTOR_CALL, times=1),
        ]))
        assert cluster.get_node_ids({"city": "Ithaca"}) == [1, 3]
        assert 0.05 in sleeps

    def test_deadline_knob_bounds_broadcast_calls(self):
        store = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=2,
                                        replication_factor=1,
                                        deadline_s=0.01)
        chaos.install(ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_EXECUTOR_CALL, fault="latency",
                      latency_s=0.1, times=1),
        ]))
        with pytest.raises(DeadlineExceeded):
            cluster.get_node_ids({"city": "Ithaca"})

    def test_store_level_queries_inherit_cluster_knobs(self):
        store = build_store()
        ReplicatedZipGCluster(store, num_servers=2, replication_factor=1,
                              retries=2, backoff_s=0.01, deadline_s=5.0)
        assert store.retries == 2
        assert store.backoff_s == 0.01
        assert store.deadline_s == 5.0
        chaos.install(ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_EXECUTOR_CALL, times=2),
        ]))
        # Store-level fan-out (not the cluster broadcast) also retries.
        assert store.get_node_ids({"city": "Ithaca"}) == [1, 3]

"""Unit tests for the benchmark infrastructure."""

import pytest

from repro.bench.datasets import (
    DATASETS,
    build_dataset,
    dataset_summary,
    memory_budget_bytes,
)
from repro.bench.harness import run_mixed_workload, run_query_class
from repro.bench.memory_model import CostModel, MemoryBudget, hit_fraction
from repro.bench.reporting import format_ratio_series, format_table, speedup
from repro.bench.systems import SYSTEMS, build_system
from repro.succinct.stats import AccessStats
from repro.workloads import TAOWorkload
from repro.workloads.base import Operation
from repro.workloads.graphs import social_graph


class TestMemoryModel:
    def test_hit_fraction_bounds(self):
        assert hit_fraction(100, 200) == 1.0
        assert hit_fraction(200, 100) == 0.5
        assert hit_fraction(0, 100) == 1.0

    def test_budget_fits(self):
        budget = MemoryBudget(1000)
        assert budget.fits(1000)
        assert not budget.fits(1001)

    def test_in_memory_latency_cheaper(self):
        model = CostModel()
        stats = AccessStats(random_accesses=10, sequential_bytes=100)
        hot = model.query_latency_ns(stats, footprint_bytes=100, budget_bytes=1000)
        cold = model.query_latency_ns(stats, footprint_bytes=1000, budget_bytes=100)
        assert cold > 10 * hot

    def test_cpu_costs_charged_regardless_of_residency(self):
        model = CostModel()
        stats = AccessStats(npa_hops=1000, decompressed_bytes=1000)
        hot = model.query_latency_ns(stats, 100, 1000)
        cold = model.query_latency_ns(stats, 1000, 100)
        assert hot == cold  # pure CPU work

    def test_network_hops_add_latency(self):
        model = CostModel()
        stats = AccessStats(random_accesses=1)
        base = model.query_latency_ns(stats, 100, 1000)
        remote = model.query_latency_ns(stats, 100, 1000, network_hops=2)
        assert remote == base + 2 * model.network_hop_ns

    def test_empty_stats_free(self):
        model = CostModel()
        assert model.query_latency_ns(AccessStats(), 100, 1000) == 0.0


class TestDatasets:
    def test_registry_complete(self):
        assert len(DATASETS) == 6
        for name, spec in DATASETS.items():
            assert spec.name == name
            assert spec.memory_budget_fraction > 0

    def test_build_is_cached(self):
        assert build_dataset("orkut") is build_dataset("orkut")

    def test_scale_shrinks(self):
        full = build_dataset("orkut")
        small = build_dataset("orkut", scale=0.3)
        assert small.num_nodes < full.num_nodes

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("nope")

    def test_budget_proportional_to_raw(self):
        graph = build_dataset("orkut")
        budget = memory_budget_bytes("orkut", graph)
        assert budget == int(
            DATASETS["orkut"].memory_budget_fraction * graph.on_disk_size_bytes()
        )

    def test_summary(self):
        graph = build_dataset("orkut")
        nodes, edges, raw = dataset_summary("orkut", graph)
        assert nodes == graph.num_nodes
        assert edges == graph.num_edges
        assert raw > 0


class TestHarness:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = social_graph(40, avg_degree=4, seed=1, property_scale=0.1)
        system = build_system(
            "zipg", graph, num_shards=2, alpha=8,
            extra_property_ids=["city", "interest"]
            + [f"attr{i:02d}" for i in range(38)] + ["payload"],
        )
        return graph, system

    def test_run_mixed_workload(self, setup):
        graph, system = setup
        workload = TAOWorkload(graph, seed=0)
        result = run_mixed_workload(
            system, workload.operations(30), CostModel(),
            budget_bytes=10 * system.storage_footprint_bytes(),
        )
        assert result.operations == 30
        assert result.throughput_kops > 0
        assert result.hit_fraction == 1.0
        assert result.per_query_latency_us
        assert "KOps" in result.row()

    def test_run_query_class(self, setup):
        graph, system = setup
        workload = TAOWorkload(graph, seed=0)
        result = run_query_class(
            system, workload, "obj_get", 10, CostModel(),
            budget_bytes=10 * system.storage_footprint_bytes(),
        )
        assert result.workload == "obj_get"
        assert list(result.per_query_latency_us) == ["obj_get"]

    def test_empty_stream(self, setup):
        _, system = setup
        result = run_mixed_workload(system, [], CostModel(), budget_bytes=1)
        assert result.operations == 0
        assert result.throughput_kops == 0

    def test_cores_scale_throughput(self, setup):
        graph, system = setup
        budget = 10 * system.storage_footprint_bytes()
        ops = [Operation("obj_get", lambda s: s.get_node_property(0))]
        one = run_mixed_workload(system, list(ops), CostModel(), budget, cores=1)
        many = run_mixed_workload(system, list(ops), CostModel(), budget, cores=16)
        assert many.throughput_kops == pytest.approx(16 * one.throughput_kops, rel=0.2)


class TestSystemsRegistry:
    def test_all_systems_buildable(self):
        graph = social_graph(20, avg_degree=3, seed=2, property_scale=0.05)
        for name in SYSTEMS:
            system = build_system(name, graph, num_shards=2, alpha=8)
            assert system.storage_footprint_bytes() > 0
            assert system.name == name

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            build_system("oracle", social_graph(10, 2, seed=1))


class TestReporting:
    def test_format_table(self):
        out = format_table("T", ["a", "b"], [(1, 2.5), ("x", "y")])
        assert "=== T ===" in out
        assert "2.50" in out

    def test_format_ratio_series(self):
        out = format_ratio_series("S", {"d1": {"zipg": 0.5, "neo4j": 2.0}})
        assert "zipg" in out and "neo4j" in out and "d1" in out

    def test_speedup(self):
        assert speedup(10, 5) == 2.0
        assert speedup(1, 0) == float("inf")


class TestLatencyPercentiles:
    def test_percentiles_ordered(self):
        graph = social_graph(40, avg_degree=4, seed=1, property_scale=0.1)
        system = build_system(
            "zipg", graph, num_shards=2, alpha=8,
            extra_property_ids=["city", "interest"]
            + [f"attr{i:02d}" for i in range(38)] + ["payload"],
        )
        workload = TAOWorkload(graph, seed=4)
        result = run_mixed_workload(
            system, workload.operations(60), CostModel(),
            budget_bytes=10 * system.storage_footprint_bytes(),
        )
        assert 0 < result.p50_latency_us <= result.p99_latency_us
        assert result.p50_latency_us <= result.avg_latency_us * 3
        assert "p99" in result.row()


class TestCompactReport:
    def test_run_report_structure(self):
        from repro.bench.report import run_report

        lines = []
        results = run_report(datasets=["orkut"], ops=20, print_fn=lines.append)
        assert "orkut" in results["ratios"]
        assert set(results["ratios"]["orkut"]) == {
            "zipg", "neo4j-tuned", "titan", "titan-compressed",
        }
        assert results["throughput"]["orkut"]["zipg"] > 0
        assert results["graph_search"]["orkut"]["zipg"] > 0
        joined = "\n".join(lines)
        assert "Figure 5" in joined and "Table 5" in joined

"""Edge-case and failure-injection tests across the public API."""

import pytest

from repro.baselines.kvgraph import KVGraphStore
from repro.baselines.lsm import LSMStore
from repro.baselines.pointerstore import PointerGraphStore
from repro.core import GraphData, NodeNotFound, ZipG, WILDCARD
from repro.core.delimiters import DelimiterMap
from repro.core.edgefile import EdgeFile
from repro.core.errors import GraphFormatError
from repro.succinct import SuccinctKV


class TestEmptyStores:
    def test_zipg_on_empty_graph(self):
        store = ZipG.compress(GraphData(), num_shards=2, alpha=4,
                              extra_property_ids=["a"])
        assert store.get_node_ids({"a": "x"}) == []
        assert store.get_edge_record(0, 0).is_empty
        with pytest.raises(NodeNotFound):
            store.get_node_property(0)

    def test_zipg_nodes_without_properties(self):
        graph = GraphData()
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(1, 2, 0, 5)
        store = ZipG.compress(graph, num_shards=1, alpha=4,
                              extra_property_ids=["a"])
        assert store.get_node_property(1) == {}
        assert store.get_neighbor_ids(1, 0) == [2]

    def test_baselines_on_empty_graph(self):
        for system in (PointerGraphStore.load(GraphData()),
                       KVGraphStore.load(GraphData())):
            assert system.get_node_ids({"a": "b"}) == []
            assert system.edge_count(0, 0) == 0

    def test_lsm_empty(self):
        store = LSMStore()
        assert store.get_fragments(b"x") == []
        assert store.scan_prefix(b"") == []
        store.flush()  # no-op
        assert store.num_sstables == 0


class TestInvalidArguments:
    def test_edgefile_rejects_bad_width_policy(self):
        with pytest.raises(ValueError):
            EdgeFile({}, DelimiterMap(["a"]), width_policy="adaptive")

    def test_zipg_rejects_unknown_append_property(self):
        graph = GraphData()
        graph.add_node(1, {"a": "1"})
        store = ZipG.compress(graph, num_shards=1, alpha=4)
        with pytest.raises(GraphFormatError):
            store.append_node(2, {"zzz": "not in the delimiter map"})
            store.freeze_logstore()  # serialization happens at freeze

    def test_control_bytes_in_value_rejected_at_compress(self):
        graph = GraphData()
        graph.add_node(1, {"a": "bad\x02value"})
        with pytest.raises(GraphFormatError):
            ZipG.compress(graph, num_shards=1, alpha=4)

    def test_kv_interface_rejects_record_delimiter(self):
        with pytest.raises(ValueError):
            SuccinctKV({1: bytes([0x1E])})


class TestWildcardSemantics:
    @pytest.fixture
    def store(self):
        graph = GraphData()
        graph.add_node(1, {"a": "x", "b": "y"})
        graph.add_node(2, {"a": "x"})
        graph.add_edge(1, 2, 0, 10)
        graph.add_edge(1, 2, 3, 20)
        return ZipG.compress(graph, num_shards=2, alpha=4)

    def test_wildcard_property_ids(self, store):
        assert store.get_node_property(1, WILDCARD) == {"a": "x", "b": "y"}

    def test_wildcard_edge_type(self, store):
        record = store.get_edge_record(1, WILDCARD)
        assert record.edge_count == 2
        assert sorted(t for t in (record.timestamp_at(0), record.timestamp_at(1))) == [10, 20]

    def test_wildcard_time_bounds(self, store):
        record = store.get_edge_record(1, WILDCARD)
        assert store.get_edge_range(record, None, None) == (0, 2)
        assert store.get_edge_range(record, 15, None) == (1, 2)
        assert store.get_edge_range(record, None, 15) == (0, 1)

    def test_empty_property_list_matches_all(self, store):
        assert store.get_node_ids({}) == [1, 2]


class TestDanglingAndDuplicateEdges:
    def test_duplicate_edges_kept(self):
        graph = GraphData()
        graph.add_edge(1, 2, 0, 10)
        graph.add_edge(1, 2, 0, 10)
        store = ZipG.compress(graph, num_shards=1, alpha=4)
        assert store.get_edge_record(1, 0).edge_count == 2

    def test_delete_removes_all_duplicates(self):
        graph = GraphData()
        graph.add_edge(1, 2, 0, 10)
        graph.add_edge(1, 2, 0, 30)
        store = ZipG.compress(graph, num_shards=1, alpha=4)
        assert store.delete_edge(1, 0, 2) == 2
        assert store.get_edge_record(1, 0).edge_count == 0

    def test_edges_to_deleted_node_still_listed(self):
        graph = GraphData()
        graph.add_node(2, {"a": "x"})
        graph.add_edge(1, 2, 0, 10)
        store = ZipG.compress(graph, num_shards=1, alpha=4)
        store.delete_node(2)
        # Lazy node deletes do not cascade to edge records (§3.5)...
        assert store.get_neighbor_ids(1, 0) == [2]
        # ...but property-filtered traversals skip the dead node.
        assert store.get_neighbor_ids(1, 0, {"a": "x"}) == []


class TestLargeValuesAndIds:
    def test_huge_node_ids(self):
        graph = GraphData()
        big = 2**48
        graph.add_node(big, {"a": "v"})
        graph.add_edge(big, big + 1, 7, 2**40)
        store = ZipG.compress(graph, num_shards=2, alpha=4)
        assert store.get_node_property(big) == {"a": "v"}
        record = store.get_edge_record(big, 7)
        assert record.destination_at(0) == big + 1
        assert record.timestamp_at(0) == 2**40

    def test_long_property_values(self):
        graph = GraphData()
        graph.add_node(1, {"bio": "words " * 400})
        store = ZipG.compress(graph, num_shards=1, alpha=16)
        assert store.get_node_property(1, "bio")["bio"] == "words " * 400

    def test_many_edge_types_per_node(self):
        graph = GraphData()
        for edge_type in range(25):
            graph.add_edge(1, 100 + edge_type, edge_type, edge_type * 10)
        store = ZipG.compress(graph, num_shards=1, alpha=4)
        for edge_type in range(25):
            assert store.get_neighbor_ids(1, edge_type) == [100 + edge_type]
        assert store.get_edge_record(1, WILDCARD).edge_count == 25


class TestCorruptionDetection:
    def test_kvgraph_rejects_corrupt_fragment(self):
        store = KVGraphStore()
        store.lsm.put(b"e:1", b"Zgarbage")
        with pytest.raises(ValueError):
            store.get_neighbor_ids(1, 0)

"""Erasure-coding units: GF(256), Reed-Solomon, striping, verify-store.

These suites pin the math (every erasure pattern the code budget
promises to survive must decode byte-exactly), the fragment-store
integrity contract (missing / torn / corrupt fragments all surface as
:class:`FragmentCorruptError`, never as wrong bytes), and the offline
``repro verify-store`` audit built on the same manifests.
"""

import itertools
import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.core import GraphData, ZipG
from repro.core.errors import (
    FragmentCorruptError,
    ManifestCorruptError,
    ManifestMissingError,
    ReconstructionFailed,
    UnsupportedVersionError,
)
from repro.core.persistence import save_store, verify_store
from repro.ec import (
    EC_MANIFEST_NAME,
    ECManifest,
    ErasureCodedSnapshots,
    FragmentStore,
    RSCodec,
    encode_store,
    fragment_server,
    max_tolerable_server_failures,
)
from repro.ec.gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    gf_inv,
    gf_inv_matrix,
    gf_matmul,
    gf_mul,
    vandermonde,
)


def _poly_mul(a: int, b: int) -> int:
    """Reference carry-less product mod the 0x11D primitive polynomial."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11D
        b >>= 1
    return product


class TestGF256:
    def test_tables_match_polynomial_reference(self):
        for a in (0, 1, 2, 3, 7, 53, 128, 255):
            for b in (0, 1, 2, 9, 76, 200, 255):
                assert gf_mul(a, b) == _poly_mul(a, b)

    def test_exp_log_are_inverse(self):
        for a in range(1, 256):
            assert int(EXP_TABLE[int(LOG_TABLE[a])]) == a

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ValueError):
            gf_inv(0)

    def test_matrix_inverse_roundtrip(self):
        matrix = vandermonde(4, 4)
        inverse = gf_inv_matrix(matrix)
        assert np.array_equal(
            gf_matmul(matrix, inverse), np.eye(4, dtype=np.uint8)
        )

    def test_singular_matrix_rejected(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            gf_inv_matrix(singular)


PAYLOAD_SIZES = (0, 1, 3, 4, 5, 17, 4096, 10000)


def payload(size: int) -> bytes:
    return bytes((i * 31 + 7) % 256 for i in range(size))


class TestRSCodec:
    def test_every_two_erasure_pattern_decodes(self):
        """k=4, m=2 survives ANY two lost fragments, byte-exactly."""
        codec = RSCodec(4, 2)
        for size in PAYLOAD_SIZES:
            data = payload(size)
            fragments = dict(enumerate(codec.encode(data)))
            assert len(fragments) == 6
            for lost in itertools.combinations(range(6), 2):
                survivors = {i: f for i, f in fragments.items()
                             if i not in lost}
                assert codec.decode(survivors, size) == data

    def test_three_erasures_fail_loudly(self):
        codec = RSCodec(4, 2)
        data = payload(100)
        fragments = dict(enumerate(codec.encode(data)))
        survivors = {i: fragments[i] for i in (0, 1, 2)}
        with pytest.raises(ValueError):
            codec.decode(survivors, 100)

    def test_every_fragment_rebuilds(self):
        codec = RSCodec(4, 2)
        data = payload(999)
        fragments = codec.encode(data)
        for index, fragment in enumerate(fragments):
            assert codec.parity_of(index, data) == fragment

    def test_systematic_prefix_is_the_data(self):
        """Data fragments 0..k-1 concatenate back to the payload --
        the healthy read path never pays a matrix inversion."""
        codec = RSCodec(4, 2)
        data = payload(4096)
        fragments = codec.encode(data)
        assert b"".join(fragments[:4])[: len(data)] == data

    def test_other_geometries(self):
        for k, m in ((2, 1), (3, 3), (6, 2)):
            codec = RSCodec(k, m)
            data = payload(333)
            fragments = dict(enumerate(codec.encode(data)))
            for lost in itertools.combinations(range(k + m), m):
                survivors = {i: f for i, f in fragments.items()
                             if i not in lost}
                assert codec.decode(survivors, 333) == data


class TestPlacement:
    def test_round_robin_rotation(self):
        assert [fragment_server(0, i, 3) for i in range(6)] == \
            [0, 1, 2, 0, 1, 2]
        assert [fragment_server(1, i, 3) for i in range(6)] == \
            [1, 2, 0, 1, 2, 0]

    def test_tolerated_failures(self):
        # k=4,m=2: 2 fragments/server at n=3 -> one server loss; one
        # fragment/server at n>=6 -> any two.
        assert max_tolerable_server_failures(4, 2, 3) == 1
        assert max_tolerable_server_failures(4, 2, 6) == 2
        assert max_tolerable_server_failures(4, 2, 2) == 0


class TestFragmentStore:
    def test_roundtrip_and_verification(self, tmp_path):
        store = FragmentStore(str(tmp_path / "s0"))
        data = payload(256)
        store.write("file.bin", 3, data)
        crc = __import__("zlib").crc32(data) & 0xFFFFFFFF
        assert store.read("file.bin", 3, crc, len(data)) == data
        assert store.has("file.bin", 3, crc, len(data))

    def test_missing_fragment_raises(self, tmp_path):
        store = FragmentStore(str(tmp_path / "s0"))
        with pytest.raises(FragmentCorruptError, match="missing"):
            store.read("file.bin", 0)

    def test_torn_fragment_raises(self, tmp_path):
        store = FragmentStore(str(tmp_path / "s0"))
        data = payload(256)
        store.write("file.bin", 0, data)
        with open(store.path("file.bin", 0), "wb") as handle:
            handle.write(data[:100])
        with pytest.raises(FragmentCorruptError, match="torn"):
            store.read("file.bin", 0, 0, len(data))

    def test_corrupt_fragment_raises(self, tmp_path):
        store = FragmentStore(str(tmp_path / "s0"))
        data = payload(256)
        store.write("file.bin", 0, data)
        crc = __import__("zlib").crc32(data) & 0xFFFFFFFF
        flipped = bytes([data[0] ^ 0xFF]) + data[1:]
        with open(store.path("file.bin", 0), "wb") as handle:
            handle.write(flipped)
        with pytest.raises(FragmentCorruptError, match="corrupt"):
            store.read("file.bin", 0, crc, len(data))

    def test_wipe(self, tmp_path):
        store = FragmentStore(str(tmp_path / "s0"))
        store.write("a", 0, b"x")
        store.write("a", 1, b"y")
        assert store.wipe() == 2
        with pytest.raises(FragmentCorruptError):
            store.read("a", 0)


def build_store() -> ZipG:
    graph = GraphData()
    for i in range(15):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
    for i in range(15):
        graph.add_edge(i, (i + 1) % 15, 0, timestamp=i,
                       properties={"w": str(i % 3)})
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=1 << 20)


class TestStriping:
    def test_encode_reconstruct_degraded(self, tmp_path):
        root = str(tmp_path / "snap")
        ec_root = str(tmp_path / "ec")
        save_store(build_store(), root)
        manifest = encode_store(root, ec_root, num_servers=3)
        snaps = ErasureCodedSnapshots(ec_root, manifest)
        for name, stripe in manifest.files.items():
            with open(os.path.join(root, name), "rb") as handle:
                expected = handle.read()
            # Healthy and with any single server skipped: byte-exact.
            assert snaps.reconstruct_file(name, snaps.local_fetch) == expected
            for down in range(3):
                got = snaps.reconstruct_file(
                    name, snaps.local_fetch, skip_servers=(down,)
                )
                assert got == expected

    def test_storage_overhead_is_m_over_k(self, tmp_path):
        root = str(tmp_path / "snap")
        save_store(build_store(), root)
        manifest = encode_store(root, str(tmp_path / "ec"), num_servers=3)
        ratio = manifest.storage_bytes() / manifest.data_bytes()
        # (k+m)/k plus per-fragment padding; far under 2x replication.
        assert 1.49 <= ratio < 1.6

    def test_manifest_roundtrip(self, tmp_path):
        root = str(tmp_path / "snap")
        ec_root = str(tmp_path / "ec")
        save_store(build_store(), root)
        manifest = encode_store(root, ec_root, num_servers=3)
        loaded = ECManifest.load(os.path.join(ec_root, EC_MANIFEST_NAME))
        assert loaded == manifest

    def test_manifest_load_errors(self, tmp_path):
        path = str(tmp_path / EC_MANIFEST_NAME)
        with pytest.raises(ManifestMissingError):
            ECManifest.load(path)
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(ManifestCorruptError):
            ECManifest.load(path)
        with open(path, "w") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(UnsupportedVersionError):
            ECManifest.load(path)

    def test_rebuild_restores_wiped_server(self, tmp_path):
        root = str(tmp_path / "snap")
        ec_root = str(tmp_path / "ec")
        save_store(build_store(), root)
        snaps = ErasureCodedSnapshots.encode_snapshot(
            root, ec_root, num_servers=3
        )
        manifest = snaps.manifest
        victim = snaps.store_for(1)
        assert victim.wipe() > 0
        for name, index in manifest.server_fragments(1):
            rebuilt = snaps.rebuild_fragment(
                name, index, snaps.local_fetch, skip_servers=(1,)
            )
            victim.write(name, index, rebuilt)
        for name, index in manifest.server_fragments(1):
            info = manifest.files[name].fragments[index]
            assert victim.has(name, index, info.crc32, info.bytes)

    def test_reconstruction_failure_is_typed(self, tmp_path):
        root = str(tmp_path / "snap")
        ec_root = str(tmp_path / "ec")
        save_store(build_store(), root)
        snaps = ErasureCodedSnapshots.encode_snapshot(
            root, ec_root, num_servers=3
        )
        name = next(iter(snaps.manifest.files))
        with pytest.raises(ReconstructionFailed, match="live"):
            snaps.reconstruct_file(name, snaps.local_fetch,
                                   skip_servers=(0, 1))
        with pytest.raises(ReconstructionFailed, match="no encoded file"):
            snaps.reconstruct_file("ghost.bin", snaps.local_fetch)


class TestVerifyStore:
    def build_roots(self, tmp_path):
        root = str(tmp_path / "snap")
        ec_root = str(tmp_path / "ec")
        save_store(build_store(), root)
        encode_store(root, ec_root, num_servers=3)
        return root, ec_root

    def test_clean_store_passes(self, tmp_path):
        root, ec_root = self.build_roots(tmp_path)
        report = verify_store(root, ec_root=ec_root)
        assert report.ok
        assert report.files_checked > 0
        assert report.fragments_checked > 0
        assert main(["verify-store", root, "--ec-root", ec_root]) == 0

    def test_corrupt_snapshot_file_reported(self, tmp_path):
        root, _ = self.build_roots(tmp_path)
        name = next(
            entry for entry in os.listdir(root)
            if entry.startswith("shard-")
        )
        path = os.path.join(root, name)
        with open(path, "r+b") as handle:
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        report = verify_store(root)
        assert not report.ok
        assert any(issue.kind == "file-corrupt" for issue in report.issues)
        assert main(["verify-store", root]) == 1

    def test_corrupt_fragment_reported(self, tmp_path):
        root, ec_root = self.build_roots(tmp_path)
        store = FragmentStore(os.path.join(ec_root, "server-0"))
        name = next(entry for entry in os.listdir(store.root)
                    if not entry.endswith(".tmp"))
        with open(os.path.join(store.root, name), "ab") as handle:
            handle.write(b"junk")
        report = verify_store(root, ec_root=ec_root)
        assert not report.ok
        assert any(issue.kind == "fragment-corrupt"
                   for issue in report.issues)

    def test_torn_wal_tail_reported(self, tmp_path):
        from repro.core.wal import WriteAheadLog

        root, _ = self.build_roots(tmp_path)
        wal = WriteAheadLog(os.path.join(root, "wal.log"))
        wal.append_record("node", [99, {}])
        wal.close()
        with open(os.path.join(root, "wal.log"), "ab") as handle:
            handle.write(b"deadbeef {garbage")  # in-flight append at crash
        report = verify_store(root)
        assert not report.ok
        assert report.wal_records == 1
        assert any(issue.kind == "wal-torn-tail" for issue in report.issues)
        assert main(["verify-store", root]) == 1

    def test_missing_manifest_reported(self, tmp_path):
        report = verify_store(str(tmp_path / "empty"))
        assert not report.ok
        assert any(issue.kind == "manifest-missing"
                   for issue in report.issues)
        assert main(["verify-store", str(tmp_path / "empty")]) == 1

    def test_json_output(self, tmp_path, capsys):
        root, ec_root = self.build_roots(tmp_path)
        assert main(["verify-store", root, "--ec-root", ec_root,
                     "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is True
        assert out["issues"] == []

"""Unit tests for integer coding helpers."""

import numpy as np
import pytest

from repro.succinct import (
    delta_encoded_bit_size,
    elias_gamma_bit_size,
    varint_decode,
    varint_encode,
)
from repro.succinct.coding import (
    elias_gamma_bit_size_array,
    varint_decode_all,
    varint_encode_all,
)


class TestEliasGamma:
    @pytest.mark.parametrize(
        "value,bits", [(1, 1), (2, 3), (3, 3), (4, 5), (7, 5), (8, 7), (255, 15)]
    )
    def test_known_sizes(self, value, bits):
        assert elias_gamma_bit_size(value) == bits

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            elias_gamma_bit_size(0)

    def test_array_matches_scalar(self):
        values = np.array([1, 2, 3, 100, 5000], dtype=np.int64)
        expected = sum(elias_gamma_bit_size(int(v)) for v in values)
        assert elias_gamma_bit_size_array(values) == expected

    def test_array_empty(self):
        assert elias_gamma_bit_size_array(np.array([], dtype=np.int64)) == 0

    def test_array_rejects_zero(self):
        with pytest.raises(ValueError):
            elias_gamma_bit_size_array(np.array([1, 0]))


class TestDeltaEncoding:
    def test_small_gaps_compress_well(self):
        dense = np.arange(0, 10000, dtype=np.int64)  # gaps of 1
        sparse = np.arange(0, 10000 * 1000, 1000, dtype=np.int64)  # gaps of 1000
        assert delta_encoded_bit_size(dense) < delta_encoded_bit_size(sparse)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            delta_encoded_bit_size(np.array([3, 2, 1]))

    def test_empty(self):
        assert delta_encoded_bit_size(np.array([], dtype=np.int64)) == 0

    def test_single_value_is_one_anchor(self):
        assert delta_encoded_bit_size(np.array([12345])) == 64

    def test_anchor_spacing_tradeoff(self):
        values = np.cumsum(np.ones(1000, dtype=np.int64))
        frequent = delta_encoded_bit_size(values, sample_every=8)
        rare = delta_encoded_bit_size(values, sample_every=512)
        assert rare < frequent  # fewer 64-bit anchors for a smooth sequence


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**63])
    def test_roundtrip(self, value):
        encoded = varint_encode(value)
        decoded, offset = varint_decode(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            varint_encode(-1)

    def test_truncated_raises(self):
        encoded = varint_encode(300)
        with pytest.raises(ValueError):
            varint_decode(encoded[:1])

    def test_encode_all_roundtrip(self):
        values = [0, 5, 127, 128, 999999]
        blob = varint_encode_all(values)
        decoded, offset = varint_decode_all(blob, len(values))
        assert decoded == values
        assert offset == len(blob)

    def test_decode_at_offset(self):
        blob = b"\xff" + varint_encode(42)
        value, offset = varint_decode(blob, 1)
        assert value == 42
        assert offset == len(blob)

"""Unit tests for the Neo4j-like pointer store."""

import pytest

from repro.baselines.pointerstore import PointerGraphStore
from repro.core import GraphData


def small_graph():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100)
    graph.add_edge(1, 3, 0, 200)
    graph.add_edge(1, 3, 1, 300, {"note": "x"})
    return graph


@pytest.fixture(params=[False, True], ids=["base", "tuned"])
def store(request):
    return PointerGraphStore.load(small_graph(), tuned=request.param)


class TestQueries:
    def test_get_node_property(self, store):
        assert store.get_node_property(1) == {"name": "Alice", "city": "Ithaca"}
        assert store.get_node_property(2, "city") == {"city": "Boston"}

    def test_missing_node_raises(self, store):
        with pytest.raises(KeyError):
            store.get_node_property(42)

    def test_get_node_ids_via_index(self, store):
        assert store.get_node_ids({"city": "Ithaca"}) == [1, 3]
        assert store.get_node_ids({"city": "Ithaca", "name": "Carol"}) == [3]

    def test_get_neighbor_ids(self, store):
        assert store.get_neighbor_ids(1, 0) == [2, 3]
        assert sorted(store.get_neighbor_ids(1, "*")) == [2, 3, 3]

    def test_neighbor_filter(self, store):
        assert store.get_neighbor_ids(1, 0, {"city": "Ithaca"}) == [3]

    def test_edge_count(self, store):
        assert store.edge_count(1, 0) == 2
        assert store.edge_count(1, 9) == 0

    def test_edges_in_time_range(self, store):
        edges = store.edges_in_time_range(1, 0, 150, 999)
        assert [e.destination for e in edges] == [3]

    def test_edges_from_index(self, store):
        edges = store.edges_from_index(1, 0, 0, 1)
        assert edges[0].timestamp == 100
        edges = store.edges_from_index(1, 0, 1, None)
        assert edges[0].destination == 3

    def test_edge_properties_returned(self, store):
        edges = store.edges_from_index(1, 1, 0, None)
        assert edges[0].properties == {"note": "x"}


class TestUpdates:
    def test_append_and_delete_node(self, store):
        store.append_node(10, {"city": "Ithaca"})
        assert 10 in store.get_node_ids({"city": "Ithaca"})
        assert store.delete_node(10)
        assert 10 not in store.get_node_ids({"city": "Ithaca"})
        assert not store.delete_node(10)

    def test_update_node_reindexes(self, store):
        store.update_node(2, {"name": "Bob", "city": "Ithaca"})
        assert store.get_node_ids({"city": "Ithaca"}) == [1, 2, 3]
        assert store.get_node_ids({"city": "Boston"}) == []

    def test_append_edge(self, store):
        store.append_edge(2, 0, 3, 500)
        assert store.get_neighbor_ids(2, 0) == [3]

    def test_delete_edge(self, store):
        assert store.delete_edge(1, 0, 3) == 1
        assert store.get_neighbor_ids(1, 0) == [2]
        assert store.get_neighbor_ids(1, 1) == [3]  # other type untouched

    def test_delete_missing_edge(self, store):
        assert store.delete_edge(1, 0, 99) == 0


class TestCostCharacteristics:
    def test_tuned_walks_fewer_records_for_typed_query(self):
        base = PointerGraphStore.load(small_graph(), tuned=False)
        tuned = PointerGraphStore.load(small_graph(), tuned=True)
        base.get_neighbor_ids(1, 0)
        tuned.get_neighbor_ids(1, 0)
        assert tuned.stats.random_accesses <= base.stats.random_accesses

    def test_property_walk_counts_pointer_chases(self, store):
        store.reset_stats()
        store.get_node_property(1)
        # node record + two property records
        assert store.stats.random_accesses >= 3

    def test_footprint_includes_index(self):
        indexed = PointerGraphStore.load(small_graph())
        bare = PointerGraphStore.load(GraphData())
        assert indexed.storage_footprint_bytes() > bare.storage_footprint_bytes()

    def test_long_values_spill_to_string_store(self):
        graph = GraphData()
        graph.add_node(1, {"bio": "x" * 10})
        small = PointerGraphStore.load(graph).storage_footprint_bytes()
        graph2 = GraphData()
        graph2.add_node(1, {"bio": "x" * 500})
        large = PointerGraphStore.load(graph2).storage_footprint_bytes()
        assert large > small + 400

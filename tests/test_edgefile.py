"""Unit tests for the EdgeFile layout (§3.3, Figure 2)."""

import pytest

from repro.core.delimiters import DelimiterMap
from repro.core.edgefile import EdgeFile
from repro.core.model import Edge


@pytest.fixture
def dmap():
    return DelimiterMap(["note", "weight"])


@pytest.fixture
def edges():
    return {
        (1, 0): [
            Edge(1, 20, 0, 500, {"note": "old"}),
            Edge(1, 30, 0, 1500, {"note": "mid", "weight": "3"}),
            Edge(1, 40, 0, 2500),
        ],
        (1, 1): [Edge(1, 99, 1, 12345, {"weight": "7"})],
        (2, 0): [Edge(2, 1, 0, 7)],
        (11, 0): [Edge(11, 5, 0, 1)],  # source "11" shares prefix with "1"
    }


@pytest.fixture
def edge_file(edges, dmap):
    return EdgeFile(edges, dmap, alpha=4)


class TestFindRecord:
    def test_basic_lookup(self, edge_file):
        record = edge_file.find_record(1, 0)
        assert record is not None
        assert record.source == 1
        assert record.edge_type == 0
        assert record.edge_count == 3

    def test_missing_record(self, edge_file):
        assert edge_file.find_record(1, 5) is None
        assert edge_file.find_record(77, 0) is None

    def test_no_prefix_collision(self, edge_file):
        # Source 1 must not match records of source 11 and vice versa.
        assert edge_file.find_record(1, 0).edge_count == 3
        assert edge_file.find_record(11, 0).edge_count == 1

    def test_no_type_prefix_collision(self, dmap):
        edges = {(5, 1): [Edge(5, 6, 1, 10)], (5, 10): [Edge(5, 7, 10, 20), Edge(5, 8, 10, 30)]}
        edge_file = EdgeFile(edges, dmap, alpha=2)
        assert edge_file.find_record(5, 1).edge_count == 1
        assert edge_file.find_record(5, 10).edge_count == 2

    def test_wildcard_type(self, edge_file):
        records = edge_file.find_records(1)
        assert sorted(r.edge_type for r in records) == [0, 1]

    def test_records_of_type(self, edge_file):
        sources = sorted(r.source for r in edge_file.records_of_type(0))
        assert sources == [1, 2, 11]

    def test_len_counts_records(self, edge_file):
        assert len(edge_file) == 4
        assert edge_file.num_edges == 6


class TestEdgeAccess:
    def test_timestamps_sorted(self, edge_file):
        record = edge_file.find_record(1, 0)
        timestamps = [record.timestamp_at(i) for i in range(record.edge_count)]
        assert timestamps == [500, 1500, 2500]

    def test_destinations_align_with_timestamps(self, edge_file):
        record = edge_file.find_record(1, 0)
        assert [record.destination_at(i) for i in range(3)] == [20, 30, 40]
        assert record.all_destinations() == [20, 30, 40]

    def test_properties(self, edge_file):
        record = edge_file.find_record(1, 0)
        assert record.properties_at(0) == {"note": "old"}
        assert record.properties_at(1) == {"note": "mid", "weight": "3"}
        assert record.properties_at(2) == {}

    def test_edge_data(self, edge_file):
        record = edge_file.find_record(1, 1)
        data = record.edge_data_at(0)
        assert data.destination == 99
        assert data.timestamp == 12345
        assert data.properties == {"weight": "7"}

    def test_edge_data_without_properties(self, edge_file):
        record = edge_file.find_record(1, 0)
        data = record.edge_data_at(1, with_properties=False)
        assert data.properties == {}

    def test_out_of_range(self, edge_file):
        record = edge_file.find_record(2, 0)
        with pytest.raises(IndexError):
            record.timestamp_at(1)
        with pytest.raises(IndexError):
            record.destination_at(-1)


class TestTimeRange:
    def test_basic_binary_search(self, edge_file):
        record = edge_file.find_record(1, 0)
        assert record.time_range(500, 2500) == (0, 2)
        assert record.time_range(501, 2501) == (1, 3)
        assert record.time_range(0, 100) == (0, 0)
        assert record.time_range(3000, 9000) == (3, 3)

    def test_wildcard_bounds(self, edge_file):
        record = edge_file.find_record(1, 0)
        assert record.time_range(None, None) == (0, 3)
        assert record.time_range(1500, None) == (1, 3)
        assert record.time_range(None, 1500) == (0, 1)

    def test_duplicate_timestamps(self, dmap):
        edges = {(3, 0): [Edge(3, d, 0, 100) for d in (1, 2, 3)]}
        record = EdgeFile(edges, dmap, alpha=2).find_record(3, 0)
        assert record.time_range(100, 101) == (0, 3)


class TestMetadataWidths:
    def test_per_record_widths(self, dmap):
        # A record with tiny timestamps next to one with huge: the
        # paper's middle ground stores per-record fixed widths.
        edges = {
            (1, 0): [Edge(1, 2, 0, 5)],
            (2, 0): [Edge(2, 3, 0, 1_000_000_000_000)],
        }
        edge_file = EdgeFile(edges, dmap, alpha=2)
        small = edge_file.find_record(1, 0)
        big = edge_file.find_record(2, 0)
        assert small.timestamp_width < big.timestamp_width
        assert small.timestamp_at(0) == 5
        assert big.timestamp_at(0) == 1_000_000_000_000

    def test_base_edge_index_in_metadata(self, edge_file):
        # Records are laid out in sorted (source, type) order.
        bases = {
            (r.source, r.edge_type): r.base_edge_index
            for r in (
                edge_file.find_record(1, 0),
                edge_file.find_record(1, 1),
                edge_file.find_record(2, 0),
                edge_file.find_record(11, 0),
            )
        }
        assert bases[(1, 0)] == 0
        assert bases[(1, 1)] == 3
        assert bases[(2, 0)] == 4
        assert bases[(11, 0)] == 5

    def test_empty_edgefile(self, dmap):
        edge_file = EdgeFile({}, dmap)
        assert len(edge_file) == 0
        assert edge_file.find_record(1, 0) is None
        assert edge_file.records_of_type(0) == []

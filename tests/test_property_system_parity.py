"""Property test: all five systems return identical query results.

The paper's throughput comparisons are only meaningful if every system
computes the same answers; this test replays a random graph and a
random update sequence against ZipG, Neo4j(-Tuned) and Titan(-C) and
checks the full query surface for agreement.
"""

from conftest import hypothesis_examples
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.systems import build_system
from repro.core import GraphData

CITIES = ["Ithaca", "Boston"]
EXTRA_IDS = ["city"]


@st.composite
def graph_and_ops(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=6))
    graph = GraphData()
    for node_id in range(num_nodes):
        graph.add_node(node_id, {"city": draw(st.sampled_from(CITIES))})
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        graph.add_edge(src, dst, draw(st.integers(min_value=0, max_value=1)),
                       draw(st.integers(min_value=1, max_value=500)))
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(["add_edge", "del_edge", "update_node"]))
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        etype = draw(st.integers(min_value=0, max_value=1))
        ts = draw(st.integers(min_value=501, max_value=1000))
        city = draw(st.sampled_from(CITIES))
        ops.append((kind, src, dst, etype, ts, city))
    return graph, ops


@settings(max_examples=hypothesis_examples(20), deadline=None)
@given(data=graph_and_ops())
def test_all_systems_agree(data):
    graph, ops = data
    systems = [
        build_system("zipg", graph, num_shards=2, alpha=4,
                     extra_property_ids=EXTRA_IDS, logstore_threshold_bytes=200),
        build_system("neo4j", graph),
        build_system("neo4j-tuned", graph),
        build_system("titan", graph),
        build_system("titan-compressed", graph),
    ]
    for (kind, src, dst, etype, ts, city) in ops:
        for system in systems:
            if kind == "add_edge":
                system.append_edge(src, etype, dst, ts)
            elif kind == "del_edge":
                system.delete_edge(src, etype, dst)
            else:
                system.update_node(src, {"city": city})

    reference = systems[0]
    node_ids = graph.node_ids()
    for other in systems[1:]:
        for node in node_ids:
            assert reference.get_node_property(node) == other.get_node_property(node), (
                f"{other.name} disagrees on node {node} properties"
            )
            for etype in (0, 1):
                assert reference.get_neighbor_ids(node, etype) == other.get_neighbor_ids(
                    node, etype
                ), f"{other.name} disagrees on neighbors of {node} type {etype}"
                assert reference.edge_count(node, etype) == other.edge_count(node, etype)
                left = reference.edges_in_time_range(node, etype, 100, 800)
                right = other.edges_in_time_range(node, etype, 100, 800)
                assert [(e.destination, e.timestamp) for e in left] == [
                    (e.destination, e.timestamp) for e in right
                ]
        for city in CITIES:
            assert reference.get_node_ids({"city": city}) == other.get_node_ids(
                {"city": city}
            ), f"{other.name} disagrees on get_node_ids({city})"

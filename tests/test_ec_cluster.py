"""Erasure-coded placement on the cluster: degraded reads + rebuild.

The issue's robustness contract: with ``placement="ec"`` (k=4, m=2
fragments over 3 servers), losing any single server must yield
*complete* answers -- reconstruction from surviving fragments, not
``partial_results`` degradation -- and ``recover_server`` must rebuild
the returning server's lost fragments in the background before
re-admitting it.  With ``ZIPG_TRANSPORT=socket`` the same suites run
over real loopback RPC (fragments ride the wire as tagged base64).
"""

import pytest

from conftest import chaos_seeds, socket_transport_enabled
from repro import chaos, obs
from repro.chaos import ChaosInjector, FaultRule, SimulatedCrash
from repro.cluster import PartialResult, ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.persistence import save_store
from repro.ec import ErasureCodedSnapshots

NUM_SERVERS = 3
_loopbacks = []


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()
    while _loopbacks:
        _loopbacks.pop().close()


def reconstruction_count(snaps) -> float:
    """Sum of the per-file ``zipg_ec_reconstructions_total`` children."""
    return sum(
        obs.counter("zipg_ec_reconstructions_total",
                    labels={"file": name}).value
        for name in snaps.manifest.files
    )


def build_graph() -> GraphData:
    graph = GraphData()
    for i in range(24):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
        graph.add_edge(i, (i + 1) % 24, 0, timestamp=i,
                       properties={"w": str(i % 3)})
    return graph


def build_ec_cluster(tmp_path, cache_budget=0, **kwargs):
    """A 3-server ec-placement cluster over a freshly encoded snapshot."""
    store = ZipG.compress(build_graph(), num_shards=4, alpha=8,
                          logstore_threshold_bytes=1 << 20)
    if cache_budget:
        store.enable_cache(cache_budget)
    root = str(tmp_path / "snap")
    ec_root = str(tmp_path / "ec")
    save_store(store, root)
    snaps = ErasureCodedSnapshots.encode_snapshot(
        root, ec_root, num_servers=NUM_SERVERS
    )
    cluster = ReplicatedZipGCluster(store, num_servers=NUM_SERVERS,
                                    placement="ec", ec_snapshots=snaps,
                                    **kwargs)
    if socket_transport_enabled():
        from repro.server.loopback import LoopbackCluster

        loopback = LoopbackCluster(store, NUM_SERVERS)
        _loopbacks.append(loopback)
        cluster.transport = loopback.transport
    return cluster, store, snaps


class TestConstruction:
    def test_ec_forces_single_replica(self, tmp_path):
        cluster, _, _ = build_ec_cluster(tmp_path)
        assert cluster.placement == "ec"
        assert cluster.replication_factor == 1

    def test_ec_requires_snapshots(self):
        store = ZipG.compress(build_graph(), num_shards=2, alpha=8)
        with pytest.raises(ValueError, match="requires ec_snapshots"):
            ReplicatedZipGCluster(store, num_servers=3, placement="ec")

    def test_snapshots_require_ec(self, tmp_path):
        cluster, store, snaps = build_ec_cluster(tmp_path)
        with pytest.raises(ValueError, match="only valid"):
            ReplicatedZipGCluster(store, num_servers=3, ec_snapshots=snaps)

    def test_footprint_counts_parity_not_copies(self, tmp_path):
        cluster, store, snaps = build_ec_cluster(tmp_path)
        single = store.storage_footprint_bytes()
        footprint = cluster.storage_footprint_bytes()
        parity = snaps.manifest.storage_bytes() - snaps.manifest.data_bytes()
        assert footprint == single + parity
        # The acceptance gate's shape: the stored redundancy is ~1.5x
        # the snapshot, far below even a 2-replica layout.
        assert snaps.manifest.storage_bytes() < 2 * snaps.manifest.data_bytes()
        gauge = obs.gauge("zipg_storage_footprint_bytes",
                          labels={"mode": "ec"})
        assert gauge.value == footprint


class TestDegradedReads:
    @pytest.mark.parametrize("down", [0, 1, 2])
    def test_single_server_loss_reads_stay_complete(self, tmp_path, down):
        """Any one dead server: plain reads succeed and equal the
        healthy answers (server 0 also owns the LogStore unit, so this
        covers the replicated-hot-tail fallback too)."""
        cluster, store, snaps = build_ec_cluster(tmp_path)
        expected_nodes = store.get_node_ids({"kind": "x"})
        expected_edges = store.find_edges("w", "1")
        before = reconstruction_count(snaps)
        cluster.fail_server(down)
        assert cluster.get_node_ids({"kind": "x"}) == expected_nodes
        assert cluster.find_edges("w", "1") == expected_edges
        if down != cluster.logstore_server or any(
            shard.shard_id % NUM_SERVERS == down for shard in store.shards
        ):
            assert reconstruction_count(snaps) > before

    def test_partial_results_come_back_complete(self, tmp_path):
        cluster, store, _ = build_ec_cluster(tmp_path)
        expected = store.get_node_ids({"kind": "x"})
        cluster.fail_server(1)
        partial = cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert isinstance(partial, PartialResult)
        assert partial.complete and not partial.errors
        assert partial.value == expected

    def test_get_node_property_fails_over_to_any_server(self, tmp_path):
        cluster, store, _ = build_ec_cluster(tmp_path)
        for down in range(NUM_SERVERS):
            cluster.fail_server(down)
            for node_id in (0, 3, 7, 11):
                assert cluster.get_node_property(node_id, "name") == \
                    {"name": f"n{node_id}"}
            cluster.recover_server(down)
            assert cluster.wait_for_rebuild(down, timeout_s=60)

    def test_two_server_loss_exceeds_the_code_budget(self, tmp_path):
        """k=4,m=2 over 3 servers tolerates exactly one loss; a second
        one degrades to structured errors, not wrong answers."""
        cluster, _, _ = build_ec_cluster(tmp_path)
        cluster.fail_server(1)
        cluster.fail_server(2)
        partial = cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert isinstance(partial, PartialResult)
        assert partial.errors

    def test_decode_chaos_surfaces_as_shard_error(self, tmp_path):
        cluster, _, _ = build_ec_cluster(tmp_path)
        cluster.fail_server(1)
        injector = ChaosInjector(seed=101, rules=[
            FaultRule(site=chaos.SITE_EC_DECODE),
        ])
        with chaos.injected(injector):
            partial = cluster.get_node_ids({"kind": "x"},
                                           partial_results=True)
        assert isinstance(partial, PartialResult)
        assert partial.errors  # injected decode failure, typed not raised


class TestEpochFreshness:
    def test_degraded_reads_reflect_writes_with_cache(self, tmp_path):
        """fail -> reconstruct -> mutate -> reconstruct -> rebuild ->
        re-admit, with the hot-set cache enabled throughout: every read
        reflects the writes of its moment (epoch-keyed invalidation
        covers reconstructed stand-ins too)."""
        cluster, store, snaps = build_ec_cluster(tmp_path,
                                                 cache_budget=1 << 20)
        victims = [n for n in range(24) if store.route(n) % NUM_SERVERS == 1]
        assert victims, "need nodes owned by server 1"
        target = victims[0]
        healthy = cluster.get_node_ids({"kind": "x"})
        cluster.fail_server(1)
        # First degraded read builds the reconstruction.
        assert cluster.get_node_ids({"kind": "x"}) == healthy
        # Mutations while degraded: a delete on the dead server's shard
        # must disappear from the *next* degraded read (oplog replay
        # onto the cached reconstruction), an append must show up.
        assert cluster.delete_node(target)
        cluster.append_node(99, {"name": "n99", "kind": "x"})
        after_writes = cluster.get_node_ids({"kind": "x"})
        assert target not in after_writes
        assert 99 in after_writes
        assert 99 in cluster.get_node_ids({"kind": "x"})
        # Rebuild + re-admit; the healthy path agrees with the degraded
        # answers.
        snaps.store_for(1).wipe()
        cluster.recover_server(1)
        assert cluster.wait_for_rebuild(1, timeout_s=60)
        assert cluster.rebuild_error(1) is None
        assert not cluster.down_servers
        assert not cluster.catching_up_servers
        assert cluster.get_node_ids({"kind": "x"}) == after_writes


class TestRebuild:
    def test_wiped_server_rebuilds_and_readmits(self, tmp_path):
        cluster, store, snaps = build_ec_cluster(tmp_path)
        manifest = snaps.manifest
        counter = obs.counter("zipg_ec_rebuilt_fragments_total")
        before = counter.value
        cluster.fail_server(1)
        wiped = snaps.store_for(1).wipe()
        assert wiped > 0
        cluster.recover_server(1)
        assert cluster.wait_for_rebuild(1, timeout_s=60)
        assert cluster.rebuild_error(1) is None
        assert not cluster.down_servers
        assert counter.value - before == wiped
        victim = snaps.store_for(1)
        for name, index in manifest.server_fragments(1):
            info = manifest.files[name].fragments[index]
            assert victim.has(name, index, info.crc32, info.bytes)

    def test_intact_fragments_are_skipped(self, tmp_path):
        """A bounce is not a disk loss: nothing to re-encode."""
        cluster, _, _ = build_ec_cluster(tmp_path)
        counter = obs.counter("zipg_ec_rebuilt_fragments_total")
        before = counter.value
        cluster.fail_server(2)
        cluster.recover_server(2)
        assert cluster.wait_for_rebuild(2, timeout_s=60)
        assert counter.value == before
        assert not cluster.down_servers

    def test_rate_limited_rebuild_completes(self, tmp_path):
        cluster, _, snaps = build_ec_cluster(
            tmp_path, rebuild_rate_bytes_s=512 * 1024.0
        )
        cluster.fail_server(1)
        snaps.store_for(1).wipe()
        cluster.recover_server(1)
        assert cluster.wait_for_rebuild(1, timeout_s=120)
        assert cluster.rebuild_error(1) is None
        assert not cluster.down_servers

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_crash_during_rebuild_then_retry(self, tmp_path, seed):
        """A crash at the ec.rebuild site sends the server back to
        down with a recorded error; a later recover_server retries
        from scratch and succeeds."""
        cluster, store, snaps = build_ec_cluster(tmp_path)
        expected = store.get_node_ids({"kind": "x"})
        cluster.fail_server(1)
        snaps.store_for(1).wipe()
        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site=chaos.SITE_EC_REBUILD, fault="crash", times=1),
        ])
        with chaos.injected(injector):
            cluster.recover_server(1)
            assert cluster.wait_for_rebuild(1, timeout_s=60)
        assert 1 in cluster.down_servers
        assert isinstance(cluster.rebuild_error(1), SimulatedCrash)
        # Degraded reads keep working while the server is back down.
        assert cluster.get_node_ids({"kind": "x"}) == expected
        # Chaos gone: the retry completes and clears the error.
        cluster.recover_server(1)
        assert cluster.wait_for_rebuild(1, timeout_s=60)
        assert cluster.rebuild_error(1) is None
        assert not cluster.down_servers
        assert cluster.get_node_ids({"kind": "x"}) == expected

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_torn_rebuild_write_never_serves_garbage(self, tmp_path, seed):
        """Torn fragment writes during rebuild: the temp+rename commit
        means a torn write leaves no fragment behind, so the rebuild
        fails loudly instead of planting a corrupt fragment."""
        cluster, _, snaps = build_ec_cluster(tmp_path)
        manifest = snaps.manifest
        cluster.fail_server(1)
        snaps.store_for(1).wipe()
        # No `times` bound: the rule also matches (and is ignored by)
        # the per-fragment progress kick, so it must stay armed until
        # it reaches an actual fragment write.
        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site=chaos.SITE_EC_REBUILD, fault="torn_write"),
        ])
        with chaos.injected(injector):
            cluster.recover_server(1)
            assert cluster.wait_for_rebuild(1, timeout_s=60)
        assert 1 in cluster.down_servers
        assert cluster.rebuild_error(1) is not None
        victim = snaps.store_for(1)
        for name, index in manifest.server_fragments(1):
            info = manifest.files[name].fragments[index]
            # Either never written (crash before commit) or verified.
            try:
                data = victim.read(name, index, info.crc32, info.bytes)
            except Exception:
                continue
            assert len(data) == info.bytes

    def test_concurrent_recover_calls_coalesce(self, tmp_path):
        cluster, _, snaps = build_ec_cluster(tmp_path)
        cluster.fail_server(1)
        snaps.store_for(1).wipe()
        cluster.recover_server(1)
        cluster.recover_server(1)  # second call is a no-op, not a race
        assert cluster.wait_for_rebuild(1, timeout_s=60)
        assert not cluster.down_servers

"""Unit tests for the Titan-like KV graph store."""

import pytest

from repro.baselines.kvgraph import KVGraphStore, _decode_props, _encode_props
from repro.core import GraphData


def small_graph():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100)
    graph.add_edge(1, 3, 0, 200)
    graph.add_edge(1, 3, 1, 300, {"note": "x"})
    return graph


@pytest.fixture(params=[False, True], ids=["titan", "titan-compressed"])
def store(request):
    return KVGraphStore.load(small_graph(), compressed=request.param)


class TestPropsCodec:
    def test_roundtrip(self):
        properties = {"a": "1", "key": "value with spaces", "z": ""}
        blob = _encode_props(properties)
        decoded, offset = _decode_props(blob)
        assert decoded == properties
        assert offset == len(blob)

    def test_empty(self):
        decoded, _ = _decode_props(_encode_props({}))
        assert decoded == {}

    def test_unicode(self):
        properties = {"bio": "héllo wörld"}
        decoded, _ = _decode_props(_encode_props(properties))
        assert decoded == properties


class TestQueries:
    def test_get_node_property(self, store):
        assert store.get_node_property(1) == {"name": "Alice", "city": "Ithaca"}
        assert store.get_node_property(3, ["city"]) == {"city": "Ithaca"}

    def test_missing_node(self, store):
        with pytest.raises(KeyError):
            store.get_node_property(42)

    def test_get_node_ids(self, store):
        assert store.get_node_ids({"city": "Ithaca"}) == [1, 3]
        assert store.get_node_ids({"city": "Ithaca", "name": "Alice"}) == [1]

    def test_get_neighbor_ids(self, store):
        assert store.get_neighbor_ids(1, 0) == [2, 3]
        assert store.get_neighbor_ids(1, "*") == [2, 3, 3]
        assert store.get_neighbor_ids(1, 0, {"city": "Ithaca"}) == [3]

    def test_edge_count(self, store):
        assert store.edge_count(1, 0) == 2
        assert store.edge_count(2, 0) == 0

    def test_time_range(self, store):
        edges = store.edges_in_time_range(1, 0, 150, 250)
        assert [e.destination for e in edges] == [3]
        assert [e.timestamp for e in edges] == [200]

    def test_edges_from_index(self, store):
        edges = store.edges_from_index(1, 0, 0, None)
        assert [e.timestamp for e in edges] == [100, 200]

    def test_edge_props(self, store):
        edges = store.edges_from_index(1, 1, 0, None)
        assert edges[0].properties == {"note": "x"}


class TestUpdates:
    def test_append_node(self, store):
        store.append_node(9, {"city": "Ithaca"})
        assert store.get_node_property(9) == {"city": "Ithaca"}
        assert 9 in store.get_node_ids({"city": "Ithaca"})

    def test_update_node_reindexes(self, store):
        store.update_node(2, {"name": "Bob", "city": "Ithaca"})
        assert store.get_node_ids({"city": "Boston"}) == []
        assert 2 in store.get_node_ids({"city": "Ithaca"})

    def test_delete_node(self, store):
        assert store.delete_node(2)
        with pytest.raises(KeyError):
            store.get_node_property(2)
        assert store.get_node_ids({"city": "Boston"}) == []
        assert not store.delete_node(2)

    def test_append_edge_visible_across_flush(self, store):
        store.append_edge(2, 0, 1, 500)
        store.lsm.flush()
        assert store.get_neighbor_ids(2, 0) == [1]

    def test_delete_edge(self, store):
        assert store.delete_edge(1, 0, 3) == 1
        assert store.get_neighbor_ids(1, 0) == [2]
        assert store.get_neighbor_ids(1, 1) == [3]

    def test_delete_missing_edge(self, store):
        assert store.delete_edge(1, 0, 99) == 0

    def test_readd_after_delete(self, store):
        store.delete_edge(1, 0, 3)
        store.append_edge(1, 0, 3, 999)
        assert store.get_neighbor_ids(1, 0) == [2, 3]


class TestCostCharacteristics:
    def test_compressed_charges_decompression(self):
        store = KVGraphStore.load(small_graph(), compressed=True)
        store.reset_stats()
        store.get_node_property(1)
        assert store.aggregate_stats().decompressed_bytes > 0

    def test_uncompressed_never_decompresses(self):
        store = KVGraphStore.load(small_graph(), compressed=False)
        store.reset_stats()
        store.get_node_property(1)
        assert store.aggregate_stats().decompressed_bytes == 0

    def test_typed_query_scans_whole_adjacency(self, store):
        # The opaque-object cost: filtering one type still scans bytes
        # belonging to the other types' edges.
        store.reset_stats()
        store.get_neighbor_ids(1, 1)
        assert store.aggregate_stats().sequential_bytes > 0

    def test_compression_reduces_footprint(self):
        graph = small_graph()
        raw = KVGraphStore.load(graph, compressed=False).storage_footprint_bytes()
        packed = KVGraphStore.load(graph, compressed=True).storage_footprint_bytes()
        assert packed < raw

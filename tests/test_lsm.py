"""Unit tests for the Cassandra-like LSM substrate."""

import pytest

from repro.baselines.lsm import LSMStore, SSTable, _pack_entries, _unpack_entries
from repro.succinct.stats import AccessStats


class TestPacking:
    def test_roundtrip(self):
        entries = [(b"a", b"1"), (b"bb", b"22"), (b"a", b"333")]
        assert _unpack_entries(_pack_entries(entries)) == entries

    def test_empty(self):
        assert _unpack_entries(_pack_entries([])) == []


class TestSSTable:
    @pytest.fixture(params=[False, True], ids=["raw", "compressed"])
    def table(self, request):
        entries = [(b"k%03d" % i, b"value-%d" % i) for i in range(300)]
        entries.append((b"k005", b"second-fragment"))
        return SSTable(entries, compressed=request.param, stats=AccessStats())

    def test_get_single(self, table):
        assert table.get_fragments(b"k100") == [b"value-100"]

    def test_get_multiple_fragments(self, table):
        assert table.get_fragments(b"k005") == [b"value-5", b"second-fragment"]

    def test_get_missing(self, table):
        assert table.get_fragments(b"nope") == []

    def test_may_contain(self, table):
        assert table.may_contain(b"k000")
        assert not table.may_contain(b"zzz")

    def test_scan_prefix(self, table):
        hits = list(table.scan_prefix(b"k01"))
        assert len(hits) == 10
        assert all(key.startswith(b"k01") for key, _ in hits)

    def test_scan_prefix_no_match(self, table):
        assert list(table.scan_prefix(b"q")) == []

    def test_all_entries_roundtrip(self, table):
        assert len(table.all_entries()) == 301

    def test_stored_bytes_positive(self, table):
        assert table.stored_bytes() > 0

    def test_compression_shrinks_storage(self):
        entries = [(b"k%03d" % i, b"abcdabcd" * 16) for i in range(200)]
        raw = SSTable(entries, compressed=False, stats=AccessStats())
        packed = SSTable(entries, compressed=True, stats=AccessStats())
        assert packed.stored_bytes() < raw.stored_bytes()

    def test_compressed_reads_charge_decompression(self):
        stats = AccessStats()
        entries = [(b"key", b"value" * 10)]
        table = SSTable(entries, compressed=True, stats=stats)
        table.get_fragments(b"key")
        assert stats.decompressed_bytes > 0


class TestLSMStore:
    def test_put_get_from_memtable(self):
        store = LSMStore()
        store.put(b"a", b"1")
        store.put(b"a", b"2")
        assert store.get_fragments(b"a") == [b"1", b"2"]

    def test_fragments_ordered_across_flushes(self):
        store = LSMStore(memtable_flush_bytes=1 << 30)
        store.put(b"a", b"old")
        store.flush()
        store.put(b"a", b"new")
        assert store.get_fragments(b"a") == [b"old", b"new"]

    def test_auto_flush_on_threshold(self):
        store = LSMStore(memtable_flush_bytes=64)
        for i in range(20):
            store.put(b"k%d" % i, b"x" * 16)
        assert store.flush_count > 0
        assert store.num_sstables >= 1

    def test_compaction_bounds_sstables(self):
        store = LSMStore(memtable_flush_bytes=32, max_sstables=3)
        for i in range(100):
            store.put(b"k%d" % i, b"y" * 16)
        assert store.compaction_count > 0
        assert store.num_sstables <= 4

    def test_compaction_preserves_data(self):
        store = LSMStore(memtable_flush_bytes=1 << 30)
        for i in range(10):
            store.put(b"key", b"f%d" % i)
            store.flush()
        store.compact()
        assert store.num_sstables == 1
        assert store.get_fragments(b"key") == [b"f%d" % i for i in range(10)]

    def test_scan_prefix_across_tables(self):
        store = LSMStore(memtable_flush_bytes=1 << 30)
        store.put(b"p:1", b"a")
        store.flush()
        store.put(b"p:2", b"b")
        store.put(b"q:1", b"c")
        hits = store.scan_prefix(b"p:")
        assert sorted(hits) == [(b"p:1", b"a"), (b"p:2", b"b")]

    def test_stored_bytes_grows(self):
        store = LSMStore()
        before = store.stored_bytes()
        store.put(b"k", b"v" * 100)
        assert store.stored_bytes() > before

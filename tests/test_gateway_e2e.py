"""End-to-end gateway serving: real processes, full wire path.

Extends the master/shard deployment of ``test_socket_serving`` with a
``serve-gateway`` process fronting the master: two shard servers, one
master, one gateway, four separate Python processes.  A TAO-style mix
runs through :class:`GatewayClient` with answers checked against an
in-process store built from the same graph file; then one shard dies
by SIGKILL and the mix keeps answering through the master's failover
-- the gateway neither notices nor cares.  Shedding stays structured
over the wire (a tight-bucket gateway rejects with a typed
:class:`RetryAfter` carrying its hint), degraded reads come back as
:class:`PartialResult`, and every surviving process shuts down cleanly
on SIGINT.
"""

import pytest

from repro.bench.systems import ZipGSystem
from repro.cluster import PartialResult
from repro.core.errors import RetryAfter
from repro.gateway import GatewayClient

from test_socket_serving import (
    Deployment,
    build_graph,
    read_listening,
    run_tao_mix,
    spawn,
    write_graph_file,
)

NUM_SHARDS = 2
ALPHA = 8


class GatewayDeployment(Deployment):
    """Shards + master + a generously-provisioned gateway in front."""

    def __init__(self, graph_file):
        super().__init__(graph_file)
        host, port = self.master_address
        gateway = spawn(
            "serve-gateway", "--master-host", host,
            "--master-port", str(port), "--port", "0",
            "--tenant-rate", "500", "--tenant-burst", "100",
            "--queue-depth", "64",
        )
        self.procs["gateway"] = gateway
        self.gateway_address = read_listening(gateway)

    def spawn_strict_gateway(self):
        """A second gateway against the same master whose bucket is
        nearly empty: two requests of burst, then structured shedding."""
        host, port = self.master_address
        gateway = spawn(
            "serve-gateway", "--master-host", host,
            "--master-port", str(port), "--port", "0",
            "--tenant-rate", "0.001", "--tenant-burst", "2",
            "--queue-depth", "4", "--dispatchers", "1",
        )
        self.procs["strict-gateway"] = gateway
        return read_listening(gateway)


@pytest.fixture
def deployment(tmp_path):
    graph_file = tmp_path / "graph.txt"
    write_graph_file(build_graph(), graph_file)
    deployment = GatewayDeployment(graph_file)
    try:
        yield deployment
    finally:
        deployment.close()


def test_gateway_mix_survives_shard_sigkill(deployment):
    graph = build_graph()
    system = ZipGSystem.load(graph, num_shards=NUM_SHARDS, alpha=ALPHA)
    host, port = deployment.gateway_address
    with GatewayClient(host, port, tenant="e2e", timeout_s=30.0) as client:
        # The gateway answers its own ping; topology forwards through
        # the gateway's backend client to the master.
        assert client.ping()
        topology = client.topology()
        assert topology["num_servers"] == 2
        assert topology["replication_factor"] == 2

        # Phase 1: the full TAO mix through four processes, every
        # answer identical to the in-process store.
        run_tao_mix(client, system)

        # Writes traverse gateway -> master -> both replicas.
        client.append_node(500, {"name": "added", "kind": "x"})
        client.append_edge(0, 1, 500, timestamp=999)
        system.append_node(500, {"name": "added", "kind": "x"})
        system.append_edge(0, 1, 500, timestamp=999)
        assert client.get_node_property(500) == \
            {"name": "added", "kind": "x"}
        assert 500 in client.get_neighbor_ids(0)

        # Phase 2: SIGKILL one shard server.  Failover is the master's
        # job; through the gateway the mix's answers do not change.
        deployment.procs["shard1"].kill()
        deployment.reap(deployment.procs["shard1"])
        run_tao_mix(client, system)

        # Degraded reads stay structured end to end: a PartialResult
        # decodes through gateway and client, complete because the
        # surviving server holds a full replica.
        partial = client.get_node_ids({"kind": "x"}, partial_results=True)
        assert isinstance(partial, PartialResult)
        assert partial.complete
        assert partial.value == system.get_node_ids({"kind": "x"})

        # A write quarantines the dead server; admin state flows
        # through the gateway untouched.
        client.append_node(501, {"name": "late", "kind": "y"})
        system.append_node(501, {"name": "late", "kind": "y"})
        assert client.down_servers() == [1]
        run_tao_mix(client, system)

    # Phase 3: a near-zero-rate gateway sheds with the typed error and
    # its retry hint intact across process and wire boundaries.
    strict_host, strict_port = deployment.spawn_strict_gateway()
    with GatewayClient(strict_host, strict_port, tenant="greedy",
                       timeout_s=30.0) as greedy:
        results = {"ok": 0}
        shed = None
        for _ in range(4):
            try:
                greedy.edge_count(0, 0)
                results["ok"] += 1
            except RetryAfter as exc:
                shed = exc
        assert results["ok"] == 2  # exactly the burst allowance
        assert shed is not None
        assert shed.reason == "rate_limit"
        assert shed.retry_after_s > 0

    # Phase 4: every survivor exits 0 on SIGINT (supervisor contract);
    # the gateways drain before their processes exit.
    assert deployment.interrupt("strict-gateway") == 0
    assert deployment.interrupt("gateway") == 0
    assert deployment.interrupt("master") == 0
    assert deployment.interrupt("shard0") == 0

"""Runtime lock-discipline harness: TrackedLock + instrument()."""

import threading

import pytest

from repro.analysis.runtime import (
    LockDisciplineViolation,
    TrackedLock,
    instrument,
)
from repro.succinct.stats import AccessStats


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self.label = "box"


class TestTrackedLock:
    def test_held_by_current_tracks_ownership(self):
        lock = TrackedLock()
        assert not lock.held_by_current()
        with lock:
            assert lock.held_by_current()
        assert not lock.held_by_current()

    def test_other_thread_not_counted_as_holder(self):
        lock = TrackedLock()
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with lock:
                entered.set()
                release.wait(timeout=5.0)

        worker = threading.Thread(target=hold)
        worker.start()
        try:
            assert entered.wait(timeout=5.0)
            assert not lock.held_by_current()
        finally:
            release.set()
            worker.join(timeout=5.0)


class TestInstrumentLockPolicy:
    def test_unlocked_write_raises(self):
        box = Box()
        instrument(box, guarded=("value",))
        with pytest.raises(LockDisciplineViolation):
            box.value = 1

    def test_locked_write_allowed(self):
        box = Box()
        instrument(box, guarded=("value",))
        with box._lock:
            box.value = 1
        assert box.value == 1

    def test_unguarded_attr_unaffected(self):
        box = Box()
        instrument(box, guarded=("value",))
        box.label = "renamed"  # not in the guarded set
        assert box.label == "renamed"

    def test_catches_racy_access_stats_increment(self):
        stats = AccessStats()
        instrument(stats, guarded=("npa_hops",))
        errors = []

        def racy():
            try:
                stats.npa_hops += 1  # the exact bug LOCK003 guards against
            except LockDisciplineViolation as exc:
                errors.append(exc)

        worker = threading.Thread(target=racy)
        worker.start()
        worker.join(timeout=5.0)
        assert len(errors) == 1

        with stats._lock:
            stats.npa_hops += 1
        assert stats.npa_hops == 1


class TestInstrumentSingleWriterPolicy:
    def test_first_unlocked_writer_claims_ownership(self):
        box = Box()
        instrument(box, guarded=("value",), policy="single-writer")
        box.value = 1
        box.value = 2  # same thread: still fine
        assert box.value == 2

    def test_second_thread_unlocked_write_raises(self):
        box = Box()
        instrument(box, guarded=("value",), policy="single-writer")
        box.value = 1  # this thread becomes the owner
        errors = []

        def foreign_write():
            try:
                box.value = 99
            except LockDisciplineViolation as exc:
                errors.append(exc)

        worker = threading.Thread(target=foreign_write)
        worker.start()
        worker.join(timeout=5.0)
        assert len(errors) == 1
        assert box.value == 1

    def test_locked_write_from_any_thread_allowed(self):
        box = Box()
        instrument(box, guarded=("value",), policy="single-writer")
        box.value = 1
        done = []

        def locked_write():
            with box._lock:
                box.value = 7
            done.append(True)

        worker = threading.Thread(target=locked_write)
        worker.start()
        worker.join(timeout=5.0)
        assert done and box.value == 7


class TestInstrumentApi:
    def test_returns_tracked_lock_replacing_original(self):
        box = Box()
        tracked = instrument(box, guarded=("value",))
        assert isinstance(tracked, TrackedLock)
        assert box._lock is tracked

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            instrument(Box(), guarded=("value",), policy="chaos")

    def test_missing_lock_attr_rejected(self):
        with pytest.raises(AttributeError):
            instrument(Box(), guarded=("value",), lock_attr="_no_such_lock")

"""Runtime lock-discipline harness: TrackedLock + instrument()."""

import threading

import pytest

from repro.analysis.runtime import (
    LockDisciplineViolation,
    TrackedLock,
    instrument,
)
from repro.succinct.stats import AccessStats


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self.label = "box"


class TestTrackedLock:
    def test_held_by_current_tracks_ownership(self):
        lock = TrackedLock()
        assert not lock.held_by_current()
        with lock:
            assert lock.held_by_current()
        assert not lock.held_by_current()

    def test_other_thread_not_counted_as_holder(self):
        lock = TrackedLock()
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with lock:
                entered.set()
                release.wait(timeout=5.0)

        worker = threading.Thread(target=hold)
        worker.start()
        try:
            assert entered.wait(timeout=5.0)
            assert not lock.held_by_current()
        finally:
            release.set()
            worker.join(timeout=5.0)


class TestInstrumentLockPolicy:
    def test_unlocked_write_raises(self):
        box = Box()
        instrument(box, guarded=("value",))
        with pytest.raises(LockDisciplineViolation):
            box.value = 1

    def test_locked_write_allowed(self):
        box = Box()
        instrument(box, guarded=("value",))
        with box._lock:
            box.value = 1
        assert box.value == 1

    def test_unguarded_attr_unaffected(self):
        box = Box()
        instrument(box, guarded=("value",))
        box.label = "renamed"  # not in the guarded set
        assert box.label == "renamed"

    def test_catches_racy_access_stats_increment(self):
        stats = AccessStats()
        instrument(stats, guarded=("npa_hops",))
        errors = []

        def racy():
            try:
                stats.npa_hops += 1  # the exact bug LOCK003 guards against
            except LockDisciplineViolation as exc:
                errors.append(exc)

        worker = threading.Thread(target=racy)
        worker.start()
        worker.join(timeout=5.0)
        assert len(errors) == 1

        with stats._lock:
            stats.npa_hops += 1
        assert stats.npa_hops == 1


class TestInstrumentSingleWriterPolicy:
    def test_first_unlocked_writer_claims_ownership(self):
        box = Box()
        instrument(box, guarded=("value",), policy="single-writer")
        box.value = 1
        box.value = 2  # same thread: still fine
        assert box.value == 2

    def test_second_thread_unlocked_write_raises(self):
        box = Box()
        instrument(box, guarded=("value",), policy="single-writer")
        box.value = 1  # this thread becomes the owner
        errors = []

        def foreign_write():
            try:
                box.value = 99
            except LockDisciplineViolation as exc:
                errors.append(exc)

        worker = threading.Thread(target=foreign_write)
        worker.start()
        worker.join(timeout=5.0)
        assert len(errors) == 1
        assert box.value == 1

    def test_locked_write_from_any_thread_allowed(self):
        box = Box()
        instrument(box, guarded=("value",), policy="single-writer")
        box.value = 1
        done = []

        def locked_write():
            with box._lock:
                box.value = 7
            done.append(True)

        worker = threading.Thread(target=locked_write)
        worker.start()
        worker.join(timeout=5.0)
        assert done and box.value == 7


class TestInstrumentApi:
    def test_returns_tracked_lock_replacing_original(self):
        box = Box()
        tracked = instrument(box, guarded=("value",))
        assert isinstance(tracked, TrackedLock)
        assert box._lock is tracked

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            instrument(Box(), guarded=("value",), policy="chaos")

    def test_missing_lock_attr_rejected(self):
        with pytest.raises(AttributeError):
            instrument(Box(), guarded=("value",), lock_attr="_no_such_lock")


# ----------------------------------------------------------------------
# Lock-order trace recording
# ----------------------------------------------------------------------


from repro.analysis import analyze_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.runtime import LockOrderRecorder, load_lock_trace

HALF_CYCLE_MODULE = '''\
"""One static leg of a lock-order cycle."""
import threading


class Half:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.n = 0

    def forward(self):
        with self._a:
            self._grab_b()

    def _grab_b(self):
        with self._b:
            self.n += 1
'''


class TestLockOrderRecorder:
    def test_nested_acquisition_records_edge_with_witnesses(self):
        recorder = LockOrderRecorder()
        outer = TrackedLock("A", recorder=recorder)
        inner = TrackedLock("B", recorder=recorder)
        with outer:
            with inner:
                pass
        edges = recorder.edges()
        assert [(e["held"], e["acquired"]) for e in edges] == [("A", "B")]
        assert edges[0]["held_stack"] and edges[0]["acquired_stack"]
        # witness frames point at this test, not the recorder internals
        assert any("test_analysis_runtime" in frame
                   for frame in edges[0]["acquired_stack"])

    def test_reentrant_reacquire_records_no_self_edge(self):
        recorder = LockOrderRecorder()
        lock = TrackedLock("A", reentrant=True, recorder=recorder)
        with lock:
            with lock:
                pass
        assert recorder.edges() == []

    def test_release_order_interleaving_tracked_per_thread(self):
        recorder = LockOrderRecorder()
        a = TrackedLock("A", recorder=recorder)
        b = TrackedLock("B", recorder=recorder)

        idents = {}

        def forward():
            idents["forward"] = threading.get_ident()
            with a:
                with b:
                    pass

        def backward():
            idents["backward"] = threading.get_ident()
            with b:
                with a:
                    pass

        first = threading.Thread(target=forward)
        first.start()
        first.join(timeout=5.0)
        second = threading.Thread(target=backward)
        second.start()
        second.join(timeout=5.0)
        by_pair = {(e["held"], e["acquired"]): e["thread"] for e in recorder.edges()}
        # Each witness carries the ident of the thread that recorded it
        # (idents may coincide: the OS reuses them after a join).
        assert by_pair == {
            ("A", "B"): idents["forward"],
            ("B", "A"): idents["backward"],
        }

    def test_main_thread_holds_do_not_leak_into_workers(self):
        recorder = LockOrderRecorder()
        a = TrackedLock("A", recorder=recorder)
        b = TrackedLock("B", recorder=recorder)
        seen = []

        def worker():
            with b:
                seen.append(recorder.held_by_current())

        with a:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=5.0)
        # the worker never held A, so no A->B edge may be fabricated
        assert seen == [["B"]]
        assert recorder.edges() == []

    def test_reset_clears_edges(self):
        recorder = LockOrderRecorder()
        with TrackedLock("A", recorder=recorder):
            pass
        outer = TrackedLock("A", recorder=recorder)
        inner = TrackedLock("B", recorder=recorder)
        with outer:
            with inner:
                pass
        assert recorder.edges()
        recorder.reset()
        assert recorder.edges() == []

    def test_save_load_roundtrip(self, tmp_path):
        recorder = LockOrderRecorder()
        outer = TrackedLock("A", recorder=recorder)
        inner = TrackedLock("B", recorder=recorder)
        with outer:
            with inner:
                pass
        trace_path = str(tmp_path / "trace.json")
        recorder.save(trace_path)
        loaded = load_lock_trace(trace_path)
        assert [(e["held"], e["acquired"]) for e in loaded] == [("A", "B")]


# ----------------------------------------------------------------------
# Trace -> DEADLOCK001 handoff
# ----------------------------------------------------------------------


class TestTraceDeadlockHandoff:
    def _trace(self, tmp_path, pairs):
        recorder = LockOrderRecorder()
        locks = {}
        for held, acquired in pairs:
            locks.setdefault(held, TrackedLock(held, recorder=recorder))
            locks.setdefault(
                acquired, TrackedLock(acquired, recorder=recorder)
            )

        for held, acquired in pairs:
            def nest(h=held, a=acquired):
                with locks[h]:
                    with locks[a]:
                        pass

            thread = threading.Thread(target=nest)
            thread.start()
            thread.join(timeout=5.0)
        trace_path = str(tmp_path / "trace.json")
        recorder.save(trace_path)
        return trace_path

    def test_runtime_only_inversion_reported(self, tmp_path):
        module = tmp_path / "plain.py"
        module.write_text("x = 1\n")
        trace = self._trace(tmp_path, [("A", "B"), ("B", "A")])
        findings, _ = analyze_paths(
            [str(module)], ["DEADLOCK001"],
            lock_traces=load_lock_trace(trace),
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "lock-order cycle" in message
        assert message.count("runtime witness") == 2

    def test_static_leg_composes_with_runtime_leg(self, tmp_path):
        module = tmp_path / "half.py"
        module.write_text(HALF_CYCLE_MODULE)
        trace = self._trace(tmp_path, [("Half._b", "Half._a")])
        findings, _ = analyze_paths(
            [str(module)], ["DEADLOCK001"],
            lock_traces=load_lock_trace(trace),
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "runtime witness" in message and "static witness" in message

    def test_without_trace_the_half_cycle_is_clean(self, tmp_path):
        module = tmp_path / "half.py"
        module.write_text(HALF_CYCLE_MODULE)
        findings, _ = analyze_paths([str(module)], ["DEADLOCK001"])
        assert findings == []

    def test_hand_crafted_self_edge_reported(self, tmp_path):
        import json

        module = tmp_path / "plain.py"
        module.write_text("x = 1\n")
        trace_path = tmp_path / "self.json"
        trace_path.write_text(json.dumps({
            "version": 1,
            "edges": [{
                "held": "L", "acquired": "L",
                "held_stack": ["app.py:10 in run"],
                "acquired_stack": ["app.py:12 in run"],
            }],
        }))
        findings, _ = analyze_paths(
            [str(module)], ["DEADLOCK001"],
            lock_traces=load_lock_trace(str(trace_path)),
        )
        assert len(findings) == 1
        assert "re-acquired" in findings[0].message

    def test_cli_lock_trace_flag(self, tmp_path, capsys):
        module = tmp_path / "plain.py"
        module.write_text("x = 1\n")
        trace = self._trace(tmp_path, [("A", "B"), ("B", "A")])
        code = analysis_main([
            str(module), "--lock-trace", trace, "--rules", "DEADLOCK001",
        ])
        assert code == 1
        assert "DEADLOCK001" in capsys.readouterr().out

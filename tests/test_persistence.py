"""Tests for store persistence (§4.1): save/load round trips."""

import pytest

from repro.core import GraphData, NodeNotFound, ZipG
from repro.core.persistence import load_store, save_store


def build_store():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100, {"w": "5"})
    graph.add_edge(1, 3, 0, 200)
    graph.add_edge(2, 3, 1, 50)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=400,
                         extra_property_ids=["zip"])


class TestRoundTrip:
    def test_fresh_store(self, tmp_path):
        store = build_store()
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert loaded.num_shards == store.num_shards
        assert loaded.get_node_property(1) == {"name": "Alice", "city": "Ithaca"}
        assert loaded.get_node_ids({"city": "Ithaca"}) == [1, 3]
        record = loaded.get_edge_record(1, 0)
        assert [record.timestamp_at(i) for i in range(record.edge_count)] == [100, 200]
        assert record.data_at(0).properties == {"w": "5"}

    def test_with_pending_logstore_writes(self, tmp_path):
        store = build_store()
        store.append_node(9, {"name": "Ida", "zip": "14850"})
        store.append_edge(1, 0, 9, timestamp=300)
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert loaded.get_node_property(9, "zip") == {"zip": "14850"}
        assert loaded.get_neighbor_ids(1, 0) == [2, 3, 9]
        # Pointers survived: the appended edge is reachable via the
        # routing shard's table, not a full scan.
        assert loaded.node_fragment_count(1) == 2

    def test_with_deletions(self, tmp_path):
        store = build_store()
        store.delete_node(2)
        store.delete_edge(1, 0, 3)
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        with pytest.raises(NodeNotFound):
            loaded.get_node_property(2)
        assert loaded.get_node_ids({"city": "Boston"}) == []
        assert loaded.get_neighbor_ids(1, 0) == [2]

    def test_with_frozen_shards(self, tmp_path):
        store = build_store()
        for i in range(12):
            store.append_edge(1, 0, 100 + i, timestamp=1_000 + i)
        store.freeze_logstore()
        store.append_edge(1, 0, 500, timestamp=5_000)  # back in the logstore
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert loaded.num_shards == store.num_shards
        assert loaded.freeze_count == store.freeze_count
        record = loaded.get_edge_record(1, 0)
        assert record.edge_count == 2 + 12 + 1
        assert record.destinations() == store.get_edge_record(1, 0).destinations()

    def test_writes_continue_after_load(self, tmp_path):
        store = build_store()
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        loaded.append_edge(3, 0, 1, timestamp=999)
        assert loaded.get_neighbor_ids(3, 0) == [1]
        loaded.freeze_logstore()
        assert loaded.get_neighbor_ids(3, 0) == [1]

    def test_footprints_comparable(self, tmp_path):
        store = build_store()
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        original = store.storage_footprint_bytes()
        reloaded = loaded.storage_footprint_bytes()
        assert abs(original - reloaded) < 0.05 * original

    def test_unsupported_version_rejected(self, tmp_path):
        import json
        import os

        store = build_store()
        root = str(tmp_path / "db")
        save_store(store, root)
        with open(os.path.join(root, "manifest.json")) as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(os.path.join(root, "manifest.json"), "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError):
            load_store(root)

    def test_save_load_save_stable(self, tmp_path):
        store = build_store()
        save_store(store, str(tmp_path / "a"))
        first = load_store(str(tmp_path / "a"))
        save_store(first, str(tmp_path / "b"))
        second = load_store(str(tmp_path / "b"))
        assert second.get_node_property(1) == store.get_node_property(1)
        assert second.get_neighbor_ids(1, 0) == store.get_neighbor_ids(1, 0)


class TestPropertyRoundTrip:
    def test_random_update_streams_roundtrip(self):
        """Persistence after an arbitrary update stream preserves every
        query answer (a deterministic mini-fuzz over seeds)."""
        import numpy as np

        from repro.core.persistence import load_store, save_store
        import tempfile

        for seed in range(4):
            rng = np.random.default_rng(seed)
            store = build_store()
            for _ in range(25):
                op = rng.integers(0, 5)
                node = int(rng.integers(0, 4))
                other = int(rng.integers(0, 4))
                if op == 0:
                    store.append_edge(node, 0, other, timestamp=int(rng.integers(0, 9999)))
                elif op == 1:
                    store.append_node(int(rng.integers(20, 30)), {"name": f"x{seed}"})
                elif op == 2:
                    store.delete_edge(node, 0, other)
                elif op == 3:
                    store.update_node(node, {"name": f"v{seed}", "city": "Ithaca"})
                else:
                    store.freeze_logstore()
            with tempfile.TemporaryDirectory() as root:
                save_store(store, root)
                loaded = load_store(root)
            for node in range(4):
                if store.has_node(node):
                    assert loaded.get_node_property(node) == store.get_node_property(node)
                else:
                    assert not loaded.has_node(node)
                left = store.get_edge_record(node, 0)
                right = loaded.get_edge_record(node, 0)
                assert right.edge_count == left.edge_count
                assert right.destinations() == left.destinations()
            assert loaded.get_node_ids({"city": "Ithaca"}) == store.get_node_ids(
                {"city": "Ithaca"}
            )

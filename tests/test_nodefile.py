"""Unit tests for the NodeFile layout (§3.3, Figure 1)."""

import pytest

from repro.core.delimiters import DelimiterMap
from repro.core.errors import NodeNotFound
from repro.core.nodefile import NodeFile


@pytest.fixture
def nodes():
    # The example of Figure 1.
    return {
        0: {"nickname": "Ally", "age": "42", "location": "Ithaca"},
        1: {"nickname": "Bobby", "location": "Princeton"},
        2: {"age": "24", "nickname": "Cat"},
    }


@pytest.fixture
def dmap(nodes):
    ids = set()
    for properties in nodes.values():
        ids.update(properties)
    return DelimiterMap(ids)


@pytest.fixture
def node_file(nodes, dmap):
    return NodeFile(nodes, dmap, alpha=4)


class TestGetProperty:
    def test_every_property(self, node_file, nodes):
        for node_id, properties in nodes.items():
            for property_id, value in properties.items():
                assert node_file.get_property(node_id, property_id) == value

    def test_absent_property_is_none(self, node_file):
        assert node_file.get_property(1, "age") is None

    def test_missing_node_raises(self, node_file):
        with pytest.raises(NodeNotFound):
            node_file.get_property(99, "age")

    def test_get_all_properties(self, node_file, nodes):
        for node_id, properties in nodes.items():
            assert node_file.get_properties(node_id) == properties

    def test_get_subset(self, node_file):
        assert node_file.get_properties(0, ["age", "nickname"]) == {
            "age": "42",
            "nickname": "Ally",
        }

    def test_subset_with_absent(self, node_file):
        assert node_file.get_properties(1, ["age", "nickname"]) == {"nickname": "Bobby"}


class TestFindNodes:
    def test_exact_value(self, node_file):
        assert node_file.find_nodes({"nickname": "Ally"}) == [0]
        assert node_file.find_nodes({"location": "Ithaca"}) == [0]

    def test_no_match(self, node_file):
        assert node_file.find_nodes({"location": "Chicago"}) == []

    def test_value_prefix_does_not_match(self, node_file):
        # Exact-value semantics: "Itha" must not match "Ithaca".
        assert node_file.find_nodes({"location": "Itha"}) == []

    def test_value_never_matches_other_property(self, node_file):
        assert node_file.find_nodes({"nickname": "Ithaca"}) == []

    def test_conjunction(self, node_file):
        assert node_file.find_nodes({"age": "42", "location": "Ithaca"}) == [0]
        assert node_file.find_nodes({"age": "24", "location": "Ithaca"}) == []

    def test_empty_matches_all(self, node_file):
        assert node_file.find_nodes({}) == [0, 1, 2]

    def test_shared_values(self, dmap):
        node_file = NodeFile(
            {5: {"location": "Ithaca"}, 9: {"location": "Ithaca"}}, dmap, alpha=2
        )
        assert node_file.find_nodes({"location": "Ithaca"}) == [5, 9]

    def test_last_property_bracketed_by_end_of_record(self, node_file):
        # nickname is lexicographically last -> bracketed by EOR delimiter.
        assert node_file.find_nodes({"nickname": "Cat"}) == [2]


class TestDirectory:
    def test_contains(self, node_file):
        assert 0 in node_file and 2 in node_file
        assert 7 not in node_file

    def test_len_and_ids(self, node_file):
        assert len(node_file) == 3
        assert node_file.node_ids().tolist() == [0, 1, 2]

    def test_node_index(self, node_file):
        assert node_file.node_index(1) == 1
        with pytest.raises(NodeNotFound):
            node_file.node_index(42)

    def test_empty_nodefile(self, dmap):
        node_file = NodeFile({}, dmap)
        assert len(node_file) == 0
        assert node_file.find_nodes({"age": "42"}) == []

    def test_sizes(self, node_file):
        assert node_file.original_size_bytes() > 0
        assert node_file.serialized_size_bytes() > 0


class TestWideLengths:
    def test_long_values_need_wider_length_fields(self, dmap):
        nodes = {1: {"location": "x" * 150, "age": "9"}}
        node_file = NodeFile(nodes, dmap, alpha=4)
        assert node_file.get_property(1, "location") == "x" * 150
        assert node_file.get_property(1, "age") == "9"

    def test_sparse_big_map(self):
        # Two-byte delimiter regime with 30 properties.
        dmap = DelimiterMap([f"p{i:03d}" for i in range(30)])
        nodes = {4: {"p001": "alpha", "p029": "omega"}}
        node_file = NodeFile(nodes, dmap, alpha=4)
        assert node_file.get_property(4, "p001") == "alpha"
        assert node_file.get_property(4, "p029") == "omega"
        assert node_file.get_property(4, "p015") is None
        assert node_file.find_nodes({"p029": "omega"}) == [4]

"""Tests for replication (fault tolerance) and function shipping."""

import pytest

from repro.cluster import (
    FunctionShippingAggregator,
    ReplicatedZipGCluster,
    ShardUnavailable,
    ZipGCluster,
)
from repro.core import ZipG
from repro.workloads.graphs import social_graph


def build_store(num_shards=8):
    graph = social_graph(60, avg_degree=5, seed=4, property_scale=0.1)
    return ZipG.compress(
        graph, num_shards=num_shards, alpha=8,
        extra_property_ids=["city", "interest"]
        + [f"attr{i:02d}" for i in range(38)] + ["payload"],
    ), graph


class TestReplicationPlacement:
    def test_replica_servers_consecutive(self):
        store, _ = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=4, replication_factor=2)
        assert cluster.replica_servers(0) == [0, 1]
        assert cluster.replica_servers(3) == [3, 0]
        assert cluster.replica_servers(5) == [1, 2]

    def test_invalid_replication_factor(self):
        store, _ = build_store()
        with pytest.raises(ValueError):
            ReplicatedZipGCluster(store, num_servers=4, replication_factor=5)
        with pytest.raises(ValueError):
            ReplicatedZipGCluster(store, num_servers=4, replication_factor=0)

    def test_reads_rotate_across_replicas(self):
        store, _ = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=4, replication_factor=2)
        chosen = {cluster.server_of_shard(0) for _ in range(6)}
        assert chosen == {0, 1}  # round robin over both replicas

    def test_replicated_footprint_scales(self):
        store, _ = build_store()
        single = ReplicatedZipGCluster(store, 4, replication_factor=1)
        double = ReplicatedZipGCluster(store, 4, replication_factor=2)
        assert double.storage_footprint_bytes() == 2 * single.storage_footprint_bytes()


class TestFailover:
    def test_queries_survive_single_failure(self):
        store, graph = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=4, replication_factor=2)
        cluster.fail_server(1)
        assert cluster.is_available()
        node = graph.node_ids()[0]
        # Reads still resolve and never route to the dead server.
        for _ in range(8):
            for shard in store.shards:
                assert cluster.server_of_shard(shard.shard_id) != 1
        assert cluster.get_node_property(node) == graph.node_properties(node)

    def test_unavailable_when_all_replicas_down(self):
        store, _ = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=4, replication_factor=2)
        cluster.fail_server(0)
        cluster.fail_server(1)
        assert not cluster.is_available()  # shard 0's replicas are 0 and 1
        with pytest.raises(ShardUnavailable):
            cluster.server_of_shard(0)

    def test_recovery_restores_routing(self):
        store, _ = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=4, replication_factor=2)
        cluster.fail_server(0)
        cluster.fail_server(1)
        cluster.recover_server(0)
        assert cluster.is_available()
        assert cluster.server_of_shard(0) == 0

    def test_fail_invalid_server(self):
        store, _ = build_store()
        cluster = ReplicatedZipGCluster(store, num_servers=4, replication_factor=2)
        with pytest.raises(IndexError):
            cluster.fail_server(9)


class TestFunctionShipping:
    @pytest.fixture(scope="class")
    def setting(self):
        store, graph = build_store()
        cluster = ZipGCluster(store, num_servers=4)
        return cluster, graph, FunctionShippingAggregator(cluster)

    def test_result_matches_direct_execution(self, setting):
        cluster, graph, aggregator = setting
        node = graph.node_ids()[2]
        expected = cluster.get_neighbor_ids(node, 0, {"city": "Ithaca"})
        result, _ = aggregator.neighbor_filter_query(node, 0, {"city": "Ithaca"})
        assert result == expected

    def test_trace_structure(self, setting):
        cluster, graph, aggregator = setting
        node = next(n for n in graph.node_ids() if graph.degree(n, 0) > 0)
        result, trace = aggregator.neighbor_filter_query(node, 0, {"city": "Ithaca"})
        assert len(trace.levels) == 2  # edge fetch + property probes
        assert trace.round_trips == 3  # client -> entry + two fan-outs
        assert trace.levels[0].messages >= 1
        assert trace.total_messages >= 3

    def test_unfiltered_query_single_level(self, setting):
        cluster, graph, aggregator = setting
        node = graph.node_ids()[1]
        result, trace = aggregator.neighbor_filter_query(node, 0)
        assert result == cluster.get_neighbor_ids(node, 0)
        assert len(trace.levels) == 1

    def test_probes_grouped_per_server(self, setting):
        cluster, graph, aggregator = setting
        node = max(graph.node_ids(), key=lambda n: graph.degree(n, 0))
        _, trace = aggregator.neighbor_filter_query(node, 0, {"city": "Ithaca"})
        probe_level = trace.levels[1]
        # One message per server, even with many neighbors there.
        assert probe_level.messages <= cluster.num_servers
        assert probe_level.messages <= len(set(probe_level.target_servers))

    def test_two_hop_multi_level(self, setting):
        cluster, graph, aggregator = setting
        node = max(graph.node_ids(), key=lambda n: graph.degree(n, 0))
        result, trace = aggregator.two_hop_query(node, 0, {"city": "Ithaca"})
        # Oracle: friends-of-friends with the property filter.
        friends = graph.neighbor_ids(node, 0)
        second = sorted({
            d for f in friends for d in graph.neighbor_ids(f, 0)
        } - {node})
        expected = [
            n for n in second if graph.node_properties(n).get("city") == "Ithaca"
        ]
        assert result == expected
        assert len(trace.levels) == 3  # Figure 4's multi-level shipping
        assert trace.round_trips == 4


class TestDistributedRPQ:
    def test_rpq_on_cluster_matches_single_store(self):
        from repro.workloads.rpq import PathQuery, RPQEngine

        store, graph = build_store()
        cluster = ZipGCluster(store, num_servers=4)
        seeds = graph.node_ids()[:10]
        query = PathQuery("q", "0/1")
        cluster_result = RPQEngine(cluster, graph.node_ids()).evaluate(
            query, start_nodes=seeds
        )
        # Fresh single store over the same graph.
        from repro.bench.systems import ZipGSystem

        single = ZipGSystem.load(graph, num_shards=8, alpha=8,
                                 extra_property_ids=["city", "interest"]
                                 + [f"attr{i:02d}" for i in range(38)] + ["payload"])
        single_result = RPQEngine(single, graph.node_ids()).evaluate(
            query, start_nodes=seeds
        )
        assert cluster_result == single_result

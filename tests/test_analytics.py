"""Tests for the analytics helpers over the serving store."""

import pytest

from repro.bench.systems import build_system
from repro.core import GraphData
from repro.workloads.analytics import (
    count_triangles,
    out_degree_distribution,
    pagerank,
    weakly_connected_components,
)


def two_components_graph():
    graph = GraphData()
    for node in range(7):
        graph.add_node(node, {"tag": str(node)})
    # Component A: triangle 0-1-2 plus a tail to 3.
    graph.add_edge(0, 1, 0, 1)
    graph.add_edge(1, 2, 0, 2)
    graph.add_edge(2, 0, 0, 3)
    graph.add_edge(2, 3, 0, 4)
    # Component B: 4 -> 5 (6 isolated).
    graph.add_edge(4, 5, 0, 5)
    return graph


@pytest.fixture(params=["zipg", "titan"])
def setting(request):
    graph = two_components_graph()
    system = build_system(request.param, graph, num_shards=2, alpha=4,
                          extra_property_ids=["tag"])
    return system, graph


class TestDegreeDistribution:
    def test_histogram(self, setting):
        system, graph = setting
        histogram = out_degree_distribution(system, graph.node_ids())
        assert histogram == {1: 3, 2: 1, 0: 3}  # 0,1,4 deg1; 2 deg2; 3,5,6 deg0


class TestPageRank:
    def test_ranks_sum_to_one(self, setting):
        system, graph = setting
        ranks = pagerank(system, graph.node_ids())
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_cycle_members_outrank_isolated(self, setting):
        system, graph = setting
        ranks = pagerank(system, graph.node_ids())
        assert ranks[0] > ranks[6]
        assert ranks[2] > ranks[6]

    def test_sink_receives_rank(self, setting):
        system, graph = setting
        ranks = pagerank(system, graph.node_ids())
        assert ranks[3] > ranks[6]  # 3 is fed by 2

    def test_empty(self, setting):
        system, _ = setting
        assert pagerank(system, []) == {}

    def test_bad_damping(self, setting):
        system, graph = setting
        with pytest.raises(ValueError):
            pagerank(system, graph.node_ids(), damping=1.5)

    def test_matches_networkx(self, setting):
        networkx = pytest.importorskip("networkx")
        system, graph = setting
        digraph = networkx.DiGraph()
        digraph.add_nodes_from(graph.node_ids())
        for edge in graph.all_edges():
            digraph.add_edge(edge.source, edge.destination)
        expected = networkx.pagerank(digraph, alpha=0.85)
        got = pagerank(system, graph.node_ids(), iterations=100)
        for node in graph.node_ids():
            assert got[node] == pytest.approx(expected[node], abs=5e-3)


class TestComponents:
    def test_component_structure(self, setting):
        system, graph = setting
        components = weakly_connected_components(system, graph.node_ids())
        assert components == [[0, 1, 2, 3], [4, 5], [6]]

    def test_triangles(self, setting):
        system, graph = setting
        assert count_triangles(system, graph.node_ids()) == 1

"""Unit tests for BFS traversal and the distributed cluster simulation."""

import pytest

from repro.bench.memory_model import CostModel
from repro.bench.systems import build_system
from repro.cluster import TitanCluster, ZipGCluster, run_distributed_workload
from repro.core import GraphData, ZipG
from repro.workloads import TAOWorkload, bfs_traversal
from repro.workloads.graphs import social_graph
from repro.workloads.traversal import sample_roots


def chain_graph(length=6):
    graph = GraphData()
    for node in range(length):
        graph.add_node(node, {"tag": str(node)})
    for node in range(length - 1):
        graph.add_edge(node, node + 1, 0, node)
    return graph


class TestBFS:
    @pytest.fixture(params=["zipg", "neo4j-tuned", "titan"])
    def system(self, request):
        return build_system(
            request.param, chain_graph(), num_shards=2, alpha=4,
            extra_property_ids=["tag"],
        )

    def test_depth_bounds(self, system):
        assert bfs_traversal(system, 0, max_depth=0) == [0]
        assert bfs_traversal(system, 0, max_depth=2) == [0, 1, 2]
        assert bfs_traversal(system, 0, max_depth=10) == [0, 1, 2, 3, 4, 5]

    def test_negative_depth_rejected(self, system):
        with pytest.raises(ValueError):
            bfs_traversal(system, 0, max_depth=-1)

    def test_cycle_terminates(self):
        graph = chain_graph(3)
        graph.add_edge(2, 0, 0, 99)
        system = build_system("zipg", graph, num_shards=2, alpha=4)
        assert bfs_traversal(system, 0, max_depth=10) == [0, 1, 2]

    def test_sample_roots(self):
        roots = sample_roots(range(50), count=10, seed=1)
        assert len(roots) == 10
        assert len(set(roots)) == 10
        assert sample_roots(range(5), count=100) == sample_roots(range(5), count=100)


@pytest.fixture(scope="module")
def cluster_graph():
    return social_graph(80, avg_degree=4, seed=11, property_scale=0.1)


@pytest.fixture(scope="module")
def extra_ids():
    return ["city", "interest"] + [f"attr{i:02d}" for i in range(38)] + ["payload"]


class TestZipGCluster:
    def test_shard_placement_round_robin(self, cluster_graph, extra_ids):
        store = ZipG.compress(cluster_graph, num_shards=8, alpha=8,
                              extra_property_ids=extra_ids)
        cluster = ZipGCluster(store, num_servers=4)
        assert cluster.server_of_shard(0) == 0
        assert cluster.server_of_shard(5) == 1

    def test_rejects_zero_servers(self, cluster_graph, extra_ids):
        store = ZipG.compress(cluster_graph, num_shards=2, alpha=8,
                              extra_property_ids=extra_ids)
        with pytest.raises(ValueError):
            ZipGCluster(store, num_servers=0)

    def test_distributed_run_produces_result(self, cluster_graph, extra_ids):
        store = ZipG.compress(cluster_graph, num_shards=8, alpha=8,
                              extra_property_ids=extra_ids)
        cluster = ZipGCluster(store, num_servers=4)
        workload = TAOWorkload(cluster_graph, seed=0)
        result = run_distributed_workload(
            cluster, workload.operations(80), CostModel(),
            budget_total=10 * store.storage_footprint_bytes(),
        )
        assert result.operations == 80
        assert result.throughput_kops > 0
        assert result.load_imbalance >= 1.0
        assert result.throughput_kops <= result.ideal_throughput_kops + 1e-9

    def test_busy_time_lands_on_touched_servers(self, cluster_graph, extra_ids):
        store = ZipG.compress(cluster_graph, num_shards=8, alpha=8,
                              extra_property_ids=extra_ids)
        cluster = ZipGCluster(store, num_servers=4)
        workload = TAOWorkload(cluster_graph, seed=1)
        run_distributed_workload(
            cluster, workload.operations(60), CostModel(),
            budget_total=10 * store.storage_footprint_bytes(),
        )
        assert sum(server.busy_ns for server in cluster.servers) > 0
        assert sum(server.messages for server in cluster.servers) >= 60

    def test_broadcast_query_touches_all_servers(self, cluster_graph, extra_ids):
        store = ZipG.compress(cluster_graph, num_shards=8, alpha=8,
                              extra_property_ids=extra_ids)
        cluster = ZipGCluster(store, num_servers=4)
        from repro.workloads.base import Operation

        operation = Operation("GS3", lambda s: s.get_node_ids({"city": "Ithaca"}))
        cluster.run_operation(operation, CostModel(), budget_total=1 << 30)
        touched = [server for server in cluster.servers if server.messages]
        assert len(touched) == 4  # every server participates in search


class TestTitanCluster:
    def test_distributed_run(self, cluster_graph):
        cluster = TitanCluster(cluster_graph, num_servers=4)
        workload = TAOWorkload(cluster_graph, seed=0)
        result = run_distributed_workload(
            cluster, workload.operations(80), CostModel(),
            budget_total=10 * cluster.storage_footprint_bytes(),
        )
        assert result.operations == 80
        assert result.throughput_kops > 0

    def test_node_routing_deterministic(self, cluster_graph):
        cluster = TitanCluster(cluster_graph, num_servers=4)
        assert cluster.server_of_node(17) == cluster.server_of_node(17)

    def test_rejects_zero_servers(self, cluster_graph):
        with pytest.raises(ValueError):
            TitanCluster(cluster_graph, num_servers=0)

    def test_queries_still_correct(self, cluster_graph):
        cluster = TitanCluster(cluster_graph, num_servers=4)
        baseline = build_system("titan", cluster_graph)
        node = cluster_graph.node_ids()[0]
        assert cluster.get_node_property(node) == baseline.get_node_property(node)

"""repro.obs: metrics registry, spans, fan-out propagation, exporters."""

import json
import re
import threading

import pytest

from repro import obs
from repro.core.executor import ShardExecutor
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.tracing import LAYER_TIME_COUNTER, NULL_SPAN, SPAN_HISTOGRAM


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with pristine global obs state."""
    obs.disable_tracing()
    obs.reset()
    yield
    obs.disable_tracing()
    obs.reset()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_inc_and_reset(self):
        counter = obs.counter("t_requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        obs.reset()
        assert counter.value == 0.0

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"shard": "1"})
        b = registry.counter("x_total", labels={"shard": "1"})
        c = registry.counter("x_total", labels={"shard": "2"})
        assert a is b
        assert a is not c

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(TypeError):
            registry.gauge("dual")

    def test_gauge_set(self):
        gauge = obs.gauge("t_depth")
        gauge.set(17.5)
        assert gauge.value == 17.5

    def test_histogram_percentiles(self):
        histogram = Histogram("t_latency_us")
        for value in (1, 2, 3, 50, 800, 12000):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 6
        assert snapshot["sum"] == pytest.approx(12856.0)
        assert snapshot["p50"] <= snapshot["p95"] <= snapshot["p99"]
        # Percentile estimates are clamped at the observed maximum.
        assert snapshot["p99"] <= snapshot["max"] == 12000
        assert histogram.percentile(0.5) == pytest.approx(5.0)

    def test_histogram_buckets_cumulative(self):
        histogram = Histogram("t_h", buckets=[10, 100])
        for value in (5, 50, 500):
            histogram.observe(value)
        counts = dict(histogram.bucket_counts())
        assert counts[10.0] == 1
        assert counts[100.0] == 2
        assert counts[float("inf")] == 3

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_collector_merges_and_unregisters(self):
        registry = MetricsRegistry()
        alive = {"on": True}

        def collect():
            if not alive["on"]:
                return None
            return {"ext_total": 3.0}

        registry.register_collector(collect)
        registry.register_collector(lambda: {"ext_total": 4.0})
        assert registry.collected_counters()["ext_total"] == 7.0
        alive["on"] = False  # None return drops the collector
        assert registry.collected_counters()["ext_total"] == 4.0
        assert registry.collected_counters()["ext_total"] == 4.0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        assert obs.span("anything", layer="shard") is NULL_SPAN
        assert obs.get_tracer().traces == obs.get_tracer().traces
        with obs.span("noop"):
            pass
        assert len(obs.get_tracer().traces) == 0

    def test_nesting_builds_tree(self):
        obs.enable_tracing()
        with obs.span("root", layer="graph_store") as root:
            with obs.span("child_a", layer="shard"):
                with obs.span("leaf", layer="succinct"):
                    pass
            with obs.span("child_b", layer="logstore"):
                pass
        assert [span.name for span in root.walk()] == [
            "root", "child_a", "leaf", "child_b",
        ]
        traces = obs.get_tracer().traces
        assert len(traces) == 1 and traces[0] is root

    def test_exclusive_time_clamped_and_layered(self):
        obs.enable_tracing()
        with obs.span("root", layer="graph_store") as root:
            with obs.span("inner", layer="succinct"):
                pass
        assert root.duration_ns >= root.children[0].duration_ns
        assert root.exclusive_ns >= 0
        breakdown = obs.get_tracer().layer_breakdown()
        assert breakdown["graph_store"]["spans"] == 1
        assert breakdown["succinct"]["spans"] == 1

    def test_traced_decorator_records_and_marks(self):
        @obs.traced("unit.work", layer="shard")
        def work(x):
            return x * 2

        assert work.__zipg_span__ == "unit.work"
        assert work(3) == 6  # disabled: plain call
        obs.enable_tracing()
        assert work(3) == 6
        assert "unit.work" in obs.get_tracer().span_summary()

    def test_sampling_keeps_expected_fraction(self):
        obs.enable_tracing(sample_rate=0.25)
        for _ in range(40):
            with obs.span("root"):
                with obs.span("child"):
                    pass
        tracer = obs.get_tracer()
        assert len(tracer.traces) == 10
        assert tracer.dropped_traces == 30
        # Unsampled roots silence their descendants entirely.
        summary = tracer.span_summary()
        assert summary["root"]["count"] == 10
        assert summary["child"]["count"] == 10

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            obs.enable_tracing(0.0)
        with pytest.raises(ValueError):
            obs.enable_tracing(1.5)

    def test_span_to_dict_shape(self):
        obs.enable_tracing()
        with obs.span("root", layer="shard", shard=3) as root:
            pass
        payload = root.to_dict()
        assert payload["name"] == "root"
        assert payload["tags"] == {"layer": "shard", "shard": 3}
        assert payload["children"] == []
        assert payload["duration_us"] >= payload["exclusive_us"]


# ----------------------------------------------------------------------
# Thread-pool fan-out propagation
# ----------------------------------------------------------------------


class TestFanOutPropagation:
    def test_children_attach_to_parent_across_threads(self):
        obs.enable_tracing()
        executor = ShardExecutor(max_workers=4)
        seen_threads = set()

        def work(item):
            seen_threads.add(threading.get_ident())
            with obs.span("fan.child", layer="shard", item=item):
                return item * item

        try:
            with obs.span("fan.root", layer="graph_store") as root:
                results = executor.map(work, list(range(8)))
        finally:
            executor.close()

        assert results == [i * i for i in range(8)]
        # The parallel path ran: every item executed off the caller's
        # thread (how many pool threads actually picked work up is
        # scheduler-dependent, so that is deliberately not asserted).
        assert threading.get_ident() not in seen_threads
        names = [span.name for span in root.walk()]
        # Every worker group span and every child landed under the root.
        assert names.count("executor.worker") == 8
        assert names.count("fan.child") == 8
        workers = [s for s in root.children if s.name == "executor.worker"]
        assert len(workers) == 8
        for worker in workers:
            assert [c.name for c in worker.children] == ["fan.child"]
        # One trace total: nothing on the pool threads became a root.
        assert len(obs.get_tracer().traces) == 1

    def test_serial_executor_still_nests(self):
        obs.enable_tracing()
        executor = ShardExecutor(max_workers=1)

        def work(item):
            with obs.span("serial.child", layer="shard"):
                return item

        with obs.span("serial.root") as root:
            executor.map(work, [1, 2, 3])
        assert [c.name for c in root.children] == ["serial.child"] * 3


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def parse_prometheus(text):
    """Tiny exposition-format parser: {metric{labels}: value} + types."""
    types = {}
    samples = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), line
        key, _, raw = line.rpartition(" ")
        samples[key] = float("inf") if raw == "+Inf" else float(raw)
    return types, samples


class TestExporters:
    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("zipg_ops_total", labels={"layer": "shard"}).inc(7)
        registry.gauge("zipg_depth").set(2.5)
        histogram = registry.histogram("zipg_lat_us", buckets=[10, 100])
        histogram.observe(5)
        histogram.observe(50)
        registry.register_collector(lambda: {"zipg_ext_total": 11.0})

        types, samples = parse_prometheus(obs.prometheus_text(registry))
        assert types["zipg_ops_total"] == "counter"
        assert types["zipg_depth"] == "gauge"
        assert types["zipg_lat_us"] == "histogram"
        assert types["zipg_ext_total"] == "counter"
        assert samples['zipg_ops_total{layer="shard"}'] == 7.0
        assert samples["zipg_depth"] == 2.5
        assert samples['zipg_lat_us_bucket{le="10"}'] == 1.0
        assert samples['zipg_lat_us_bucket{le="100"}'] == 2.0
        assert samples['zipg_lat_us_bucket{le="+Inf"}'] == 2.0
        assert samples["zipg_lat_us_sum"] == 55.0
        assert samples["zipg_lat_us_count"] == 2.0
        assert samples["zipg_ext_total"] == 11.0

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", labels={"q": 'a"b\\c'}).inc()
        text = obs.prometheus_text(registry)
        assert 'q="a\\"b\\\\c"' in text

    def test_json_snapshot_includes_tracer_sections(self):
        obs.enable_tracing()
        with obs.span("root", layer="shard"):
            pass
        payload = json.loads(
            obs.json_snapshot(obs.get_registry(), obs.get_tracer())
        )
        assert set(payload) >= {
            "counters", "gauges", "histograms",
            "layers", "spans", "recent_traces",
        }
        assert payload["recent_traces"][0]["name"] == "root"
        assert payload["layers"]["shard"]["spans"] == 1


# ----------------------------------------------------------------------
# Store integration
# ----------------------------------------------------------------------


def tiny_store():
    from repro.core.graph_store import ZipG
    from repro.core.model import GraphData

    graph = GraphData()
    for node_id in range(8):
        graph.add_node(node_id, {"name": f"node{node_id}", "city": "x"})
        graph.add_edge(node_id, (node_id + 1) % 8, 0, timestamp=node_id)
    return ZipG.compress(graph, num_shards=2, alpha=4)


class TestStoreIntegration:
    def test_snapshot_metrics_shape_and_monotonicity(self):
        store = tiny_store()
        obs.enable_tracing()
        before = store.snapshot_metrics()
        assert set(before["layers"]) == {
            "succinct", "logstore", "pointer", "graph_store",
        }
        store.get_neighbor_ids(0)
        store.get_node_ids({"city": "x"})
        after = store.snapshot_metrics()
        assert (after["access"]["random_accesses_total"]
                >= before["access"]["random_accesses_total"])
        assert (after["layers"]["succinct"]["time_us"]
                > before["layers"]["succinct"]["time_us"])
        assert (after["layers"]["succinct"]["ops"]
                >= before["layers"]["succinct"]["ops"])

    def test_store_publishes_access_collectors(self):
        store = tiny_store()
        store.get_neighbor_ids(1)
        collected = obs.get_registry().collected_counters()
        assert collected["zipg_access_random_accesses_total"] > 0
        assert "zipg_pointer_hops_total" in collected

    def test_pointer_chase_counted_after_update(self):
        store = tiny_store()
        store.append_node(99, {"name": "fresh", "city": "y"})
        baseline = store.snapshot_metrics()["layers"]["pointer"]["ops"]
        store.get_node_property(99, "name")
        assert store.snapshot_metrics()["layers"]["pointer"]["ops"] > baseline

    def test_tracing_disabled_adds_no_registry_spans(self):
        store = tiny_store()
        store.get_neighbor_ids(0)
        # Histogram *objects* may linger from other tests (the registry
        # is process-wide and reset() zeroes rather than deletes), but
        # with tracing off nothing may observe into them.
        summary = obs.get_tracer().span_summary()
        assert sum(entry["count"] for entry in summary.values()) == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestStatsCli:
    def test_stats_summary(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["stats", "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert "layer" in out and "succinct" in out
        assert re.search(r"p95 us", out)

    def test_stats_prometheus_parses(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["stats", "--ops", "10", "--format", "prometheus"]) == 0
        types, samples = parse_prometheus(capsys.readouterr().out)
        assert types[SPAN_HISTOGRAM] == "histogram"
        assert types[LAYER_TIME_COUNTER] == "counter"
        assert any(key.startswith("zipg_access_") for key in samples)

    def test_stats_json(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["stats", "--ops", "10", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "layers" in payload and "recent_traces" in payload

"""End-to-end serving: real master / shard-server processes over TCP.

The issue's acceptance test: spawn two ``serve-shard`` processes and a
``serve-master`` via the CLI (separate Python processes, nothing
shared), run a TAO-style operation mix through :class:`ZipGClient`,
SIGKILL one shard server mid-run, and verify the mix keeps answering
through replica failover with answers identical to an in-process store
built from the same graph file -- plus structured ``partial_results``
degradation and clean SIGINT shutdown for the survivors.
"""

import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.bench.systems import ZipGSystem
from repro.cluster import PartialResult
from repro.core import GraphData
from repro.server.client import ZipGClient

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)
NUM_SHARDS = 2
ALPHA = 8


def build_graph() -> GraphData:
    graph = GraphData()
    for i in range(20):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
    for i in range(20):
        graph.add_edge(i, (i + 1) % 20, 0, timestamp=i)
        graph.add_edge(i, (i + 3) % 20, 1, timestamp=100 + i)
    return graph


def write_graph_file(graph: GraphData, path) -> None:
    """Serialize ``graph`` in the CLI's canonical N/E text format."""
    lines = []
    for node_id in sorted(graph.node_ids()):
        properties = graph.node_properties(node_id)
        encoded = ";".join(f"{k}={v}" for k, v in sorted(properties.items()))
        lines.append(f"N {node_id} {encoded}")
    for edge in graph.all_edges():
        lines.append(f"E {edge.source} {edge.destination} "
                     f"{edge.edge_type} {edge.timestamp}")
    path.write_text("\n".join(lines) + "\n")


def spawn(*cli_args: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *cli_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def read_listening(proc: subprocess.Popen, timeout_s: float = 60.0):
    """The ``LISTENING <host> <port>`` line every serve-* prints."""
    result = {}

    def reader():
        result["line"] = proc.stdout.readline()

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout_s)
    line = result.get("line", "")
    if not line.startswith("LISTENING"):
        proc.kill()
        stderr = proc.stderr.read() if proc.stderr else ""
        raise AssertionError(
            f"server did not announce its address: {line!r}\n{stderr}"
        )
    _tag, host, port = line.split()
    return host, int(port)


class Deployment:
    """Two shard-server processes plus a master, torn down robustly."""

    def __init__(self, graph_file):
        self.procs = {}
        shard_flags = ["--file", str(graph_file), "--port", "0",
                       "--shards", str(NUM_SHARDS), "--alpha", str(ALPHA)]
        addresses = {}
        for server_id in (0, 1):
            proc = spawn("serve-shard", "--server-id", str(server_id),
                         *shard_flags)
            self.procs[f"shard{server_id}"] = proc
            addresses[server_id] = read_listening(proc)
        master = spawn(
            "serve-master", "--file", str(graph_file), "--port", "0",
            "--shards", str(NUM_SHARDS), "--alpha", str(ALPHA),
            "--replication", "2", "--retries", "1",
            "--shard", f"0={addresses[0][0]}:{addresses[0][1]}",
            "--shard", f"1={addresses[1][0]}:{addresses[1][1]}",
        )
        self.procs["master"] = master
        self.master_address = read_listening(master)

    def interrupt(self, name: str) -> int:
        """SIGINT one process and reap it (the clean-shutdown path)."""
        proc = self.procs[name]
        proc.send_signal(signal.SIGINT)
        return self.reap(proc)

    @staticmethod
    def reap(proc: subprocess.Popen) -> int:
        try:
            return proc.wait(timeout=15)
        finally:
            for stream in (proc.stdout, proc.stderr):
                if stream:
                    stream.close()

    def close(self):
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
            self.reap(proc)


@pytest.fixture
def deployment(tmp_path):
    graph_file = tmp_path / "graph.txt"
    write_graph_file(build_graph(), graph_file)
    deployment = Deployment(graph_file)
    try:
        yield deployment
    finally:
        deployment.close()


def run_tao_mix(client: ZipGClient, system: ZipGSystem) -> None:
    """A TAO-style read mix, every answer checked against ``system``."""
    for node_id in (0, 3, 7, 12, 19):
        assert client.get_node_property(node_id) == \
            system.get_node_property(node_id)
        assert client.get_neighbor_ids(node_id) == \
            system.get_neighbor_ids(node_id)
        assert client.edge_count(node_id, 0) == system.edge_count(node_id, 0)
        assert client.edges_from_index(node_id, 1, 0, None) == \
            system.edges_from_index(node_id, 1, 0, None)
        assert client.edges_in_time_range(node_id, 1, 100, 200) == \
            system.edges_in_time_range(node_id, 1, 100, 200)
        assert client.assoc_get(node_id, 0, {(node_id + 1) % 20}, 0, 50) == \
            system.assoc_get(node_id, 0, {(node_id + 1) % 20}, 0, 50)
    assert client.get_node_ids({"kind": "x"}) == \
        system.get_node_ids({"kind": "x"})


def test_serving_mix_survives_shard_sigkill(deployment):
    graph = build_graph()
    system = ZipGSystem.load(graph, num_shards=NUM_SHARDS, alpha=ALPHA)
    host, port = deployment.master_address
    with ZipGClient(host, port, timeout_s=30.0) as client:
        assert client.ping()
        topology = client.topology()
        assert topology["num_servers"] == 2
        assert topology["replication_factor"] == 2

        # Phase 1: healthy cluster, full parity with the local store.
        run_tao_mix(client, system)

        # Writes replicate to both shard processes; mirror them onto
        # the local store so parity checks keep holding.
        client.append_node(500, {"name": "added", "kind": "x"})
        client.append_edge(0, 1, 500, timestamp=999)
        system.append_node(500, {"name": "added", "kind": "x"})
        system.append_edge(0, 1, 500, timestamp=999)
        assert client.get_node_property(500) == \
            {"name": "added", "kind": "x"}
        assert 500 in client.get_neighbor_ids(0)

        # Phase 2: kill -9 one shard server mid-run.  Both servers
        # hold full replicas (replication_factor=2), so every read
        # fails over and the mix's answers do not change.
        deployment.procs["shard1"].kill()
        deployment.reap(deployment.procs["shard1"])
        run_tao_mix(client, system)
        assert client.get_node_property(500) == \
            {"name": "added", "kind": "x"}

        # Degraded mode stays structured: with one full replica alive
        # the partial result is still complete.
        partial = client.get_node_ids({"kind": "x"}, partial_results=True)
        assert isinstance(partial, PartialResult)
        assert partial.complete
        assert partial.value == system.get_node_ids({"kind": "x"})

        # A write now fails its apply_write to the dead server, which
        # quarantines it (stale replica must not serve reads).
        client.append_node(501, {"name": "late", "kind": "y"})
        system.append_node(501, {"name": "late", "kind": "y"})
        assert client.down_servers() == [1]
        run_tao_mix(client, system)

    # Survivors shut down cleanly on SIGINT (the supervisor contract).
    assert deployment.interrupt("master") == 0
    assert deployment.interrupt("shard0") == 0


def test_serve_master_rejects_address_gaps(tmp_path):
    from repro.cli import main

    graph_file = tmp_path / "graph.txt"
    write_graph_file(build_graph(), graph_file)
    with pytest.raises(SystemExit, match="missing --shard"):
        main(["serve-master", "--file", str(graph_file),
              "--shard", "2=127.0.0.1:7002"])

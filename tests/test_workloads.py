"""Unit tests for the workload generators (TAO, LinkBench, GraphSearch)."""

import numpy as np
import pytest

from repro.bench.systems import build_system
from repro.workloads import (
    GraphSearchWorkload,
    LINKBENCH_MIX,
    LinkBenchWorkload,
    TAO_MIX,
    TAOWorkload,
)
from repro.workloads.base import WorkloadContext, sample_mix
from repro.workloads.graphs import social_graph
from repro.workloads.properties import LinkBenchPropertyModel, TAOPropertyModel


@pytest.fixture(scope="module")
def graph():
    return social_graph(60, avg_degree=4, seed=3, property_scale=0.1)


@pytest.fixture(scope="module")
def extra_ids():
    rng = np.random.default_rng(0)
    return TAOPropertyModel(rng).property_ids() + ["payload", "data"]


class TestPropertyModels:
    def test_tao_node_properties_have_40_ids(self):
        model = TAOPropertyModel(np.random.default_rng(0))
        properties = model.node_properties()
        assert len(properties) == 40
        assert "city" in properties and "interest" in properties

    def test_tao_sizes_near_target(self):
        model = TAOPropertyModel(np.random.default_rng(0))
        sizes = [
            sum(len(v) for v in model.node_properties().values()) for _ in range(50)
        ]
        average = sum(sizes) / len(sizes)
        assert 400 < average < 900  # ~640 B target

    def test_linkbench_single_property(self):
        model = LinkBenchPropertyModel(np.random.default_rng(0))
        properties = model.node_properties()
        assert list(properties) == ["data"]

    def test_linkbench_median_size(self):
        model = LinkBenchPropertyModel(np.random.default_rng(0))
        sizes = sorted(len(model.node_properties()["data"]) for _ in range(200))
        median = sizes[100]
        assert 90 < median < 170  # around 128

    def test_edge_type_range(self):
        model = TAOPropertyModel(np.random.default_rng(0))
        assert all(0 <= model.edge_type() < 5 for _ in range(50))

    def test_deterministic_with_seed(self):
        a = TAOPropertyModel(np.random.default_rng(9)).node_properties()
        b = TAOPropertyModel(np.random.default_rng(9)).node_properties()
        assert a == b


class TestMixSampling:
    def test_tao_mix_percentages_sum(self):
        assert abs(sum(TAO_MIX.values()) - 100.0) < 1.0
        assert abs(sum(LINKBENCH_MIX.values()) - 100.0) < 1.0

    def test_sample_mix_respects_weights(self):
        rng = np.random.default_rng(0)
        counts = {}
        for _ in range(3000):
            name = sample_mix(rng, TAO_MIX)
            counts[name] = counts.get(name, 0) + 1
        # Dominant queries dominate; rare write queries are rare.
        assert counts["assoc_range"] > counts["assoc_count"]
        assert counts.get("obj_del", 0) < 20

    def test_linkbench_write_heavier_than_tao(self):
        writes = ("assoc_add", "obj_update", "obj_add", "assoc_del", "obj_del", "assoc_update")
        tao_writes = sum(TAO_MIX[w] for w in writes)
        lb_writes = sum(LINKBENCH_MIX[w] for w in writes)
        assert lb_writes > 30 > 1 > tao_writes


class TestWorkloadContext:
    def test_samplers_in_range(self, graph):
        context = WorkloadContext.from_graph(graph, np.random.default_rng(0))
        nodes = set(graph.node_ids())
        for _ in range(50):
            assert context.sample_node() in nodes
        t_low, t_high = context.sample_time_window()
        assert t_low < t_high

    def test_skewed_sampling_prefers_low_ranks(self, graph):
        context = WorkloadContext.from_graph(
            graph, np.random.default_rng(0), node_skew=1.5
        )
        samples = [context.sample_node() for _ in range(500)]
        # zipf-skew: the single hottest node should be very frequent
        top_count = max(samples.count(node) for node in set(samples))
        assert top_count > len(samples) * 0.2

    def test_fresh_ids_monotone(self, graph):
        context = WorkloadContext.from_graph(graph, np.random.default_rng(0))
        first, second = context.fresh_node_id(), context.fresh_node_id()
        assert second == first + 1
        assert first > max(graph.node_ids())


class TestTAOWorkloadExecution:
    def test_all_query_types_run(self, graph, extra_ids):
        system = build_system("zipg", graph, num_shards=2, alpha=8,
                              extra_property_ids=extra_ids)
        workload = TAOWorkload(graph, seed=1)
        for name in TAO_MIX:
            operation = workload.make_operation(name)
            operation.run(system)  # must not raise

    def test_mixed_stream_runs_on_every_system(self, graph, extra_ids):
        for name in ("neo4j-tuned", "titan"):
            system = build_system(name, graph)
            workload = TAOWorkload(graph, seed=2)
            for operation in workload.operations(40):
                operation.run(system)

    def test_unknown_query_rejected(self, graph):
        workload = TAOWorkload(graph)
        with pytest.raises(ValueError):
            list(workload.operations_of("nope", 1))

    def test_deterministic_streams(self, graph):
        names_a = [op.name for op in TAOWorkload(graph, seed=5).operations(60)]
        names_b = [op.name for op in TAOWorkload(graph, seed=5).operations(60)]
        assert names_a == names_b

    def test_linkbench_uses_its_mix(self, graph):
        workload = LinkBenchWorkload(graph, seed=0)
        names = [op.name for op in workload.operations(500)]
        writes = sum(
            1 for n in names
            if n in ("assoc_add", "obj_update", "obj_add", "assoc_del", "obj_del", "assoc_update")
        )
        assert writes > 60  # ~31% of 500


class TestGraphSearchExecution:
    def test_equal_proportions(self, graph):
        workload = GraphSearchWorkload(graph, seed=0)
        names = [op.name for op in workload.operations(25)]
        assert all(names.count(f"GS{i}") == 5 for i in range(1, 6))

    def test_all_queries_run(self, graph, extra_ids):
        system = build_system("zipg", graph, num_shards=2, alpha=8,
                              extra_property_ids=extra_ids)
        workload = GraphSearchWorkload(graph, seed=0)
        for operation in workload.operations(10):
            operation.run(system)

    def test_join_and_nojoin_agree(self, graph, extra_ids):
        system = build_system("zipg", graph, num_shards=2, alpha=8,
                              extra_property_ids=extra_ids)
        plain = GraphSearchWorkload(graph, seed=3, use_joins=False)
        joins = GraphSearchWorkload(graph, seed=3, use_joins=True)
        for name in ("GS2", "GS3"):
            left = plain.make_operation(name).run(system)
            right = joins.make_operation(name).run(system)
            assert sorted(left) == sorted(right)

"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    linkbench_graph,
    social_graph,
    web_graph,
    zipf_node_sampler,
)
from repro.workloads.properties import NUM_EDGE_TYPES, TIMESTAMP_BASE


class TestSocialGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return social_graph(100, avg_degree=6, seed=7, property_scale=0.2)

    def test_node_count(self, graph):
        assert graph.num_nodes == 100

    def test_average_degree_near_target(self, graph):
        assert 3 <= graph.num_edges / graph.num_nodes <= 10

    def test_no_self_loops(self, graph):
        assert all(e.source != e.destination for e in graph.all_edges())

    def test_degree_distribution_skewed(self, graph):
        degrees = sorted((graph.degree(n) for n in graph.node_ids()), reverse=True)
        # power law: the top node far exceeds the median.
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_in_degree_skewed_toward_low_ids(self, graph):
        in_degree = {}
        for edge in graph.all_edges():
            in_degree[edge.destination] = in_degree.get(edge.destination, 0) + 1
        low = sum(in_degree.get(n, 0) for n in range(10))
        high = sum(in_degree.get(n, 0) for n in range(90, 100))
        assert low > high  # celebrities are the low ids

    def test_tao_annotations(self, graph):
        properties = graph.node_properties(0)
        assert "city" in properties and "interest" in properties
        edge = next(graph.all_edges())
        assert 0 <= edge.edge_type < NUM_EDGE_TYPES
        assert edge.timestamp >= TIMESTAMP_BASE
        assert "payload" in edge.properties

    def test_deterministic(self):
        a = social_graph(30, 4, seed=3, property_scale=0.1)
        b = social_graph(30, 4, seed=3, property_scale=0.1)
        assert a.node_properties(5) == b.node_properties(5)
        assert [e.destination for e in a.edges_of(0)] == [
            e.destination for e in b.edges_of(0)
        ]

    def test_unannotated(self):
        graph = social_graph(30, 4, seed=3, annotate=False)
        assert graph.node_properties(0) == {}


class TestOtherGenerators:
    def test_web_graph_denser(self):
        social = social_graph(100, 8, seed=1, annotate=False)
        web = web_graph(100, 12, seed=1, annotate=False)
        assert web.num_edges > social.num_edges

    def test_linkbench_single_property(self):
        graph = linkbench_graph(50, 4, seed=2, property_scale=0.2)
        assert set(graph.node_properties(0)) == {"data"}
        edge = next(graph.all_edges())
        assert set(edge.properties) == {"data"}

    def test_zipf_sampler_skew(self):
        rng = np.random.default_rng(0)
        skewed = zipf_node_sampler(rng, 100, skew=1.5)
        samples = [skewed() for _ in range(500)]
        assert samples.count(0) > 100  # rank-1 dominates
        assert max(samples) < 100

    def test_uniform_sampler(self):
        rng = np.random.default_rng(0)
        uniform = zipf_node_sampler(rng, 100, skew=None)
        samples = [uniform() for _ in range(500)]
        assert samples.count(0) < 30
        assert 0 <= min(samples) and max(samples) < 100

"""Tests for the vectorized Succinct query kernels, the parallel shard
fan-out executor, and the LogStore pointer/size bugfixes.

The kernel tests are property tests: the batched paths must be
byte-identical to the scalar reference paths across sampling rates and
random inputs. The regression tests pin the two confirmed bugs --
dangling ACTIVE_LOGSTORE pointers after physical edge deletes, and the
freeze threshold firing on tombstoned (dead) payload.
"""

import numpy as np
import pytest

from repro.core import GraphData, ShardExecutor, ZipG
from repro.core.logstore import LogStore
from repro.core.pointers import ACTIVE_LOGSTORE, UpdatePointerTable
from repro.succinct import AccessStats, SuccinctFile

ALPHAS = [1, 4, 32]


def random_text(rng, size):
    return bytes(rng.integers(1, 9, size, dtype=np.uint8))


# ----------------------------------------------------------------------
# Kernel parity: batched == scalar, byte for byte
# ----------------------------------------------------------------------


class TestKernelParity:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_decompress_round_trip(self, alpha):
        rng = np.random.default_rng(alpha)
        for _ in range(10):
            text = random_text(rng, int(rng.integers(1, 800)))
            assert SuccinctFile(text, alpha=alpha).decompress() == text

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_extract_matches_scalar(self, alpha):
        rng = np.random.default_rng(100 + alpha)
        text = random_text(rng, 500)
        sf = SuccinctFile(text, alpha=alpha)
        for _ in range(30):
            offset = int(rng.integers(0, len(text) + 1))
            length = int(rng.integers(0, len(text)))
            assert sf.extract(offset, length) == sf.extract_scalar(offset, length)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_extract_batch_matches_scalar(self, alpha):
        rng = np.random.default_rng(200 + alpha)
        text = random_text(rng, 400)
        sf = SuccinctFile(text, alpha=alpha)
        requests = [
            (int(rng.integers(0, len(text))), int(rng.integers(0, 60)))
            for _ in range(12)
        ] + [(0, 0), (len(text), 5)]  # empty + clamped tail
        expected = [sf.extract_scalar(o, n) for o, n in requests]
        assert sf.extract_batch(requests) == expected

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_char_at_batch_matches_scalar(self, alpha):
        rng = np.random.default_rng(300 + alpha)
        text = random_text(rng, 300)
        sf = SuccinctFile(text, alpha=alpha)
        offsets = rng.integers(0, len(text), 50)
        chars = sf.char_at_batch(offsets)
        assert chars.dtype == np.uint8
        assert chars.tolist() == [sf.char_at(int(o)) for o in offsets]

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_search_matches_scalar(self, alpha):
        rng = np.random.default_rng(400 + alpha)
        text = random_text(rng, 600)
        sf = SuccinctFile(text, alpha=alpha)
        for size in (1, 2, 3):  # 1-byte patterns exercise the many-hit path
            for _ in range(8):
                start = int(rng.integers(0, len(text) - size))
                pattern = text[start : start + size]
                batched = sf.search(pattern)
                assert batched.tolist() == sf.search_scalar(pattern).tolist()

    def test_search_miss_and_empty(self):
        sf = SuccinctFile(b"abcabc", alpha=2)
        assert sf.search(b"zzz").tolist() == []
        assert sf.search(b"").tolist() == sf.search_scalar(b"").tolist()

    def test_batched_kernel_counters(self):
        rng = np.random.default_rng(9)
        text = random_text(rng, 2000)
        sf = SuccinctFile(text, alpha=32)
        before = sf.stats.snapshot()
        sf.extract(100, 512)
        delta = sf.stats.delta_since(before)
        assert delta.batch_kernel_calls == 1
        assert delta.npa_batched_hops > 0
        assert delta.npa_batched_hops <= delta.npa_hops
        # A one-byte pattern matches many rows -> batched SA resolution.
        before = sf.stats.snapshot()
        hits = sf.search(text[:1])
        assert len(hits) > 8
        delta = sf.stats.delta_since(before)
        assert delta.batch_kernel_calls == 1
        assert delta.npa_batched_hops == delta.npa_hops

    def test_scalar_residue_counter(self):
        sf = SuccinctFile(b"abcdefgh" * 40, alpha=32)
        sf.stats.reset()
        sf.extract_scalar(3, 64)
        assert sf.stats.npa_batched_hops == 0
        assert sf.stats.scalar_npa_hops == sf.stats.npa_hops > 0


# ----------------------------------------------------------------------
# AccessStats thread-safety helpers
# ----------------------------------------------------------------------


class TestAccessStats:
    def test_add_is_atomic_under_threads(self):
        import threading

        stats = AccessStats()

        def work():
            for _ in range(1000):
                stats.add(npa_hops=2, npa_batched_hops=1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.npa_hops == 8000
        assert stats.npa_batched_hops == 4000
        assert stats.scalar_npa_hops == 4000

    def test_merge_counts_new_fields(self):
        a = AccessStats()
        b = AccessStats(npa_hops=5, npa_batched_hops=3, batch_kernel_calls=2)
        a.merge(b)
        assert a.npa_batched_hops == 3
        assert a.batch_kernel_calls == 2
        assert a.delta_since(AccessStats()).npa_hops == 5


# ----------------------------------------------------------------------
# ShardExecutor
# ----------------------------------------------------------------------


class TestShardExecutor:
    def test_map_preserves_order(self):
        with ShardExecutor(max_workers=4) as executor:
            assert executor.map(lambda x: x * x, range(20)) == [
                x * x for x in range(20)
            ]

    def test_map_serial_when_one_worker(self):
        executor = ShardExecutor(max_workers=1)
        assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert executor._pool is None  # never spawned threads

    def test_map_propagates_exceptions(self):
        def boom(x):
            raise RuntimeError("shard failure")

        with ShardExecutor(max_workers=2) as executor:
            with pytest.raises(RuntimeError, match="shard failure"):
                executor.map(boom, [1, 2])

    def test_shared_stats_items_never_race(self):
        import threading

        shared = AccessStats()
        seen_threads = {}

        class Item:
            def __init__(self, index, stats):
                self.index = index
                self.stats = stats

        def work(item):
            # Unlocked increment: only safe because items sharing a
            # stats object run in one serial task.
            seen_threads.setdefault(id(item.stats), set()).add(
                threading.get_ident()
            )
            item.stats.npa_hops += 1
            return item.index

        items = [Item(i, shared) for i in range(50)]
        with ShardExecutor(max_workers=8) as executor:
            results = executor.map(work, items, stats_of=lambda i: i.stats)
        assert results == list(range(50))
        assert shared.npa_hops == 50
        assert len(seen_threads[id(shared)]) == 1

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ShardExecutor(max_workers=0)

    def test_store_fanout_matches_serial(self):
        graph = GraphData()
        for node_id in range(16):
            graph.add_node(node_id, {"name": f"n{node_id}", "city": "Ithaca"})
            graph.add_edge(node_id, (node_id + 1) % 16, 0, node_id, {"w": "1"})
        serial = ZipG.compress(graph, num_shards=4, alpha=4, max_workers=1)
        parallel = ZipG.compress(graph, num_shards=4, alpha=4, max_workers=4)
        assert serial.get_node_ids({"city": "Ithaca"}) == parallel.get_node_ids(
            {"city": "Ithaca"}
        )
        serial_hits = serial.find_edges("w", "1")
        parallel_hits = parallel.find_edges("w", "1")
        assert [(s, t, d.destination) for s, t, d in serial_hits] == [
            (s, t, d.destination) for s, t, d in parallel_hits
        ]


# ----------------------------------------------------------------------
# Regression: dangling ACTIVE_LOGSTORE pointers (confirmed bug)
# ----------------------------------------------------------------------


def one_node_store():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice"})
    graph.add_node(2, {"name": "Bob"})
    return ZipG.compress(graph, num_shards=1, alpha=4)


class TestDanglingPointerRegression:
    def test_delete_edge_prunes_empty_logstore_bucket(self):
        store = one_node_store()
        store.append_edge(1, 0, 2, timestamp=10)
        assert store._table(1).edge_shards(1, 0) == [ACTIVE_LOGSTORE]
        store.delete_edge(1, 0, 2)  # physically empties the bucket
        assert store._table(1).edge_shards(1, 0) == []
        assert store.node_fragment_count(1) == 1

    def test_fragment_count_one_after_append_delete_freeze(self):
        # The confirmed repro: append edge -> delete edge -> freeze.
        store = one_node_store()
        store.append_edge(1, 0, 2, timestamp=10)
        store.delete_edge(1, 0, 2)
        store.freeze_logstore()
        assert store.node_fragment_count(1) == 1
        # And queries no longer visit a LogStore that holds nothing.
        assert store._edge_locations(1, 0) == [store.shards[store.route(1)]]

    def test_freeze_drops_stale_pointers_left_by_older_stores(self):
        # Simulate the pre-fix state: a stale ACTIVE pointer whose
        # bucket is already gone (e.g. left by an older code path).
        store = one_node_store()
        store._table(1).add_edge_pointer(1, 0, ACTIVE_LOGSTORE)
        store.freeze_logstore()
        assert store._table(1).edge_shards(1, 0) == []
        assert store.node_fragment_count(1) == 1

    def test_freeze_drops_tombstoned_node_pointer(self):
        store = one_node_store()
        store.append_node(3, {"name": "Carol"})
        store.delete_node(3)
        store.freeze_logstore()
        assert store._table(3).node_shards(3) == []
        assert not store.has_node(3)

    def test_partial_delete_keeps_pointer(self):
        store = one_node_store()
        store.append_edge(1, 0, 2, timestamp=10)
        store.append_edge(1, 0, 5, timestamp=20)
        store.delete_edge(1, 0, 2)  # bucket still holds the edge to 5
        assert store._table(1).edge_shards(1, 0) == [ACTIVE_LOGSTORE]
        record = store.get_edge_record(1, 0)
        assert record.destinations() == [5]

    def test_delete_then_reappend_routes_correctly(self):
        store = one_node_store()
        store.append_edge(1, 0, 2, timestamp=10)
        store.delete_edge(1, 0, 2)
        store.append_edge(1, 0, 7, timestamp=30)
        assert store._table(1).edge_shards(1, 0) == [ACTIVE_LOGSTORE]
        store.freeze_logstore()
        assert store.get_edge_record(1, 0).destinations() == [7]
        assert store.node_fragment_count(1) == 2  # home + frozen shard

    def test_pointer_removal_helpers(self):
        table = UpdatePointerTable()
        table.add_node_pointer(1, 3)
        table.add_node_pointer(1, ACTIVE_LOGSTORE)
        table.add_edge_pointer(1, 0, ACTIVE_LOGSTORE)
        table.remove_node_pointer(1, ACTIVE_LOGSTORE)
        assert table.node_shards(1) == [3]
        table.remove_node_pointer(1, 99)  # no-op
        table.drop_active()
        assert table.edge_shards(1, 0) == []
        assert table.fragment_count(1) == 1


# ----------------------------------------------------------------------
# Regression: freeze-threshold accounting under deletes
# ----------------------------------------------------------------------


class TestLogStoreSizeAccounting:
    def test_delete_node_releases_size(self):
        log = LogStore()
        log.append_node(1, {"name": "Alice", "city": "Ithaca"})
        size = log.size_bytes()
        assert size > 0
        log.delete_node(1)
        assert log.size_bytes() == 0
        # Revive: size comes back, exactly once.
        log.append_node(1, {"name": "Alice", "city": "Ithaca"})
        assert log.size_bytes() == size

    def test_double_delete_subtracts_once(self):
        log = LogStore()
        log.append_node(1, {"name": "Alice"})
        log.delete_node(1)
        log.delete_node(1)
        assert log.size_bytes() == 0

    def test_overwrite_live_node_keeps_accounting(self):
        log = LogStore()
        log.append_node(1, {"name": "Alice"})
        log.append_node(1, {"name": "Al"})
        expected = LogStore._node_size(1, {"name": "Al"})
        assert log.size_bytes() == expected

    def test_revive_with_different_properties(self):
        log = LogStore()
        log.append_node(1, {"name": "Alice", "city": "Ithaca"})
        log.delete_node(1)
        log.append_node(1, {"name": "Al"})
        assert log.size_bytes() == LogStore._node_size(1, {"name": "Al"})

    def test_delete_heavy_workload_does_not_trigger_freeze(self):
        graph = GraphData()
        graph.add_node(1, {"name": "Alice"})
        store = ZipG.compress(
            graph, num_shards=1, alpha=4, logstore_threshold_bytes=600
        )
        # Append/delete churn whose *live* payload stays tiny: with dead
        # payload wrongly counted, the threshold fires spuriously.
        for round_index in range(20):
            store.append_node(1000 + round_index, {"blob": "x" * 40})
            store.delete_node(1000 + round_index)
        assert store.freeze_count == 0
        assert store.logstore.size_bytes() == 0

    def test_edge_tombstone_set_removed(self):
        assert not hasattr(LogStore(), "_edge_tombstones")

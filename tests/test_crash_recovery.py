"""Crash-safety: kill the process model at every injected crash point
during save_store and WAL appends; recovery must always yield a
consistent pre- or post-state store."""

import json
import os

import pytest

from conftest import chaos_seeds
from repro import chaos
from repro.chaos import ChaosInjector, FaultRule, SimulatedCrash
from repro.core import GraphData, ZipG
from repro.core.errors import (
    ManifestCorruptError,
    ManifestMissingError,
    SnapshotCorruptError,
    StoreVersionConflictError,
)
from repro.core.persistence import (
    SAVE_CRASH_POINTS,
    attach_wal,
    load_store,
    save_store,
)
from repro.core.wal import (
    CRASH_POINT_POST_FSYNC,
    CRASH_POINT_PRE_FSYNC,
    WalConfig,
    WriteAheadLog,
    read_records,
)


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()


def build_store():
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100, {"w": "5"})
    graph.add_edge(1, 3, 0, 200)
    graph.add_edge(2, 3, 1, 50)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=4096)


def mutate(store):
    """The reference update stream layered on top of build_store()."""
    store.append_node(9, {"name": "Ida", "city": "Ithaca"})
    store.append_edge(1, 0, 9, timestamp=300)
    store.delete_edge(1, 0, 3)
    store.update_node(2, {"name": "Bobby", "city": "Boston"})


def assert_matches(loaded, reference):
    for node in (1, 2, 3, 9):
        if reference.has_node(node):
            assert loaded.get_node_property(node) == \
                reference.get_node_property(node), node
        else:
            assert not loaded.has_node(node)
        left = reference.get_edge_record(node, 0)
        right = loaded.get_edge_record(node, 0)
        assert right.edge_count == left.edge_count, node
        assert right.destinations() == left.destinations(), node
    assert loaded.get_node_ids({"city": "Ithaca"}) == \
        reference.get_node_ids({"city": "Ithaca"})


# ----------------------------------------------------------------------
# The WAL itself
# ----------------------------------------------------------------------


class TestWal:
    def test_records_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        assert wal.append_record("node", [9, {"k": "v"}]) == 1
        assert wal.append_record("del_node", [9]) == 2
        wal.close()
        records, torn = read_records(path)
        assert not torn
        assert [(r.lsn, r.op, r.args) for r in records] == [
            (1, "node", [9, {"k": "v"}]),
            (2, "del_node", [9]),
        ]

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_record("node", [1, {}])
        wal.append_record("node", [2, {}])
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"deadbeef {garbage")  # torn in-flight record
        records, torn = read_records(path)
        assert torn
        assert [r.lsn for r in records] == [1, 2]

    def test_corrupt_middle_record_stops_replay_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        for lsn in range(1, 4):
            wal.append_record("node", [lsn, {}])
        wal.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"00000000 [corrupt]\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        records, torn = read_records(path)
        assert torn and [r.lsn for r in records] == [1]

    def test_rotate_truncates_but_lsns_continue(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_record("node", [1, {}])
        wal.rotate()
        assert os.path.getsize(path) == 0
        assert wal.append_record("node", [2, {}]) == 2

    def test_fsync_policy_validation(self):
        with pytest.raises(ValueError):
            WalConfig(fsync_policy="sometimes")
        with pytest.raises(ValueError):
            WalConfig(batch_size=0)

    @pytest.mark.parametrize("policy,appends,expected", [
        ("always", 3, 3),
        ("batch", 5, 2),   # batch_size=2 -> fsync at records 2 and 4
        ("never", 4, 0),
    ])
    def test_fsync_policies(self, tmp_path, monkeypatch, policy, appends,
                            expected):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd) or
                            real_fsync(fd))
        wal = WriteAheadLog(str(tmp_path / "wal.log"),
                            WalConfig(fsync_policy=policy, batch_size=2))
        for lsn in range(appends):
            wal.append_record("node", [lsn, {}])
        assert len(calls) == expected
        wal.sync()
        if policy != "always" and appends % 2:
            assert len(calls) == expected + 1  # sync() flushes the rest
        wal.close()


# ----------------------------------------------------------------------
# WAL-armed stores
# ----------------------------------------------------------------------


class TestWalRecovery:
    def test_mutations_survive_without_second_save(self, tmp_path):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        mutate(store)
        loaded = load_store(root)
        assert_matches(loaded, store)

    def test_freeze_replayed_at_original_point(self, tmp_path):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        store.append_edge(1, 0, 7, timestamp=400)
        store.freeze_logstore()
        store.append_edge(1, 0, 8, timestamp=500)
        loaded = load_store(root)
        assert loaded.freeze_count == store.freeze_count
        assert loaded.num_shards == store.num_shards
        assert_matches(loaded, store)

    def test_snapshot_rotates_wal_and_skips_replay(self, tmp_path):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        mutate(store)
        save_store(store, root)  # covers the WAL; rotates it
        assert os.path.getsize(os.path.join(root, "wal.log")) == 0
        loaded = load_store(root)
        assert_matches(loaded, store)

    def test_no_double_apply_when_crash_before_rotate(self, tmp_path):
        """Crash after manifest commit but before WAL rotation: the
        un-rotated records are <= the manifest cutoff and must not be
        re-applied on load."""
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        store.append_edge(1, 0, 9, timestamp=300)
        injector = ChaosInjector(rules=[
            FaultRule(site="save.committed", fault="crash"),
        ])
        with chaos.injected(injector):
            with pytest.raises(SimulatedCrash):
                save_store(store, root)
        assert os.path.getsize(os.path.join(root, "wal.log")) > 0
        loaded = load_store(root)
        record = loaded.get_edge_record(1, 0)
        assert record.destinations() == store.get_edge_record(1, 0).destinations()
        assert record.edge_count == 3  # not 4: LSN cutoff prevented re-apply


# ----------------------------------------------------------------------
# Typed recovery errors
# ----------------------------------------------------------------------


class TestRecoveryErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestMissingError):
            load_store(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(ManifestCorruptError):
            load_store(str(tmp_path))

    def test_corrupt_snapshot_file(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        victim = next(n for n in os.listdir(root) if n.startswith("shard-0"))
        path = os.path.join(root, victim)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(SnapshotCorruptError):
            load_store(root)

    def test_truncated_snapshot_file(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        victim = next(n for n in os.listdir(root) if n.startswith("logstore"))
        path = os.path.join(root, victim)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(SnapshotCorruptError):
            load_store(root)

    def test_save_refuses_newer_manifest(self, tmp_path):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        with open(os.path.join(root, "manifest.json")) as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(os.path.join(root, "manifest.json"), "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreVersionConflictError):
            save_store(store, root)


# ----------------------------------------------------------------------
# Kill at every crash point: the acceptance loop
# ----------------------------------------------------------------------


WAL_CRASH_POINTS = (CRASH_POINT_PRE_FSYNC, CRASH_POINT_POST_FSYNC)


class TestCrashAtEveryPoint:
    @pytest.mark.parametrize("point", SAVE_CRASH_POINTS)
    def test_save_crash_recovers_full_state(self, tmp_path, point):
        """With a WAL attached, every mutation is durable before it is
        applied -- so whichever save step the crash hits, recovery
        yields the complete mutated state (from the new snapshot if the
        commit landed, from the old snapshot + WAL replay if not)."""
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        mutate(store)
        injector = ChaosInjector(rules=[
            FaultRule(site=point, fault="crash", times=1),
        ])
        with chaos.injected(injector):
            with pytest.raises(SimulatedCrash):
                save_store(store, root)
        assert injector.injection_log == [(point, "crash")]
        assert_matches(load_store(root), store)

    def test_crash_at_each_data_file_write(self, tmp_path):
        """save.file fires once per data file; kill at each occurrence."""
        probe_root = str(tmp_path / "probe")
        probe = build_store()
        save_store(probe, probe_root)
        file_count = sum(
            1 for n in os.listdir(probe_root) if n != "manifest.json"
        )
        assert file_count >= 3  # shards + logstore + pointers
        for position in range(file_count):
            root = str(tmp_path / f"db{position}")
            store = build_store()
            save_store(store, root)
            attach_wal(store, root)
            mutate(store)
            injector = ChaosInjector(rules=[
                FaultRule(site="save.file", fault="crash",
                          after=position, times=1),
            ])
            with chaos.injected(injector):
                with pytest.raises(SimulatedCrash):
                    save_store(store, root)
            assert_matches(load_store(root), store)

    def test_torn_snapshot_write_recovers_previous(self, tmp_path):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        mutate(store)
        injector = ChaosInjector(seed=5, rules=[
            FaultRule(site=chaos.SITE_SAVE_WRITE, fault="torn_write"),
        ])
        with chaos.injected(injector):
            with pytest.raises(SimulatedCrash):
                save_store(store, root)
        assert_matches(load_store(root), store)

    @pytest.mark.parametrize("point", WAL_CRASH_POINTS)
    def test_wal_append_crash_pre_or_post_state(self, tmp_path, point):
        """Kill between WAL append and fsync (and right after): the
        recovered store holds either the pre-append or post-append
        state, never anything else."""
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        before = store.get_edge_record(1, 0).edge_count
        injector = ChaosInjector(rules=[
            FaultRule(site=point, fault="crash", times=1),
        ])
        with chaos.injected(injector):
            with pytest.raises(SimulatedCrash):
                store.append_edge(1, 0, 9, timestamp=300)
        loaded = load_store(root)
        count = loaded.get_edge_record(1, 0).edge_count
        assert count in (before, before + 1)
        if count == before + 1:
            assert 9 in loaded.get_edge_record(1, 0).destinations()

    def test_torn_wal_write_recovers_pre_state(self, tmp_path):
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        store.append_edge(1, 0, 7, timestamp=250)  # durable record
        injector = ChaosInjector(seed=3, rules=[
            FaultRule(site=chaos.SITE_WAL_WRITE, fault="torn_write",
                      keep_bytes=10),
        ])
        with chaos.injected(injector):
            with pytest.raises(SimulatedCrash):
                store.append_edge(1, 0, 9, timestamp=300)
        loaded = load_store(root)
        destinations = loaded.get_edge_record(1, 0).destinations()
        assert 7 in destinations and 9 not in destinations

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_acceptance_all_points_all_seeds(self, tmp_path, seed):
        """The issue's acceptance gate: for each seed, crash at every
        save crash point and every WAL fsync boundary; load_store must
        recover a consistent store in 100% of runs."""
        points = list(SAVE_CRASH_POINTS) + list(WAL_CRASH_POINTS)
        for index, point in enumerate(points):
            root = str(tmp_path / f"run{index}")
            store = build_store()
            save_store(store, root)
            attach_wal(store, root)
            store.append_node(20 + index, {"name": f"s{seed}"})
            injector = ChaosInjector(seed=seed, rules=[
                FaultRule(site=point, fault="crash", times=1),
            ])
            with chaos.injected(injector):
                try:
                    store.append_edge(1, 0, 9, timestamp=300)
                    save_store(store, root)
                    crashed = False
                except SimulatedCrash:
                    crashed = True
            assert crashed, point
            loaded = load_store(root)  # recovery must never raise
            # Consistency: the recovered state answers queries and is
            # either pre- or post- the in-flight mutation.
            assert loaded.get_node_property(20 + index)["name"] == f"s{seed}"
            count = loaded.get_edge_record(1, 0).edge_count
            assert count in (3, 4), (point, count)

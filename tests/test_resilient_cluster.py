"""Replica failover, degraded queries, and cluster thread-safety.

With ``ZIPG_TRANSPORT=socket`` in the environment, every cluster these
tests build dispatches per-server operations over real loopback RPC
(a :class:`repro.server.loopback.LoopbackCluster` sharing the store)
instead of the in-process transport -- same assertions, full framed
wire path.
"""

import threading

import pytest

from conftest import socket_transport_enabled
from repro import chaos, obs
from repro.chaos import ChaosInjector, FaultRule
from repro.cluster import PartialResult, ReplicatedZipGCluster, ShardUnavailable
from repro.cluster.replication import LOGSTORE_UNIT
from repro.core import GraphData, ReplicaCallError, ZipG

#: Loopback harnesses opened by build_cluster under ZIPG_TRANSPORT=
#: socket; torn down after each test.
_loopbacks = []


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()
    while _loopbacks:
        _loopbacks.pop().close()


def build_cluster(num_servers=4, replication_factor=2, **kwargs):
    graph = GraphData()
    for i in range(24):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
        graph.add_edge(i, (i + 1) % 24, 0, timestamp=i,
                       properties={"w": str(i % 3)})
    store = ZipG.compress(graph, num_shards=4, alpha=8,
                          logstore_threshold_bytes=1 << 20)
    cluster = ReplicatedZipGCluster(store, num_servers=num_servers,
                                    replication_factor=replication_factor,
                                    **kwargs)
    if socket_transport_enabled():
        from repro.server.loopback import LoopbackCluster

        loopback = LoopbackCluster(store, num_servers)
        _loopbacks.append(loopback)
        cluster.transport = loopback.transport
    return cluster, store


class TestFailover:
    def test_one_replica_failed_per_shard_still_succeeds(self):
        """The issue's acceptance gate: with one replica of every shard
        erroring, queries succeed via failover with zero exceptions
        raised to the caller."""
        cluster, store = build_cluster()
        expected_nodes = store.get_node_ids({"kind": "x"})
        expected_edges = store.find_edges("w", "1")
        failovers = obs.counter("zipg_replica_failovers_total")
        before = failovers.value
        for shard in store.shards:
            primary = cluster.replica_servers(shard.shard_id)[0]
            injector = ChaosInjector(seed=shard.shard_id, rules=[
                FaultRule(site=chaos.SITE_REPLICA_CALL,
                          match={"shard": shard.shard_id, "server": primary}),
            ])
            with chaos.injected(injector):
                assert cluster.get_node_ids({"kind": "x"}) == expected_nodes
                assert cluster.find_edges("w", "1") == expected_edges
        assert failovers.value > before

    def test_failed_server_routes_around(self):
        cluster, store = build_cluster()
        expected = store.get_node_ids({"kind": "x"})
        cluster.fail_server(1)
        assert cluster.get_node_ids({"kind": "x"}) == expected
        for shard in store.shards:
            assert 1 not in cluster.live_replicas(shard.shard_id) or \
                1 not in cluster.down_servers

    def test_replica_call_error_carries_attempts(self):
        cluster, _ = build_cluster()
        injector = ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_REPLICA_CALL, match={"shard": 1}),
        ])
        with chaos.injected(injector):
            with pytest.raises(ReplicaCallError) as info:
                cluster.call_on_shard(1, lambda server: server)
        error = info.value
        assert error.shard_id == 1
        assert len(error.attempts) == cluster.replication_factor
        assert {s for s, _ in error.attempts} == \
            set(cluster.replica_servers(1))

    def test_call_on_shard_rotates_over_live_replicas(self):
        cluster, _ = build_cluster()
        served = [cluster.call_on_shard(0, lambda server: server)
                  for _ in range(4)]
        assert set(served) == set(cluster.replica_servers(0))

    def test_get_node_property_fails_over(self):
        cluster, store = build_cluster()
        shard_id = store.route(3)
        primary = cluster.replica_servers(shard_id)[0]
        injector = ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_REPLICA_CALL,
                      match={"shard": shard_id, "server": primary}),
        ])
        with chaos.injected(injector):
            assert cluster.get_node_property(3, "name") == {"name": "n3"}


class TestPartialResults:
    def fail_shard(self, cluster, shard_id):
        for server in cluster.replica_servers(shard_id):
            cluster.fail_server(server)

    def test_all_replicas_down_surfaces_structured_error(self):
        """Second acceptance gate: a shard with every replica down
        surfaces a structured per-shard error in partial mode instead
        of raising."""
        cluster, store = build_cluster()
        full = store.get_node_ids({"kind": "x"})
        self.fail_shard(cluster, 2)
        result = cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert isinstance(result, PartialResult)
        assert not result.complete
        assert result.attempted == store.num_shards + 1
        assert [e.shard_id for e in result.errors] == [2]
        assert isinstance(result.errors[0].error, ShardUnavailable)
        assert set(result.value) <= set(full)

    def test_partial_false_raises(self):
        cluster, _ = build_cluster()
        self.fail_shard(cluster, 2)
        with pytest.raises(ShardUnavailable):
            cluster.get_node_ids({"kind": "x"})

    def test_partial_find_edges_drops_only_failed_shard(self):
        cluster, store = build_cluster()
        full = store.find_edges("w", "1")
        self.fail_shard(cluster, 1)
        result = cluster.find_edges("w", "1", partial_results=True)
        assert [e.shard_id for e in result.errors] == [1]
        # Surviving hits are a subset of the full answer, still in the
        # find_edges sort order (EdgeData is unhashable; compare by eq).
        assert result.value == [hit for hit in full if hit in result.value]
        assert len(result.value) < len(full)

    def test_injected_errors_yield_replica_call_errors(self):
        cluster, _ = build_cluster()
        injector = ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_REPLICA_CALL, match={"shard": 0}),
        ])
        with chaos.injected(injector):
            result = cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert [e.shard_id for e in result.errors] == [0]
        error = result.errors[0]
        assert isinstance(error.error, ReplicaCallError)
        assert error.servers_tried == [s for s, _ in error.error.attempts]

    def test_logstore_server_down_is_a_structured_unit(self):
        cluster, store = build_cluster()
        store.append_node(99, {"name": "late", "kind": "x"})
        cluster.fail_server(cluster.logstore_server)
        # Server 0 also hosts shard replicas; shard 0's other replica
        # keeps it alive, but the unreplicated logstore unit fails.
        result = cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert LOGSTORE_UNIT in [e.shard_id for e in result.errors]
        assert 99 not in result.value

    def test_complete_partial_result_when_healthy(self):
        cluster, store = build_cluster()
        result = cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert result.complete and result.errors == []
        assert result.value == store.get_node_ids({"kind": "x"})


class TestThreadSafety:
    def test_rotation_and_failures_hammered_concurrently(self):
        """fail/recover racing routed reads must never corrupt the
        rotation or down-set state (satellite: the _state_lock)."""
        cluster, store = build_cluster(num_servers=4, replication_factor=3)
        errors = []
        stop = threading.Event()

        def flapper():
            while not stop.is_set():
                for server in (1, 2):
                    cluster.fail_server(server)
                    cluster.recover_server(server)

        def reader():
            try:
                for _ in range(300):
                    cluster.call_on_shard(0, lambda server: server)
                    cluster.server_of_shard(1)
                    cluster.live_replicas(2)
                    cluster.down_servers
            except ReplicaCallError:
                pass  # a read can lose the race; state must stay sane
            except Exception as exc:  # noqa: BLE001 - fail the test
                errors.append(exc)

        flap = threading.Thread(target=flapper)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        flap.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        flap.join()
        assert errors == []
        cluster.recover_server(1)
        cluster.recover_server(2)
        assert cluster.down_servers == set()
        assert cluster.is_available()

    def test_degraded_query_metric_incremented(self):
        cluster, _ = build_cluster()
        counter = obs.counter("zipg_degraded_queries_total",
                              labels={"query": "get_node_ids"})
        before = counter.value
        for server in cluster.replica_servers(3):
            cluster.fail_server(server)
        cluster.get_node_ids({"kind": "x"}, partial_results=True)
        assert counter.value == before + 1

"""RPC framing edge cases, pipelined connections, and socket chaos.

The framing tests drive :mod:`repro.server.ipc` over socketpairs --
torn frames, oversized prefixes, undecodable payloads.  The pipelining
tests prove response interleaving on one connection, with and without
a real server.  The chaos matrix runs the replicated cluster over the
socket transport with seeded ``rpc.send`` / ``rpc.recv`` fault rules
and asserts every failure stays structured.
"""

import socket
import struct
import threading
import time

import pytest

from conftest import chaos_seeds
from repro import chaos
from repro.chaos import ChaosInjector, FaultRule
from repro.cluster import ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.errors import ShardCallError, TransportError
from repro.server import ipc
from repro.server.loopback import LoopbackCluster
from repro.server.protocol import RpcConnection, make_response, unpack_response
from repro.server.shard_server import ShardServer


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()


def make_store():
    graph = GraphData()
    for i in range(16):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
        graph.add_edge(i, (i + 1) % 16, 0, timestamp=i)
    return ZipG.compress(graph, num_shards=2, alpha=8,
                         logstore_threshold_bytes=1 << 20)


def pair():
    left, right = socket.socketpair()
    return left, right


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        left, right = pair()
        message = {"id": 7, "method": "ping", "args": [1, "a", None]}
        ipc.send_frame(left, message)
        assert ipc.recv_frame(right) == message
        left.close(), right.close()

    def test_clean_close_between_frames(self):
        left, right = pair()
        left.close()
        with pytest.raises(ipc.ConnectionClosed):
            ipc.recv_frame(right)
        right.close()

    def test_torn_header(self):
        left, right = pair()
        left.sendall(b"\x00\x00")  # zipg: ignore[RPC001] - crafting a torn frame
        left.close()
        with pytest.raises(ipc.TornFrame):
            ipc.recv_frame(right)
        right.close()

    def test_torn_payload(self):
        left, right = pair()
        frame = ipc.encode_frame({"id": 1})
        left.sendall(frame[:-2])  # zipg: ignore[RPC001] - crafting a torn frame
        left.close()
        with pytest.raises(ipc.TornFrame):
            ipc.recv_frame(right)
        right.close()

    def test_oversized_prefix_rejected_before_allocation(self):
        left, right = pair()
        huge = struct.pack(">I", ipc.MAX_FRAME_BYTES + 1)
        left.sendall(huge)  # zipg: ignore[RPC001] - crafting a hostile prefix
        with pytest.raises(ipc.FrameTooLarge):
            # The reject happens on the 4 header bytes alone: no payload
            # was ever sent, so a buggy reader would block allocating.
            ipc.recv_frame(right)
        left.close(), right.close()

    def test_oversized_payload_rejected_on_send(self):
        with pytest.raises(ipc.FrameTooLarge):
            ipc.encode_frame({"blob": "x" * (ipc.MAX_FRAME_BYTES + 1)})

    def test_undecodable_payload(self):
        left, right = pair()
        bad = b"\xff\xfe not json"
        left.sendall(  # zipg: ignore[RPC001] - crafting a corrupt frame
            struct.pack(">I", len(bad)) + bad
        )
        with pytest.raises(ipc.FrameError):
            ipc.recv_frame(right)
        left.close(), right.close()

    def test_non_object_payload(self):
        left, right = pair()
        bad = b"[1, 2, 3]"
        left.sendall(  # zipg: ignore[RPC001] - crafting a non-object frame
            struct.pack(">I", len(bad)) + bad
        )
        with pytest.raises(ipc.FrameError):
            ipc.recv_frame(right)
        left.close(), right.close()


# ----------------------------------------------------------------------
# Pipelining / interleaved responses
# ----------------------------------------------------------------------


class TestInterleavedResponses:
    def test_out_of_order_responses_buffered(self):
        """Responses answered in reverse order still resolve by id."""
        client_sock, server_sock = pair()
        connection = RpcConnection(client_sock)

        def responder():
            first = ipc.recv_frame(server_sock)
            second = ipc.recv_frame(server_sock)
            ipc.send_frame(server_sock, make_response(second["id"], "late"))
            ipc.send_frame(server_sock, make_response(first["id"], "early"))

        thread = threading.Thread(target=responder)
        thread.start()
        first_id = connection.send_request("a", [])
        second_id = connection.send_request("b", [])
        assert unpack_response(connection.recv_response(first_id)) == "early"
        assert unpack_response(connection.recv_response(second_id)) == "late"
        thread.join()
        connection.close()
        server_sock.close()

    def test_fast_request_overtakes_slow_one_on_a_real_server(self):
        """A slow operation must not head-of-line-block its connection:
        the server executes requests on a pool, so a later ping's
        response arrives while the slow request is still running."""
        store = make_store()
        injector = ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_RPC_HANDLE, fault="latency",
                      latency_s=0.3, match={"method": "shard_inventory"}),
        ])
        with ShardServer(store, server_id=0, apply_writes=False) as server:
            connection = RpcConnection.connect(*server.address, timeout_s=5.0)
            with chaos.injected(injector):
                slow_id = connection.send_request("shard_inventory", [])
                fast_id = connection.send_request("ping", [])
                begin = time.monotonic()
                assert unpack_response(
                    connection.recv_response(fast_id)
                ) == "pong"
                fast_elapsed = time.monotonic() - begin
                slow = unpack_response(connection.recv_response(slow_id))
            assert fast_elapsed < 0.3  # did not wait for the slow one
            assert len(slow["shards"]) == store.num_shards
            connection.close()


# ----------------------------------------------------------------------
# Resets map to retryable transport errors
# ----------------------------------------------------------------------


class TestResetMapping:
    def test_dead_server_maps_to_transport_error(self):
        store = make_store()
        with LoopbackCluster(store, num_servers=2) as loopback:
            assert loopback.transport.call(0, "ping", []) == "pong"
            loopback.kill_server(0)
            with pytest.raises(TransportError) as info:
                for _ in range(3):  # pooled connection may absorb one
                    loopback.transport.call(0, "ping", [])
            # Retryable by contract: the executor and replica failover
            # only retry ShardCallError subclasses.
            assert isinstance(info.value, ShardCallError)
            # The other server is untouched.
            assert loopback.transport.call(1, "ping", []) == "pong"

    def test_mid_call_crash_resets_and_stays_structured(self):
        """A server that dies *while handling* a request (crash rule at
        ``rpc.handle``) produces a reset the client sees as a
        TransportError, never a raw socket exception."""
        store = make_store()
        injector = ChaosInjector(rules=[
            FaultRule(site=chaos.SITE_RPC_HANDLE, fault="crash", times=1,
                      match={"method": "ping"}),
        ])
        with LoopbackCluster(store, num_servers=2) as loopback:
            with chaos.injected(injector):
                with pytest.raises(TransportError):
                    loopback.transport.call(0, "ping", [])
            # The whole server died (kill -9 model): reconnects refused.
            with pytest.raises(TransportError):
                loopback.transport.call(0, "ping", [])
            assert loopback.transport.call(1, "ping", []) == "pong"

    def test_torn_response_maps_to_transport_error(self):
        """A response torn mid-frame (server dying in ``rpc.send``)
        surfaces as TransportError, not a hang or a decode crash."""
        store = make_store()
        injector = ChaosInjector(rules=[
            # after=1: the first matching rpc.send hit is the client's
            # own request frame; the second is server 0's response.
            FaultRule(site=chaos.SITE_RPC_SEND, fault="torn_write",
                      keep_bytes=3, after=1, times=1, match={"server": 0}),
        ])
        with LoopbackCluster(store, num_servers=2) as loopback:
            with chaos.injected(injector):
                with pytest.raises(TransportError):
                    loopback.transport.call(0, "ping", [])


# ----------------------------------------------------------------------
# Socket-backend chaos matrix
# ----------------------------------------------------------------------


class TestSocketChaosMatrix:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_broadcasts_degrade_structurally_under_wire_faults(self, seed):
        """Seeded wire faults (receive resets + send latency) against
        the socket transport: every degraded broadcast stays a
        structured PartialResult whose value is a subset of the truth,
        and the cluster answers exactly once the faults stop."""
        store = make_store()
        cluster = ReplicatedZipGCluster(store, num_servers=2,
                                        replication_factor=2, retries=1)
        expected = store.get_node_ids({"kind": "x"})
        with LoopbackCluster(store, num_servers=2) as loopback:
            cluster.transport = loopback.transport
            rules = [
                FaultRule(site=chaos.SITE_RPC_RECV, probability=0.2,
                          error=ConnectionResetError),
                FaultRule(site=chaos.SITE_RPC_SEND, fault="latency",
                          probability=0.1, latency_s=0.001),
            ]
            with chaos.injected(ChaosInjector(seed=seed, rules=rules)):
                for _ in range(5):
                    result = cluster.get_node_ids({"kind": "x"},
                                                  partial_results=True)
                    assert set(result.value) <= set(expected)
                    for error in result.errors:
                        assert isinstance(error.error, Exception)
                        if error.shard_id >= 0:  # logstore unit has none
                            assert error.servers_tried
            # Faults gone: replicas recover on the next checkout.
            for server in list(cluster.down_servers):
                cluster.recover_server(server)
            healed = cluster.get_node_ids({"kind": "x"},
                                          partial_results=True)
            assert sorted(healed.value) == sorted(expected)
            assert healed.complete

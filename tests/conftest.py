"""Shared test configuration: Hypothesis profiles.

The property suites pin ``max_examples`` inline, and an inline
``@settings(...)`` always overrides a registered profile -- so example
counts scale through :func:`hypothesis_examples` instead, which reads
the profile name from ``$HYPOTHESIS_PROFILE``:

* ``default`` -- the fast PR-gate counts;
* ``nightly`` -- 10x examples, run by the scheduled CI job.
"""

from __future__ import annotations

import os

from hypothesis import settings

_PROFILE = os.environ.get("HYPOTHESIS_PROFILE", "default")
_SCALE = {"default": 1, "nightly": 10}

settings.register_profile("default", deadline=None)
settings.register_profile("nightly", deadline=None)
settings.load_profile(_PROFILE)


def hypothesis_examples(base: int) -> int:
    """``base`` scaled by the active profile's example multiplier."""
    return base * _SCALE.get(_PROFILE, 1)


#: Default seeds for deterministic fault-injection tests; CI's chaos
#: job runs one seed per matrix leg via ``$ZIPG_CHAOS_SEED``.
CHAOS_SEEDS = (101, 211, 307)


def chaos_seeds() -> list:
    """Seeds the fault-injection suites parametrize over: the single
    pinned ``$ZIPG_CHAOS_SEED`` when set (CI chaos matrix), else all
    of :data:`CHAOS_SEEDS`."""
    pinned = os.environ.get("ZIPG_CHAOS_SEED")
    if pinned is not None:
        return [int(pinned)]
    return list(CHAOS_SEEDS)


#: Transport backend the cluster suites dispatch through.  The default
#: in-process backend is byte-identical to pre-serving-layer dispatch;
#: CI's socket-transport job sets ``ZIPG_TRANSPORT=socket`` to run the
#: same suites over real loopback RPC (framing, codec, pooling, rpc.*
#: chaos sites).
def socket_transport_enabled() -> bool:
    return os.environ.get("ZIPG_TRANSPORT") == "socket"

"""Unit tests for suffix array construction."""

import numpy as np
import pytest

from repro.succinct import build_suffix_array, inverse_permutation


def naive_suffix_array(data: bytes):
    return sorted(range(len(data)), key=lambda i: data[i:])


class TestSuffixArray:
    @pytest.mark.parametrize(
        "text",
        [
            b"banana",
            b"mississippi",
            b"aaaaaaa",
            b"abcabcabc",
            b"z",
            b"ba",
            b"the quick brown fox",
            bytes(range(1, 256)),
        ],
    )
    def test_matches_naive(self, text):
        assert build_suffix_array(text).tolist() == naive_suffix_array(text)

    def test_empty(self):
        assert build_suffix_array(b"").tolist() == []

    def test_random_inputs(self):
        rng = np.random.default_rng(123)
        for _ in range(10):
            length = int(rng.integers(1, 200))
            text = bytes(rng.integers(1, 5, length, dtype=np.uint8))  # tiny alphabet
            assert build_suffix_array(text).tolist() == naive_suffix_array(text)

    def test_is_permutation(self):
        sa = build_suffix_array(b"compressing graphs with succinct structures")
        assert sorted(sa.tolist()) == list(range(len(sa)))


class TestInversePermutation:
    def test_inverts(self):
        rng = np.random.default_rng(5)
        perm = rng.permutation(50)
        inverse = inverse_permutation(perm)
        assert (perm[inverse] == np.arange(50)).all()
        assert (inverse[perm] == np.arange(50)).all()

    def test_sa_isa_relationship(self):
        text = b"banana"
        sa = build_suffix_array(text)
        isa = inverse_permutation(sa)
        for position in range(len(text)):
            assert sa[isa[position]] == position

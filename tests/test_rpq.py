"""Unit tests for regular path queries (Appendix B.1)."""

import pytest

from repro.bench.systems import build_system
from repro.core import GraphData
from repro.workloads.rpq import (
    NFA,
    PathQuery,
    RPQEngine,
    compile_expression,
    generate_gmark_queries,
)


class TestParsing:
    @pytest.mark.parametrize(
        "expression", ["0", "0/1", "01", "(0|1)/2", "0*", "1+", "2?", "(0/1)*"]
    )
    def test_valid_expressions_compile(self, expression):
        assert isinstance(compile_expression(expression), NFA)

    @pytest.mark.parametrize("expression", ["(0", "0)", "|", "0//|", "a/b", ""])
    def test_invalid_expressions_raise(self, expression):
        with pytest.raises(ValueError):
            compile_expression(expression)

    def test_multidigit_labels(self):
        nfa = compile_expression("12/3")
        assert nfa.labels() == {12, 3}


class TestNFASemantics:
    def accepts(self, expression, word):
        nfa = compile_expression(expression)
        states = nfa.epsilon_closure({nfa.start})
        for label in word:
            states = nfa.step(states, label)
            if not states:
                return False
        return nfa.accept in states

    def test_concatenation(self):
        assert self.accepts("0/1", [0, 1])
        assert not self.accepts("0/1", [1, 0])
        assert not self.accepts("0/1", [0])

    def test_alternation(self):
        assert self.accepts("0|1", [0])
        assert self.accepts("0|1", [1])
        assert not self.accepts("0|1", [2])

    def test_star(self):
        assert self.accepts("0*", [])
        assert self.accepts("0*", [0, 0, 0])
        assert not self.accepts("0*", [1])

    def test_plus(self):
        assert not self.accepts("0+", [])
        assert self.accepts("0+", [0])
        assert self.accepts("0+", [0, 0])

    def test_optional(self):
        assert self.accepts("0?", [])
        assert self.accepts("0?", [0])
        assert not self.accepts("0?", [0, 0])

    def test_nested(self):
        assert self.accepts("(0/1)*2", [2])
        assert self.accepts("(0/1)*2", [0, 1, 0, 1, 2])
        assert not self.accepts("(0/1)*2", [0, 2])

    def test_first_labels(self):
        assert compile_expression("(0|1)/2").first_labels() == {0, 1}
        assert compile_expression("0*1").first_labels() == {0, 1}

    def test_accepts_empty(self):
        assert compile_expression("0*").accepts_empty()
        assert not compile_expression("0").accepts_empty()


@pytest.fixture(scope="module")
def labeled_graph():
    # 0 --a--> 1 --a--> 2 --b--> 3 ; 0 --b--> 3 ; 3 --a--> 0  (a=0, b=1)
    graph = GraphData()
    for node in range(4):
        graph.add_node(node, {"tag": str(node)})
    graph.add_edge(0, 1, 0, 10)
    graph.add_edge(1, 2, 0, 20)
    graph.add_edge(2, 3, 1, 30)
    graph.add_edge(0, 3, 1, 40)
    graph.add_edge(3, 0, 0, 50)
    return graph


@pytest.fixture(
    scope="module", params=["zipg", "neo4j-tuned", "titan"],
)
def engine(request, labeled_graph):
    system = build_system(
        request.param, labeled_graph, num_shards=2, alpha=4,
        extra_property_ids=["tag"],
    )
    return RPQEngine(system, labeled_graph.node_ids())


class TestEvaluation:
    def test_single_label(self, engine):
        assert engine.evaluate(PathQuery("q", "0")) == {(0, 1), (1, 2), (3, 0)}

    def test_concatenation_path(self, engine):
        assert engine.evaluate(PathQuery("q", "0/0")) == {(0, 2), (3, 1)}

    def test_mixed_labels(self, engine):
        # 1 -a-> 2 -b-> 3 and 3 -a-> 0 -b-> 3.
        assert engine.evaluate(PathQuery("q", "0/1")) == {(1, 3), (3, 3)}

    def test_alternation(self, engine):
        result = engine.evaluate(PathQuery("q", "0|1"))
        assert result == {(0, 1), (1, 2), (3, 0), (2, 3), (0, 3)}

    def test_kleene_star_transitive_closure(self, engine):
        # 0* from node 0: stay (empty), 0->1, 0->1->2.
        result = engine.evaluate(PathQuery("q", "0*"), start_nodes=[0])
        assert result == {(0, 0), (0, 1), (0, 2)}

    def test_recursive_cycle_terminates(self, engine):
        # (0|1)+ explores the whole cyclic graph but must terminate.
        result = engine.evaluate(PathQuery("q", "(0|1)+"), start_nodes=[0])
        ends = {end for _, end in result}
        assert ends == {0, 1, 2, 3}

    def test_start_restriction(self, engine):
        assert engine.evaluate(PathQuery("q", "1"), start_nodes=[2]) == {(2, 3)}

    def test_max_results_caps(self, engine):
        result = engine.evaluate(PathQuery("q", "0|1"), max_results=2)
        assert len(result) == 2


class TestGMarkGeneration:
    def test_fifty_queries(self):
        queries = generate_gmark_queries(50, seed=1)
        assert len(queries) == 50
        assert len({q.query_id for q in queries}) == 50

    def test_shapes_cycle(self):
        queries = generate_gmark_queries(6, seed=1)
        assert [q.kind for q in queries] == [
            "linear", "branched", "recursive", "linear", "branched", "recursive",
        ]

    def test_all_parse(self):
        for query in generate_gmark_queries(50, seed=2):
            compile_expression(query.expression)

    def test_recursive_flag(self):
        queries = generate_gmark_queries(9, seed=3)
        assert all(q.is_recursive for q in queries if q.kind == "recursive")

    def test_deterministic(self):
        a = [q.expression for q in generate_gmark_queries(20, seed=7)]
        b = [q.expression for q in generate_gmark_queries(20, seed=7)]
        assert a == b

"""Replica re-admission: LSN tracking, catch-up replay, failure paths.

The bug these tests pin down: ``recover_server`` used to re-admit a
replica to read rotation immediately, even though it missed every
replicated write acknowledged while it was down -- reads routed to it
returned stale data.  Recovery now replays the missed oplog tail
(``apply_write`` RPCs) while holding the replica out of rotation, and
a replica whose replay fails goes back to down.
"""

import pytest

from repro import obs
from repro.cluster import ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.errors import TransportError
from repro.server.loopback import LoopbackCluster
from repro.server.transport import InProcessTransport


def build_graph(extra_nodes=0):
    graph = GraphData()
    for i in range(12 + extra_nodes):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
        graph.add_edge(i, (i + 1) % 12, 0, timestamp=i)
    return graph


def build_cluster(num_servers=3, replication_factor=2):
    store = ZipG.compress(build_graph(), num_shards=3, alpha=8,
                          logstore_threshold_bytes=1 << 20)
    cluster = ReplicatedZipGCluster(store, num_servers=num_servers,
                                    replication_factor=replication_factor)
    return cluster, store


class RecordingTransport(InProcessTransport):
    """In-process transport that records calls and can fail servers."""

    def __init__(self, store, cluster=None, fail_servers=()):
        super().__init__(store)
        self.cluster = cluster
        self.fail_servers = set(fail_servers)
        self.calls = []
        self.replay_observations = []

    def call(self, server_id, method, args, unit=None, kwargs=None):
        self.calls.append((server_id, method, list(args)))
        if method == "apply_write" and server_id in self.fail_servers:
            raise TransportError(f"server {server_id} unreachable")
        if method == "apply_write" and self.cluster is not None:
            # Snapshot mid-replay state so tests can assert the server
            # was held out of rotation while its tail replayed.
            self.replay_observations.append((
                server_id,
                set(self.cluster.catching_up_servers),
                obs.gauge("zipg_replicas_catching_up").value,
            ))
        return super().call(server_id, method, args, unit=unit, kwargs=kwargs)


class TestLsnTracking:
    def test_commit_lsn_advances_per_write(self):
        cluster, _ = build_cluster()
        assert cluster.commit_lsn == 0
        cluster.append_node(100, {"name": "a", "kind": "x"})
        assert cluster.commit_lsn == 1
        cluster.append_edge(100, 0, 1, timestamp=9)
        assert cluster.commit_lsn == 2

    def test_live_servers_acknowledge_every_lsn(self):
        cluster, _ = build_cluster()
        cluster.append_node(100, {"name": "a", "kind": "x"})
        cluster.append_node(101, {"name": "b", "kind": "y"})
        for server in range(cluster.num_servers):
            assert cluster.applied_lsn(server) == cluster.commit_lsn

    def test_downed_server_falls_behind(self):
        cluster, _ = build_cluster()
        cluster.fail_server(1)
        cluster.append_node(100, {"name": "a", "kind": "x"})
        assert cluster.applied_lsn(1) == 0
        assert cluster.applied_lsn(0) == cluster.commit_lsn == 1


class TestCatchUp:
    def test_recover_replays_missed_tail(self):
        cluster, store = build_cluster()
        transport = RecordingTransport(store, cluster=cluster)
        cluster.transport = transport
        cluster.fail_server(1)
        cluster.append_node(100, {"name": "a", "kind": "x"})
        cluster.append_node(101, {"name": "b", "kind": "y"})
        behind = cluster.commit_lsn - cluster.applied_lsn(1)
        assert behind == 2
        transport.calls.clear()
        cluster.recover_server(1)
        replayed = [args for server, method, args in transport.calls
                    if server == 1 and method == "apply_write"]
        assert [lsn for lsn, _op, _args in replayed] == [1, 2]
        assert cluster.applied_lsn(1) == cluster.commit_lsn
        assert cluster.down_servers == set()
        assert cluster.catching_up_servers == set()

    def test_replica_held_out_of_rotation_during_replay(self):
        cluster, store = build_cluster()
        transport = RecordingTransport(store, cluster=cluster)
        cluster.transport = transport
        cluster.fail_server(1)
        cluster.append_node(100, {"name": "a", "kind": "x"})
        transport.replay_observations.clear()
        cluster.recover_server(1)
        # Every replayed record saw server 1 mid-catch-up and the gauge
        # raised; both drained once the tail finished.
        assert transport.replay_observations
        for server, catching_up, gauge_value in transport.replay_observations:
            assert server == 1
            assert 1 in catching_up
            assert gauge_value >= 1
        assert cluster.catching_up_servers == set()
        assert obs.gauge("zipg_replicas_catching_up").value == 0

    def test_recover_without_missed_writes_skips_replay(self):
        cluster, store = build_cluster()
        transport = RecordingTransport(store, cluster=cluster)
        cluster.transport = transport
        cluster.fail_server(2)
        transport.calls.clear()
        cluster.recover_server(2)
        assert transport.calls == []
        assert cluster.down_servers == set()

    def test_recover_unknown_server_rejected(self):
        cluster, _ = build_cluster()
        with pytest.raises(IndexError):
            cluster.recover_server(99)

    def test_failed_catchup_keeps_server_down(self):
        cluster, store = build_cluster()
        transport = RecordingTransport(store, cluster=cluster,
                                       fail_servers={1})
        cluster.transport = transport
        failures = obs.counter("zipg_replica_catchup_failures_total")
        before = failures.value
        cluster.fail_server(1)
        cluster.append_node(100, {"name": "a", "kind": "x"})
        cluster.recover_server(1)
        assert cluster.down_servers == {1}
        assert cluster.catching_up_servers == set()
        assert failures.value == before + 1
        assert obs.gauge("zipg_replicas_catching_up").value == 0
        # The tail is still owed: a later, successful recovery replays
        # it and re-admits the server.
        transport.fail_servers.clear()
        cluster.recover_server(1)
        assert cluster.down_servers == set()
        assert cluster.applied_lsn(1) == cluster.commit_lsn

    def test_write_failure_marks_server_down_until_catchup(self):
        """A replica that fails an apply_write mid-write is quarantined
        (down) so reads cannot route to its stale store."""
        cluster, store = build_cluster()
        transport = RecordingTransport(store, cluster=cluster,
                                       fail_servers={2})
        cluster.transport = transport
        cluster.append_node(100, {"name": "a", "kind": "x"})
        assert 2 in cluster.down_servers
        assert cluster.applied_lsn(2) < cluster.commit_lsn
        transport.fail_servers.clear()
        cluster.recover_server(2)
        assert cluster.down_servers == set()
        assert cluster.applied_lsn(2) == cluster.commit_lsn


class TestCatchUpOverRpc:
    def test_recovered_replica_replays_over_the_wire(self):
        """End-to-end over real sockets: private per-server stores, a
        server that misses writes while down, and a recovery that
        replays the tail so the replica's own store converges."""
        graph = build_graph()
        master = ZipG.compress(graph, num_shards=2, alpha=8,
                               logstore_threshold_bytes=1 << 20)

        def replica_factory(server_id):
            return ZipG.compress(build_graph(), num_shards=2, alpha=8,
                                 logstore_threshold_bytes=1 << 20)

        cluster = ReplicatedZipGCluster(master, num_servers=2,
                                        replication_factor=2)
        with LoopbackCluster(master, num_servers=2,
                             replica_factory=replica_factory) as loopback:
            cluster.transport = loopback.transport
            cluster.append_node(200, {"name": "early", "kind": "x"})
            # Both private replicas applied the first write.
            for server in loopback.servers:
                assert server.store.get_node_property(200, ("name",)) == \
                    {"name": "early"}
            cluster.fail_server(1)
            cluster.append_node(201, {"name": "missed", "kind": "x"})
            cluster.append_edge(200, 0, 201, timestamp=5)
            # Server 1's private store missed both mutations.
            assert loopback.servers[0].store.get_node_property(
                201, ("name",)) == {"name": "missed"}
            with pytest.raises(Exception):
                loopback.servers[1].store.get_node_property(201, ("name",))
            cluster.recover_server(1)
            assert cluster.down_servers == set()
            assert cluster.applied_lsn(1) == cluster.commit_lsn
            # The replayed tail converged the private replica.
            assert loopback.servers[1].store.get_node_property(
                201, ("name",)) == {"name": "missed"}
            assert loopback.servers[1].store.get_neighbor_ids(200) == \
                loopback.servers[0].store.get_neighbor_ids(200)

"""Property-based tests (hypothesis) for the Succinct substrate.

These are the load-bearing invariants of the whole stack: if extract
and search are exact on arbitrary inputs, every ZipG query built on
them inherits correctness.
"""

import numpy as np
from conftest import hypothesis_examples
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct import BitVector, SuccinctFile, build_suffix_array, inverse_permutation

# Bytes 1..255 (sentinel 0x00 is reserved by SuccinctFile).
text_strategy = st.binary(min_size=0, max_size=120).map(
    lambda b: bytes(x or 1 for x in b)
)
nonempty_text = st.binary(min_size=1, max_size=120).map(
    lambda b: bytes(x or 1 for x in b)
)


@settings(max_examples=hypothesis_examples(60), deadline=None)
@given(text=text_strategy, alpha=st.integers(min_value=1, max_value=16))
def test_extract_equals_slice(text, alpha):
    sf = SuccinctFile(text, alpha=alpha)
    assert sf.decompress() == text


@settings(max_examples=hypothesis_examples(60), deadline=None)
@given(
    text=nonempty_text,
    alpha=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
def test_extract_arbitrary_window(text, alpha, data):
    sf = SuccinctFile(text, alpha=alpha)
    offset = data.draw(st.integers(min_value=0, max_value=len(text)))
    length = data.draw(st.integers(min_value=0, max_value=len(text)))
    assert sf.extract(offset, length) == text[offset : offset + length]


@settings(max_examples=hypothesis_examples(60), deadline=None)
@given(text=nonempty_text, alpha=st.integers(min_value=1, max_value=16), data=st.data())
def test_search_equals_naive(text, alpha, data):
    sf = SuccinctFile(text, alpha=alpha)
    # Mix patterns drawn from the text (guaranteed hits) and random ones.
    if data.draw(st.booleans()):
        start = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        end = data.draw(st.integers(min_value=start + 1, max_value=len(text)))
        pattern = text[start:end]
    else:
        pattern = data.draw(st.binary(min_size=1, max_size=5).map(
            lambda b: bytes(x or 1 for x in b)
        ))
    expected = []
    index = text.find(pattern)
    while index >= 0:
        expected.append(index)
        index = text.find(pattern, index + 1)
    assert sf.search(pattern).tolist() == expected
    assert sf.count(pattern) == len(expected)


@settings(max_examples=hypothesis_examples(60), deadline=None)
@given(text=nonempty_text)
def test_suffix_array_sorts_suffixes(text):
    sa = build_suffix_array(text)
    suffixes = [text[i:] for i in sa]
    assert suffixes == sorted(suffixes)
    assert sorted(sa.tolist()) == list(range(len(text)))


@settings(max_examples=hypothesis_examples(60), deadline=None)
@given(text=nonempty_text)
def test_isa_inverts_sa(text):
    sa = build_suffix_array(text)
    isa = inverse_permutation(sa)
    assert (sa[isa] == np.arange(len(text))).all()


@settings(max_examples=hypothesis_examples(60), deadline=None)
@given(
    size=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
def test_bitvector_rank_select_consistency(size, data):
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=size - 1), unique=True, max_size=size)
    )
    vec = BitVector.from_indices(size, indices)
    members = sorted(indices)
    assert vec.count() == len(members)
    for position in range(0, size + 1, max(1, size // 7)):
        assert vec.rank1(position) == sum(1 for m in members if m < position)
    for rank, member in enumerate(members):
        assert vec.select1(rank) == member

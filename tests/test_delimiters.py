"""Unit tests for PropertyID delimiter assignment."""

import pytest

from repro.core.delimiters import (
    END_OF_RECORD,
    MAX_PROPERTIES,
    MAX_SINGLE_BYTE_PROPERTIES,
    DelimiterMap,
    validate_property_value,
)
from repro.core.errors import GraphFormatError, TooManyProperties


class TestAssignment:
    def test_lexicographic_order(self):
        dmap = DelimiterMap(["zip", "age", "location"])
        assert dmap.property_ids() == ["age", "location", "zip"]
        assert dmap.order_of("age") == 0
        assert dmap.order_of("zip") == 2

    def test_single_byte_until_24(self):
        dmap = DelimiterMap([f"p{i:02d}" for i in range(MAX_SINGLE_BYTE_PROPERTIES)])
        assert not dmap.uses_two_byte_delimiters
        assert all(len(dmap.delimiter_of(p)) == 1 for p in dmap.property_ids())

    def test_two_byte_beyond_24(self):
        dmap = DelimiterMap([f"p{i:03d}" for i in range(40)])
        assert dmap.uses_two_byte_delimiters
        assert all(len(dmap.delimiter_of(p)) == 2 for p in dmap.property_ids())

    def test_delimiters_unique(self):
        dmap = DelimiterMap([f"p{i:03d}" for i in range(100)])
        delimiters = [dmap.delimiter_of(p) for p in dmap.property_ids()]
        assert len(set(delimiters)) == len(delimiters)

    def test_too_many_properties(self):
        with pytest.raises(TooManyProperties):
            DelimiterMap([f"p{i:04d}" for i in range(MAX_PROPERTIES + 1)])

    def test_duplicates_collapse(self):
        dmap = DelimiterMap(["a", "a", "b"])
        assert len(dmap) == 2

    def test_unknown_property(self):
        dmap = DelimiterMap(["a"])
        with pytest.raises(GraphFormatError):
            dmap.order_of("b")

    def test_next_delimiter(self):
        dmap = DelimiterMap(["a", "b"])
        assert dmap.next_delimiter_after("a") == dmap.delimiter_of("b")
        assert dmap.next_delimiter_after("b") == bytes([END_OF_RECORD])


class TestSerialization:
    @pytest.fixture
    def dmap(self):
        return DelimiterMap(["age", "location", "nickname"])

    def test_serialize_values_figure1(self, dmap):
        # Fig. 1: Alice -> delimiter-prefixed values in property order.
        payload, lengths = dmap.serialize_values(
            {"age": "42", "location": "Ithaca", "nickname": "Ally"}
        )
        assert lengths == [2, 6, 4]
        d = [dmap.delimiter_of(p) for p in ("age", "location", "nickname")]
        assert payload == d[0] + b"42" + d[1] + b"Ithaca" + d[2] + b"Ally"

    def test_null_values_bare_delimiter(self, dmap):
        # Fig. 1: Bob has no age -> bare delimiter, zero length.
        payload, lengths = dmap.serialize_values(
            {"location": "Princeton", "nickname": "Bobby"}
        )
        assert lengths == [0, 9, 5]
        assert payload.startswith(dmap.delimiter_of("age") + dmap.delimiter_of("location"))

    def test_serialize_rejects_unknown_property(self, dmap):
        with pytest.raises(GraphFormatError):
            dmap.serialize_values({"salary": "100"})

    def test_sparse_roundtrip(self, dmap):
        properties = {"age": "24", "nickname": "Cat"}
        assert dmap.parse_sparse(dmap.serialize_sparse(properties)) == properties

    def test_sparse_roundtrip_two_byte(self):
        dmap = DelimiterMap([f"p{i:03d}" for i in range(30)])
        properties = {"p003": "hello", "p027": "world wide"}
        assert dmap.parse_sparse(dmap.serialize_sparse(properties)) == properties

    def test_sparse_empty(self, dmap):
        assert dmap.serialize_sparse({}) == b""
        assert dmap.parse_sparse(b"") == {}

    def test_control_bytes_rejected(self):
        with pytest.raises(GraphFormatError):
            validate_property_value("bad\x01value")

    def test_unicode_values_roundtrip(self, dmap):
        properties = {"nickname": "Zoë…"}
        assert dmap.parse_sparse(dmap.serialize_sparse(properties)) == properties

"""Unit tests for the CI perf gate (``repro.bench.gate``).

The satellite fix under test: a malformed baseline entry (missing or
non-positive ``value``) must *skip with a warning* instead of crashing
the gate with KeyError / producing a vacuous ratio bound.
"""

import json

from repro.bench import gate


def _entry(value, kind="higher_better"):
    return {"value": value, "kind": kind}


class TestCheck:
    def test_passing_metric(self):
        passes, failures, warnings = gate.check(
            {"speedup": _entry(4.0)}, {"speedup": _entry(3.0)}, tolerance=2.0
        )
        assert len(passes) == 1 and not failures and not warnings

    def test_failing_higher_better_metric(self):
        passes, failures, warnings = gate.check(
            {"speedup": _entry(4.0)}, {"speedup": _entry(1.0)}, tolerance=2.0
        )
        assert not passes and len(failures) == 1 and not warnings

    def test_failing_lower_better_metric(self):
        _, failures, warnings = gate.check(
            {"latency": _entry(1.0, "lower_better")},
            {"latency": _entry(3.0, "lower_better")},
            tolerance=2.0,
        )
        assert len(failures) == 1 and not warnings

    def test_missing_current_metric_is_a_failure(self):
        passes, failures, warnings = gate.check({"speedup": _entry(4.0)}, {})
        assert not passes and not warnings
        assert failures == ["speedup: missing from current bench artifacts"]

    def test_baseline_entry_without_value_warns_and_skips(self):
        # Historically a KeyError: the gate crashed instead of reporting.
        passes, failures, warnings = gate.check(
            {"speedup": {"kind": "higher_better"}}, {"speedup": _entry(3.0)}
        )
        assert not passes and not failures
        assert len(warnings) == 1 and "speedup" in warnings[0]

    def test_non_numeric_baseline_value_warns_and_skips(self):
        passes, failures, warnings = gate.check(
            {"speedup": _entry("fast")}, {"speedup": _entry(3.0)}
        )
        assert not passes and not failures and len(warnings) == 1

    def test_zero_baseline_value_warns_and_skips(self):
        # A zero pin makes both ratio bounds vacuous; skip loudly.
        passes, failures, warnings = gate.check(
            {"speedup": _entry(0.0)}, {"speedup": _entry(3.0)}
        )
        assert not passes and not failures and len(warnings) == 1

    def test_negative_baseline_value_warns_and_skips(self):
        _, failures, warnings = gate.check(
            {"speedup": _entry(-1.0)}, {"speedup": _entry(3.0)}
        )
        assert not failures and len(warnings) == 1

    def test_non_numeric_current_value_is_a_failure(self):
        _, failures, warnings = gate.check(
            {"speedup": _entry(4.0)}, {"speedup": _entry(None)}
        )
        assert len(failures) == 1 and not warnings

    def test_warning_does_not_mask_other_failures(self):
        _, failures, warnings = gate.check(
            {"bad": _entry(0.0), "good": _entry(4.0)},
            {"good": _entry(1.0)},
        )
        assert len(failures) == 1 and len(warnings) == 1


class TestSelectMetrics:
    BASELINE = {
        "gateway.p99": _entry(2.0),
        "gateway.shed": _entry(0.3),
        "tao.orkut": _entry(1.3),
        "micro.extract": _entry(26.0),
    }

    def test_no_filters_keeps_everything(self):
        assert gate.select_metrics(self.BASELINE, [], []) == self.BASELINE

    def test_only_keeps_matching_prefixes(self):
        selected = gate.select_metrics(self.BASELINE, ["gateway."], [])
        assert sorted(selected) == ["gateway.p99", "gateway.shed"]

    def test_exclude_drops_matching_prefixes(self):
        selected = gate.select_metrics(self.BASELINE, [], ["gateway."])
        assert sorted(selected) == ["micro.extract", "tao.orkut"]

    def test_only_then_exclude(self):
        selected = gate.select_metrics(
            self.BASELINE, ["gateway.", "tao."], ["gateway.shed"]
        )
        assert sorted(selected) == ["gateway.p99", "tao.orkut"]

    def test_missing_is_still_a_failure_inside_the_selection(self):
        selected = gate.select_metrics(self.BASELINE, ["gateway."], [])
        _, failures, _ = gate.check(selected, {"gateway.p99": _entry(2.0)})
        assert failures == [
            "gateway.shed: missing from current bench artifacts"
        ]


class TestMain:
    def _write(self, tmp_path, baseline_metrics, gate_metrics):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"metrics": baseline_metrics}))
        bench_dir = tmp_path / "bench_out"
        bench_dir.mkdir()
        (bench_dir / "BENCH_test.json").write_text(
            json.dumps({"gate": gate_metrics})
        )
        return ["--baseline", str(baseline), "--bench-dir", str(bench_dir)]

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        argv = self._write(tmp_path, {"m": _entry(2.0)}, {"m": _entry(2.0)})
        assert gate.main(argv) == 0
        assert "PASS m:" in capsys.readouterr().out

    def test_exit_one_on_failure(self, tmp_path, capsys):
        argv = self._write(tmp_path, {"m": _entry(8.0)}, {"m": _entry(1.0)})
        assert gate.main(argv) == 1
        assert "FAIL m:" in capsys.readouterr().out

    def test_exit_zero_with_only_warnings(self, tmp_path, capsys):
        # A bench whose baseline pin is malformed must not block CI.
        argv = self._write(tmp_path, {"m": {"kind": "higher_better"}}, {})
        assert gate.main(argv) == 0
        out = capsys.readouterr().out
        assert "WARN m:" in out
        assert "1 skipped" in out

    def test_only_flag_scopes_the_gate(self, tmp_path, capsys):
        # The load-test job produces only gateway.* artifacts; --only
        # keeps the shared baseline's other pins out of its verdict.
        argv = self._write(
            tmp_path,
            {"gateway.p99": _entry(2.0, "lower_better"),
             "tao.orkut": _entry(1.3)},
            {"gateway.p99": _entry(1.5, "lower_better")},
        )
        assert gate.main(argv + ["--only", "gateway."]) == 0
        assert gate.main(argv) == 1  # unscoped: tao.orkut is missing

    def test_exclude_flag_scopes_the_gate(self, tmp_path, capsys):
        argv = self._write(
            tmp_path,
            {"gateway.p99": _entry(2.0, "lower_better"),
             "tao.orkut": _entry(1.3)},
            {"tao.orkut": _entry(1.3)},
        )
        assert gate.main(argv + ["--exclude", "gateway."]) == 0

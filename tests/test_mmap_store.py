"""Zero-copy mmap-backed snapshot loading (§4.1).

``load_store(mode="mmap")`` maps each generation-numbered shard file
and builds shards as views into the maps; this suite pins the three
properties that make that safe to ship:

* **Parity** -- every query class answers byte-identically to the
  eager (read + CRC + copy) path, across randomized graph layouts,
  update streams, and both registered shard codecs.
* **Compatibility** -- version-3 roots (no ``encoding`` manifest key,
  no ``__format__`` section tag) still load in both modes as Succinct;
  unknown versions and modes are still rejected.
* **Crash safety** -- recovery with ``mode="mmap"`` at every injected
  save crash point (and under torn writes) yields the same consistent
  state the eager path recovers.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import chaos_seeds, hypothesis_examples
from repro import chaos
from repro.chaos import ChaosInjector, FaultRule, SimulatedCrash
from repro.core import GraphData, ZipG
from repro.core.errors import SnapshotCorruptError, UnsupportedVersionError
from repro.core.persistence import (
    SAVE_CRASH_POINTS,
    attach_wal,
    load_store,
    save_store,
    verify_store,
)
from repro.succinct.encodings import decode_flat_file
from repro.succinct.serialize import FORMAT_SECTION, pack_sections
from repro.succinct.succinct_file import SuccinctFile

CITIES = ("Ithaca", "Boston", "Albany")


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    chaos.uninstall()


def build_store(encoding="succinct"):
    graph = GraphData()
    graph.add_node(1, {"name": "Alice", "city": "Ithaca"})
    graph.add_node(2, {"name": "Bob", "city": "Boston"})
    graph.add_node(3, {"name": "Carol", "city": "Ithaca"})
    graph.add_edge(1, 2, 0, 100, {"w": "5"})
    graph.add_edge(1, 3, 0, 200)
    graph.add_edge(2, 3, 1, 50)
    return ZipG.compress(graph, num_shards=2, alpha=4,
                         logstore_threshold_bytes=4096, encoding=encoding)


def mutate(store):
    store.append_node(9, {"name": "Ida", "city": "Ithaca"})
    store.append_edge(1, 0, 9, timestamp=300)
    store.delete_edge(1, 0, 3)
    store.update_node(2, {"name": "Bobby", "city": "Boston"})


def assert_same_answers(mapped, eager, node_ids):
    """Every query class must agree byte-for-byte between load modes."""
    for node in node_ids:
        assert mapped.has_node(node) == eager.has_node(node), node
        if not eager.has_node(node):
            continue
        assert mapped.get_node_property(node) == \
            eager.get_node_property(node), node
        for etype in (0, 1):
            assert mapped.get_neighbor_ids(node, etype) == \
                eager.get_neighbor_ids(node, etype), (node, etype)
            left = eager.get_edge_record(node, etype)
            right = mapped.get_edge_record(node, etype)
            assert right.edge_count == left.edge_count, (node, etype)
            assert right.destinations() == left.destinations(), (node, etype)
            assert [right.timestamp_at(i) for i in range(right.edge_count)] \
                == [left.timestamp_at(i) for i in range(left.edge_count)]
            assert [right.data_at(i).properties
                    for i in range(right.edge_count)] \
                == [left.data_at(i).properties
                    for i in range(left.edge_count)]
    for city in CITIES:
        assert mapped.get_node_ids({"city": city}) == \
            eager.get_node_ids({"city": city}), city


# ----------------------------------------------------------------------
# Parity: mmap answers are byte-identical to eager
# ----------------------------------------------------------------------


class TestModeParity:
    @pytest.mark.parametrize("encoding", ["succinct", "offsets"])
    def test_fresh_store_parity(self, tmp_path, encoding):
        store = build_store(encoding=encoding)
        root = str(tmp_path / "db")
        save_store(store, root)
        mapped = load_store(root, mode="mmap")
        eager = load_store(root)
        assert mapped.load_mode == "mmap"
        assert eager.load_mode == "eager"
        assert mapped.mapped_bytes > 0
        assert eager.mapped_bytes == 0
        assert mapped.encoding == encoding
        assert_same_answers(mapped, eager, (1, 2, 3))

    def test_mutated_and_frozen_store_parity(self, tmp_path):
        store = build_store()
        mutate(store)
        for i in range(12):
            store.append_edge(2, 1, 100 + i, timestamp=1_000 + i)
        store.freeze_logstore()
        store.append_edge(3, 0, 1, timestamp=5_000)
        root = str(tmp_path / "db")
        save_store(store, root)
        mapped = load_store(root, mode="mmap")
        eager = load_store(root)
        assert_same_answers(mapped, eager, (1, 2, 3, 9))
        assert_same_answers(mapped, store, (1, 2, 3, 9))

    def test_mapped_store_accepts_writes(self, tmp_path):
        """Shards are immutable views; mutations land in the logstore
        and deletion bitmaps, which the mmap path copies (owns)."""
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        mapped = load_store(root, mode="mmap")
        mutate(mapped)
        reference = build_store()
        mutate(reference)
        assert_same_answers(mapped, reference, (1, 2, 3, 9))
        # And the mutated mapped store round-trips through save again.
        root2 = str(tmp_path / "db2")
        save_store(mapped, root2)
        assert_same_answers(load_store(root2, mode="mmap"), reference,
                            (1, 2, 3, 9))

    def test_unknown_mode_rejected(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        with pytest.raises(ValueError, match="mode"):
            load_store(root, mode="bogus")


@st.composite
def graph_and_ops(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=6))
    graph = GraphData()
    for node_id in range(num_nodes):
        graph.add_node(node_id, {"city": draw(st.sampled_from(CITIES))})
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        graph.add_edge(src, dst, draw(st.integers(min_value=0, max_value=1)),
                       draw(st.integers(min_value=1, max_value=500)))
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(["add_edge", "del_edge", "update_node"]))
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        etype = draw(st.integers(min_value=0, max_value=1))
        ts = draw(st.integers(min_value=501, max_value=1000))
        city = draw(st.sampled_from(CITIES))
        ops.append((kind, src, dst, etype, ts, city))
    return graph, ops


class TestPropertyParity:
    @settings(max_examples=hypothesis_examples(25), deadline=None)
    @given(data=graph_and_ops(),
           encoding=st.sampled_from(["succinct", "offsets"]),
           num_shards=st.sampled_from([1, 2, 3]),
           threshold=st.sampled_from([200, 4096]))
    def test_mmap_matches_eager_everywhere(self, tmp_path_factory, data,
                                           encoding, num_shards, threshold):
        """The acceptance property: for random layouts, shardings, and
        update streams (spanning logstore-resident and frozen edges),
        the mmap path answers every query class identically to eager."""
        graph, ops = data
        store = ZipG.compress(graph, num_shards=num_shards, alpha=4,
                              logstore_threshold_bytes=threshold,
                              encoding=encoding)
        for (kind, src, dst, etype, ts, city) in ops:
            if kind == "add_edge":
                store.append_edge(src, etype, dst, timestamp=ts)
            elif kind == "del_edge":
                store.delete_edge(src, etype, dst)
            else:
                store.update_node(src, {"city": city})
        root = str(tmp_path_factory.mktemp("mmap_parity") / "db")
        save_store(store, root)
        mapped = load_store(root, mode="mmap")
        eager = load_store(root)
        node_ids = list(graph.node_ids()) + [max(graph.node_ids()) + 1]
        assert_same_answers(mapped, eager, node_ids)
        assert_same_answers(mapped, store, node_ids)


# ----------------------------------------------------------------------
# Backward compatibility: version-3 roots, unknown versions
# ----------------------------------------------------------------------


class TestVersionCompat:
    def _downgrade_to_v3(self, root):
        path = os.path.join(root, "manifest.json")
        with open(path) as handle:
            manifest = json.load(handle)
        assert manifest["version"] == 4
        assert manifest["encoding"] == "succinct"
        manifest["version"] = 3
        del manifest["encoding"]
        with open(path, "w") as handle:
            json.dump(manifest, handle)

    @pytest.mark.parametrize("mode", ["eager", "mmap"])
    def test_v3_manifest_loads_as_succinct(self, tmp_path, mode):
        store = build_store()
        mutate(store)
        root = str(tmp_path / "db")
        save_store(store, root)
        self._downgrade_to_v3(root)
        loaded = load_store(root, mode=mode)
        assert loaded.encoding == "succinct"
        assert_same_answers(loaded, store, (1, 2, 3, 9))

    def test_v3_root_verifies(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        self._downgrade_to_v3(root)
        verify_store(root)

    def test_resave_of_v3_root_upgrades_to_v4(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        self._downgrade_to_v3(root)
        loaded = load_store(root)
        save_store(loaded, root)
        with open(os.path.join(root, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["version"] == 4
        assert manifest["encoding"] == "succinct"

    def test_unknown_version_still_rejected(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        path = os.path.join(root, "manifest.json")
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        for mode in ("eager", "mmap"):
            with pytest.raises(UnsupportedVersionError):
                load_store(root, mode=mode)

    def test_untagged_blob_decodes_as_succinct(self):
        """Pre-v4 flat files carry no ``__format__`` section; the
        decoder must fall back to the Succinct codec."""
        original = SuccinctFile(b"walk in silence, do not walk away",
                                alpha=4)
        sections = dict(original.sections())
        assert FORMAT_SECTION in sections
        del sections[FORMAT_SECTION]
        decoded = decode_flat_file(pack_sections(sections))
        assert isinstance(decoded, SuccinctFile)
        assert decoded.decompress() == original.decompress()
        assert list(decoded.search(b"walk")) == list(original.search(b"walk"))


# ----------------------------------------------------------------------
# verify_store streaming + corruption under mmap
# ----------------------------------------------------------------------


class TestVerifyStreaming:
    def test_small_chunks_equivalent(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        report = verify_store(root)
        assert report.ok
        tiny = verify_store(root, chunk_bytes=7)
        assert tiny == report

    def test_invalid_chunk_size_rejected(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        with pytest.raises(ValueError):
            verify_store(root, chunk_bytes=0)

    def test_corruption_detected_across_chunk_boundary(self, tmp_path):
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        shard_files = [n for n in os.listdir(root) if n.startswith("shard-")]
        path = os.path.join(root, shard_files[0])
        with open(path, "r+b") as handle:
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        report = verify_store(root, chunk_bytes=7)
        assert not report.ok
        assert any(issue.kind == "file-corrupt" for issue in report.issues)

    def test_truncated_shard_rejected_by_mmap_load(self, tmp_path):
        """mmap load validates sizes up front (CRC is verify_store's
        job); a truncated file must still fail fast, not map."""
        root = str(tmp_path / "db")
        save_store(build_store(), root)
        shard_files = [n for n in os.listdir(root) if n.startswith("shard-")]
        path = os.path.join(root, shard_files[0])
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        with pytest.raises(SnapshotCorruptError):
            load_store(root, mode="mmap")


# ----------------------------------------------------------------------
# Crash recovery with mode="mmap"
# ----------------------------------------------------------------------


class TestMmapCrashRecovery:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_crash_at_every_save_point_recovers_via_mmap(self, tmp_path,
                                                         seed):
        """The eager crash-recovery acceptance matrix, recovered with
        ``mode="mmap"``: whichever save step the crash hits, the mapped
        recovery must yield the same complete mutated state."""
        for index, point in enumerate(SAVE_CRASH_POINTS):
            root = str(tmp_path / f"run{index}")
            store = build_store()
            save_store(store, root)
            attach_wal(store, root)
            mutate(store)
            injector = ChaosInjector(seed=seed, rules=[
                FaultRule(site=point, fault="crash", times=1),
            ])
            with chaos.injected(injector):
                with pytest.raises(SimulatedCrash):
                    save_store(store, root)
            chaos.uninstall()
            loaded = load_store(root, mode="mmap")
            assert loaded.load_mode == "mmap"
            assert_same_answers(loaded, store, (1, 2, 3, 9))

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_torn_shard_write_recovers_via_mmap(self, tmp_path, seed):
        """A torn shard write leaves a short file; the mmap loader's
        size check must route recovery to the previous generation."""
        root = str(tmp_path / "db")
        store = build_store()
        save_store(store, root)
        attach_wal(store, root)
        mutate(store)
        injector = ChaosInjector(seed=seed, rules=[
            FaultRule(site=chaos.SITE_SAVE_WRITE, fault="torn_write"),
        ])
        with chaos.injected(injector):
            with pytest.raises(SimulatedCrash):
                save_store(store, root)
        chaos.uninstall()
        loaded = load_store(root, mode="mmap")
        assert_same_answers(loaded, store, (1, 2, 3, 9))

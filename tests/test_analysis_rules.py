"""The repro.analysis static checker: rules, suppression, CLI."""

import os

import pytest

import repro
from repro.analysis import analyze_paths
from repro.analysis.__main__ import main as analysis_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")
SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))


def fixture(name):
    return os.path.join(FIXTURES, name)


def line_of(path, needle):
    """1-based line number of the first line containing ``needle``."""
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            if needle in line:
                return number
    raise AssertionError(f"{needle!r} not found in {path}")


def findings_for(name, rule_ids=None):
    findings, _ = analyze_paths([fixture(name)], rule_ids)
    return findings


def hits(findings):
    return {(f.rule_id, f.line) for f in findings}


# ----------------------------------------------------------------------
# Lock discipline
# ----------------------------------------------------------------------


class TestLockRules:
    def test_unguarded_mutation_flagged(self):
        path = fixture("lock_violation.py")
        found = hits(findings_for("lock_violation.py", ["LOCK001"]))
        assert ("LOCK001", line_of(path, "LOCK001(a)")) in found

    def test_cross_class_private_mutation_flagged(self):
        path = fixture("lock_violation.py")
        found = hits(findings_for("lock_violation.py", ["LOCK001"]))
        assert ("LOCK001", line_of(path, "LOCK001(b)")) in found

    def test_locked_helper_call_without_lock_flagged(self):
        path = fixture("lock_violation.py")
        found = hits(findings_for("lock_violation.py", ["LOCK001"]))
        assert ("LOCK001", line_of(path, "LOCK001(c)")) in found

    def test_guarded_mutation_under_lock_not_flagged(self):
        path = fixture("lock_violation.py")
        found = hits(findings_for("lock_violation.py", ["LOCK001"]))
        assert ("LOCK001", line_of(path, "establishes _total")) not in found
        assert ("LOCK001", line_of(path, "fine: lock held")) not in found

    def test_self_deadlock_detected(self):
        path = fixture("lock_order_cycle.py")
        found = findings_for("lock_order_cycle.py", ["LOCK002"])
        lines = {f.line for f in found}
        assert line_of(path, "non-reentrant self re-acquire") - 1 in lines

    def test_cross_class_cycle_detected(self):
        found = findings_for("lock_order_cycle.py", ["LOCK002"])
        messages = " ".join(f.message for f in found)
        assert "acquisition-order cycle" in messages
        assert "Right._right_lock" in messages

    def test_executor_map_without_stats_of_flagged(self):
        path = fixture("executor_stats.py")
        found = hits(findings_for("executor_stats.py", ["LOCK003"]))
        assert ("LOCK003", line_of(path, "LOCK003: no stats_of=")) in found

    def test_executor_map_with_stats_of_not_flagged(self):
        found = findings_for("executor_stats.py", ["LOCK003"])
        assert len(found) == 1  # only the bad fan-out


# ----------------------------------------------------------------------
# Byte-layout invariants
# ----------------------------------------------------------------------


class TestLayoutRules:
    def test_raw_reserved_byte_flagged(self):
        path = fixture("layout_violation.py")
        found = hits(findings_for("layout_violation.py", ["LAYOUT001"]))
        assert ("LAYOUT001", line_of(path, "raw END_OF_RECORD byte")) in found

    def test_raw_control_payload_flagged(self):
        path = fixture("layout_violation.py")
        found = hits(findings_for("layout_violation.py", ["LAYOUT001"]))
        assert ("LAYOUT001", line_of(path, "raw control byte as payload")) in found

    def test_named_constant_not_flagged(self):
        path = fixture("layout_violation.py")
        found = hits(findings_for("layout_violation.py", ["LAYOUT001"]))
        named = line_of(path, "bytes([EDGE_FIELD_SEPARATOR])")
        assert ("LAYOUT001", named) not in found

    def test_bare_width_in_layout_function_flagged(self):
        path = fixture("layout_violation.py")
        found = findings_for("layout_violation.py", ["LAYOUT002"])
        lines = {f.line for f in found}
        assert line_of(path, "LAYOUT002: bare 4") in lines

    def test_parser_constant_skew_flagged(self):
        found = findings_for("layout_violation.py", ["LAYOUT002"])
        messages = " ".join(f.message for f in found)
        assert "EDGE_FIELD_SEPARATOR" in messages

    def test_orphan_parser_flagged(self):
        found = findings_for("layout_violation.py", ["LAYOUT002"])
        messages = " ".join(f.message for f in found)
        assert "layout-parser[orphan]" in messages


# ----------------------------------------------------------------------
# Hot-path lint
# ----------------------------------------------------------------------


class TestHotPathRules:
    def test_scalar_kernel_in_loop_flagged(self):
        path = fixture("hotpath_violation.py")
        found = hits(findings_for("hotpath_violation.py", ["HOT001"]))
        assert ("HOT001", line_of(path, "# HOT001") ) in found

    def test_npa_indexing_in_loop_flagged(self):
        path = fixture("hotpath_violation.py")
        found = hits(findings_for("hotpath_violation.py", ["HOT001"]))
        assert ("HOT001", line_of(path, "per-element NPA indexing")) in found

    def test_per_record_accessor_flagged_with_alternative(self):
        found = findings_for("hotpath_violation.py", ["HOT002"])
        assert len(found) == 1
        assert "all_properties" in found[0].message

    def test_inline_ignore_suppresses(self):
        path = fixture("hotpath_violation.py")
        found = hits(findings_for("hotpath_violation.py", ["HOT001"]))
        assert ("HOT001", line_of(path, "zipg: ignore[HOT001]")) not in found

    def test_scalar_ok_directive_suppresses_function(self):
        path = fixture("hotpath_violation.py")
        found = hits(findings_for("hotpath_violation.py", ["HOT001"]))
        sanctioned = line_of(path, "def sanctioned_walk")
        assert not any(line > sanctioned for _, line in found)

    def test_not_flagged_without_hot_path_marker(self, tmp_path):
        source = fixture("hotpath_violation.py")
        with open(source) as handle:
            body = handle.read().replace("# zipg: hot-path", "")
        cold = tmp_path / "cold_module.py"
        cold.write_text(body)
        findings, _ = analyze_paths([str(cold)], ["HOT001", "HOT002"])
        assert findings == []


# ----------------------------------------------------------------------
# API hygiene
# ----------------------------------------------------------------------


class TestHygieneRules:
    def test_missing_annotations_flagged(self):
        found = findings_for("hygiene_violation.py", ["API001"])
        assert any("untyped_lookup" in f.message for f in found)
        assert any("node_id" in f.message for f in found)

    def test_annotated_function_not_flagged(self):
        found = findings_for("hygiene_violation.py", ["API001"])
        assert not any("'typed_lookup'" in f.message for f in found)

    def test_bare_except_flagged(self):
        found = findings_for("hygiene_violation.py", ["API002"])
        assert any("bare 'except:'" in f.message for f in found)

    def test_swallowed_error_flagged(self):
        found = findings_for("hygiene_violation.py", ["API002"])
        assert any("ZipGError" in f.message for f in found)


# ----------------------------------------------------------------------
# Observability coverage
# ----------------------------------------------------------------------


class TestObsRule:
    def test_unwrapped_query_method_flagged(self):
        path = fixture("obs_violation.py")
        found = hits(findings_for("obs_violation.py", ["OBS001"]))
        assert ("OBS001", line_of(path, "OBS001(a)")) in found

    def test_executor_map_outside_span_flagged(self):
        path = fixture("obs_violation.py")
        found = findings_for("obs_violation.py", ["OBS001"])
        map_line = line_of(path, "self.executor.map(lambda shard: shard.find")
        assert any(
            f.line == map_line and "executor.map" in f.message for f in found
        )

    def test_traced_and_with_span_methods_not_flagged(self):
        found = findings_for("obs_violation.py", ["OBS001"])
        for name in ("get_node_ids", "update_node", "has_node",
                     "_get_internal", "route"):
            assert not any(name in f.message for f in found), name

    def test_not_flagged_without_query_api_marker(self, tmp_path):
        with open(fixture("obs_violation.py")) as handle:
            body = handle.read().replace("# zipg: query-api", "")
        cold = tmp_path / "unmarked_module.py"
        cold.write_text(body)
        findings, _ = analyze_paths([str(cold)], ["OBS001"])
        assert findings == []

    def test_graph_store_is_covered(self):
        src_path = os.path.join(SRC_REPRO, "core", "graph_store.py")
        findings, context = analyze_paths([src_path], ["OBS001"])
        assert findings == []
        module = context.modules[0]
        assert module.markers.module_has("query-api")


# ----------------------------------------------------------------------
# Robustness-path error handling
# ----------------------------------------------------------------------


class TestRobustnessRule:
    def test_bare_except_flagged(self):
        path = fixture("robust_violations.py")
        found = hits(findings_for("robust_violations.py", ["ROBUST001"]))
        assert ("ROBUST001", line_of(path, "ROBUST001: bare except")) in found

    def test_swallowed_pass_flagged(self):
        path = fixture("robust_violations.py")
        found = hits(findings_for("robust_violations.py", ["ROBUST001"]))
        assert ("ROBUST001",
                line_of(path, "ROBUST001: silently swallowed")) in found

    def test_swallowed_continue_flagged(self):
        path = fixture("robust_violations.py")
        found = hits(findings_for("robust_violations.py", ["ROBUST001"]))
        assert ("ROBUST001",
                line_of(path, "ROBUST001: silently skipped")) in found

    def test_acknowledged_swallow_suppressed(self):
        path = fixture("robust_violations.py")
        found = findings_for("robust_violations.py", ["ROBUST001"])
        ignored = line_of(path, "zipg: ignore[ROBUST001]")
        assert not any(f.line == ignored for f in found)

    def test_handled_reraise_not_flagged(self):
        found = findings_for("robust_violations.py", ["ROBUST001"])
        assert len(found) == 3

    def test_not_flagged_without_robust_marker(self, tmp_path):
        with open(fixture("robust_violations.py")) as handle:
            body = handle.read().replace("# zipg: robust-path", "")
        cold = tmp_path / "unmarked_module.py"
        cold.write_text(body)
        findings, _ = analyze_paths([str(cold)], ["ROBUST001"])
        assert findings == []

    def test_durability_modules_always_in_scope(self):
        from repro.analysis.rules.robustness import is_robust_path

        for rel in (("core", "persistence.py"), ("core", "wal.py"),
                    ("chaos", "injector.py"), ("cluster", "replication.py")):
            src_path = os.path.join(SRC_REPRO, *rel)
            findings, context = analyze_paths([src_path], ["ROBUST001"])
            assert findings == [], rel
            assert is_robust_path(context.modules[0]), rel


# ----------------------------------------------------------------------
# Cache-coherence (epoch bump) discipline
# ----------------------------------------------------------------------


class TestCacheRule:
    def test_mutator_without_bump_flagged(self):
        path = fixture("cache_violation.py")
        found = hits(findings_for("cache_violation.py", ["CACHE001"]))
        assert ("CACHE001", line_of(path, "def delete_item")) in found

    def test_direct_bump_not_flagged(self):
        found = findings_for("cache_violation.py", ["CACHE001"])
        assert not any("append_item" in f.message for f in found)

    def test_transitive_bump_through_self_call_not_flagged(self):
        found = findings_for("cache_violation.py", ["CACHE001"])
        assert not any("update_item" in f.message for f in found)

    def test_acknowledged_mutator_suppressed(self):
        found = findings_for("cache_violation.py", ["CACHE001"])
        assert not any("remove_quietly" in f.message for f in found)

    def test_non_mutator_not_flagged(self):
        found = findings_for("cache_violation.py", ["CACHE001"])
        assert len(found) == 1  # only delete_item

    def test_not_flagged_without_cache_backed_marker(self, tmp_path):
        with open(fixture("cache_violation.py")) as handle:
            body = handle.read().replace("# zipg: cache-backed", "")
        cold = tmp_path / "unmarked_module.py"
        cold.write_text(body)
        findings, _ = analyze_paths([str(cold)], ["CACHE001"])
        assert findings == []

    def test_cache_backed_store_modules_are_covered(self):
        for rel in (("core", "graph_store.py"), ("core", "shard.py"),
                    ("core", "logstore.py")):
            src_path = os.path.join(SRC_REPRO, *rel)
            findings, context = analyze_paths([src_path], ["CACHE001"])
            assert findings == [], rel
            assert context.modules[0].markers.module_has("cache-backed"), rel


# ----------------------------------------------------------------------
# RPC framing-boundary discipline
# ----------------------------------------------------------------------


class TestRpcRule:
    def test_raw_sendall_and_recv_flagged(self):
        path = fixture("rpc_violations.py")
        found = hits(findings_for("rpc_violations.py", ["RPC001"]))
        assert ("RPC001",
                line_of(path, "RPC001: bypasses length-prefix")) in found
        assert ("RPC001", line_of(path, "RPC001: unframed read")) in found

    def test_vectored_and_buffer_io_flagged(self):
        path = fixture("rpc_violations.py")
        found = hits(findings_for("rpc_violations.py", ["RPC001"]))
        assert ("RPC001",
                line_of(path, "RPC001: unframed vectored write")) in found
        assert ("RPC001",
                line_of(path, "RPC001: unframed read into")) in found

    def test_acknowledged_non_socket_send_suppressed(self):
        path = fixture("rpc_violations.py")
        found = findings_for("rpc_violations.py", ["RPC001"])
        ignored = line_of(path, "zipg: ignore[RPC001]")
        assert not any(f.line == ignored for f in found)

    def test_framed_helper_not_flagged(self):
        found = findings_for("rpc_violations.py", ["RPC001"])
        assert len(found) == 4

    def test_framing_module_is_exempt(self):
        src_path = os.path.join(SRC_REPRO, "server", "ipc.py")
        findings, _ = analyze_paths([src_path], ["RPC001"])
        assert findings == []

    def test_server_package_routes_through_framing(self):
        # Everything else in the server package (transport, protocol,
        # the server roles, the client) must hold the boundary.
        src_path = os.path.join(SRC_REPRO, "server")
        findings, _ = analyze_paths([src_path], ["RPC001"])
        assert findings == []


# ----------------------------------------------------------------------
# Gateway event-loop discipline
# ----------------------------------------------------------------------


class TestGatewayRule:
    def test_time_sleep_and_bare_sleep_flagged(self):
        path = fixture("gateway_blocking.py")
        found = hits(findings_for("gateway_blocking.py", ["GATE001"]))
        assert ("GATE001",
                line_of(path, "GATE001: stalls every tenant")) in found
        assert ("GATE001",
                line_of(path, "GATE001: bare sleep")) in found

    def test_sync_socket_io_flagged(self):
        path = fixture("gateway_blocking.py")
        found = hits(findings_for("gateway_blocking.py", ["GATE001"]))
        assert ("GATE001",
                line_of(path, "GATE001 (and RPC001)")) in found
        assert ("GATE001",
                line_of(path, "GATE001: sync socket read")) in found
        assert ("GATE001",
                line_of(path, "GATE001: blocking connect")) in found

    def test_lock_acquire_flagged(self):
        path = fixture("gateway_blocking.py")
        found = hits(findings_for("gateway_blocking.py", ["GATE001"]))
        assert ("GATE001",
                line_of(path, "GATE001: thread lock parks")) in found

    def test_executor_offload_function_exempt(self):
        path = fixture("gateway_blocking.py")
        found = findings_for("gateway_blocking.py", ["GATE001"])
        offloaded = line_of(path, "this runs on the submission pool") + 1
        assert not any(f.line == offloaded for f in found)
        assert len(found) == 6  # nothing in idiomatic() either

    def test_unmarked_modules_exempt(self):
        # time.sleep in a module without gateway-path is out of scope
        # (backoff loops in the threaded transport are legitimate).
        found = findings_for("rpc_violations.py", ["GATE001"])
        assert found == []

    def test_gateway_package_is_clean(self):
        # The shipped gateway really holds its own discipline, and its
        # modules really are marked (a silently-unmarked module would
        # pass vacuously).
        src_path = os.path.join(SRC_REPRO, "gateway")
        findings, context = analyze_paths([src_path], ["GATE001"])
        assert findings == []
        marked = {
            module.name
            for module in context.modules
            if module.markers.module_has("gateway-path")
        }
        assert "repro.gateway.service" in marked
        assert "repro.gateway.server" in marked
        assert "repro.gateway.admission" in marked


# ----------------------------------------------------------------------
# Engine behaviour + CLI
# ----------------------------------------------------------------------


class TestEngine:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            analyze_paths([fixture("lock_violation.py")], ["NOPE999"])

    def test_findings_sorted(self):
        findings, _ = analyze_paths([FIXTURES])
        keys = [(f.path, f.line, f.rule_id) for f in findings]
        assert keys == sorted(keys)

    def test_to_json_shape(self):
        findings, _ = analyze_paths([fixture("lock_violation.py")])
        payload = findings[0].to_json()
        assert set(payload) == {"rule", "message", "path", "line", "severity"}


class TestCli:
    def test_shipped_tree_is_clean(self):
        assert analysis_main([SRC_REPRO]) == 0

    def test_fixtures_fail(self, capsys):
        assert analysis_main([FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "LOCK001" in out and "error(s)" in out

    def test_each_fixture_fails_alone(self):
        for name in sorted(os.listdir(FIXTURES)):
            if name.endswith(".py"):
                assert analysis_main([fixture(name)]) == 1, name

    def test_json_output(self, capsys):
        import json

        assert analysis_main([FIXTURES, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload
        assert {"rule", "path", "line"} <= set(payload[0])

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "LOCK001", "LOCK002", "LOCK003",
            "LAYOUT001", "LAYOUT002",
            "HOT001", "HOT002",
            "API001", "API002",
            "OBS001",
            "ROBUST001",
        ):
            assert rule_id in out

    def test_missing_path_exits_2(self, capsys):
        assert analysis_main(["does/not/exist"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_repro_check_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["check", FIXTURES]) == 1
        assert "LOCK001" in capsys.readouterr().out

# ----------------------------------------------------------------------
# Lockset race detection
# ----------------------------------------------------------------------


class TestRaceRule:
    def test_unlocked_write_from_thread_entry_flagged(self):
        path = fixture("race_violation.py")
        found = hits(findings_for("race_violation.py", ["RACE001"]))
        assert ("RACE001", line_of(path, "RACE001: no path holds")) in found

    def test_entry_origin_named_in_message(self):
        found = findings_for("race_violation.py", ["RACE001"])
        assert any("Thread(target=...)" in f.message for f in found)

    def test_syntactically_locked_write_not_flagged(self):
        path = fixture("race_violation.py")
        found = hits(findings_for("race_violation.py", ["RACE001"]))
        assert not any(
            line == line_of(path, "clean: syntactically under the lock")
            for _, line in found
        )

    def test_caller_held_lock_not_flagged(self):
        path = fixture("race_violation.py")
        found = hits(findings_for("race_violation.py", ["RACE001"]))
        assert not any(
            line == line_of(path, "clean: every caller path holds")
            for _, line in found
        )

    def test_only_the_unsafe_write_flagged(self):
        found = findings_for("race_violation.py", ["RACE001"])
        assert len(found) == 1


# ----------------------------------------------------------------------
# Global lock-order deadlock cycles
# ----------------------------------------------------------------------


class TestDeadlockRule:
    def test_static_inversion_reported_once(self):
        found = findings_for("deadlock_cycle.py", ["DEADLOCK001"])
        assert len(found) == 1  # one finding per distinct cycle
        message = found[0].message
        assert "lock-order cycle" in message
        assert "Pair._a" in message and "Pair._b" in message

    def test_both_legs_carry_static_witnesses(self):
        found = findings_for("deadlock_cycle.py", ["DEADLOCK001"])
        assert found[0].message.count("static witness") == 2

    def test_single_lock_method_contributes_no_cycle(self):
        # 'straight' acquires only _a; the one finding is the inversion.
        found = findings_for("deadlock_cycle.py", ["DEADLOCK001"])
        assert "straight" not in found[0].message


# ----------------------------------------------------------------------
# RPC exception-flow registry
# ----------------------------------------------------------------------


class TestExcFlowRule:
    def test_unregistered_raise_flagged(self):
        path = fixture("exc_violations.py")
        found = hits(findings_for("exc_violations.py", ["EXC001"]))
        assert (
            "EXC001",
            line_of(path, "EXC001: not in the codec registry"),
        ) in found

    def test_table_and_register_call_both_count(self):
        found = findings_for("exc_violations.py", ["EXC001"])
        assert len(found) == 1
        assert "UnknownError" in found[0].message

    def test_silent_without_registry_module(self, tmp_path):
        with open(fixture("exc_violations.py")) as handle:
            body = handle.read().replace("# zipg: exception-registry", "")
        cold = tmp_path / "no_registry.py"
        cold.write_text(body)
        findings, _ = analyze_paths([str(cold)], ["EXC001"])
        assert findings == []


# ----------------------------------------------------------------------
# Chaos-site coverage of raw I/O
# ----------------------------------------------------------------------


class TestChaosRule:
    def test_uncovered_truncate_and_fsync_flagged(self):
        path = fixture("chaos_gap.py")
        found = hits(findings_for("chaos_gap.py", ["CHAOS001"]))
        assert (
            "CHAOS001",
            line_of(path, "CHAOS001: fault injection cannot reach"),
        ) in found
        assert ("CHAOS001", line_of(path, "CHAOS001: same gap")) in found

    def test_hook_in_function_covers(self):
        path = fixture("chaos_gap.py")
        found = hits(findings_for("chaos_gap.py", ["CHAOS001"]))
        assert not any(
            line == line_of(path, "clean: hook in this function")
            for _, line in found
        )

    def test_covered_caller_covers_helper(self):
        path = fixture("chaos_gap.py")
        found = hits(findings_for("chaos_gap.py", ["CHAOS001"]))
        assert not any(
            line == line_of(path, "clean: every caller is chaos-covered")
            for _, line in found
        )

    def test_exactly_the_gap_flagged(self):
        found = findings_for("chaos_gap.py", ["CHAOS001"])
        assert len(found) == 2

    def test_not_flagged_without_robust_marker(self, tmp_path):
        with open(fixture("chaos_gap.py")) as handle:
            body = handle.read().replace("# zipg: robust-path", "")
        cold = tmp_path / "unmarked_module.py"
        cold.write_text(body)
        findings, _ = analyze_paths([str(cold)], ["CHAOS001"])
        assert findings == []


# ----------------------------------------------------------------------
# Suppression scopes: decorated functions, multi-line statements
# ----------------------------------------------------------------------


DECORATED_MODULE = '''\
"""Fixture."""
# zipg: public-api


def deco(fn: object) -> object:
    return fn


# zipg: ignore[API001]
@deco
def untyped_but_acknowledged(x):
    return x
'''

MULTILINE_DEF_MODULE = '''\
"""Fixture."""
# zipg: public-api


def spread(
    a,
    b,
):  # zipg: ignore[API001]
    return a
'''

class TestCopyRule:
    def test_full_tobytes_flagged(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        assert ("COPY001", line_of(path, "COPY001: whole-buffer")) in found

    def test_bytes_of_name_flagged(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        assert ("COPY001", line_of(path, "COPY001: copies the underlying")) in found

    def test_bytes_of_attribute_flagged(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        assert ("COPY001", line_of(path, "attribute arg is still")) in found

    def test_frombuffer_copy_flagged(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        assert (
            "COPY001",
            line_of(path, "np.frombuffer(payload, dtype=np.uint8).copy()"),
        ) in found

    def test_owned_copy_marker_suppresses(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        assert ("COPY001", line_of(path, "zipg: owned-copy")) not in found

    def test_generic_ignore_suppresses(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        assert ("COPY001", line_of(path, "zipg: ignore[COPY001]")) not in found

    def test_bounded_constructions_not_flagged(self):
        path = fixture("copy_violation.py")
        found = hits(findings_for("copy_violation.py", ["COPY001"]))
        for needle in ("allocation from an int", "slice arg", "ordered form"):
            assert ("COPY001", line_of(path, needle)) not in found

    def test_not_flagged_without_scope_marker(self, tmp_path):
        source = fixture("copy_violation.py")
        with open(source) as handle:
            body = handle.read().replace("# zipg: hot-path", "")
        module = tmp_path / "copy_violation.py"
        module.write_text(body)
        findings, _ = analyze_paths([str(module)], ["COPY001"])
        assert findings == []

    def test_storage_modules_are_in_scope(self):
        # The shipped serialization stack must carry explicit
        # owned-copy markers (CLI cleanliness already asserts zero
        # findings; this asserts the rule actually looks there).
        from repro.analysis.rules.copies import STORAGE_MODULES
        from repro.analysis.engine import load_module

        path = os.path.join(SRC_REPRO, "core", "persistence.py")
        assert load_module(path).name in STORAGE_MODULES


MULTILINE_STMT_MODULE = '''\
"""Fixture."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def good(self, amount):
        with self._lock:
            self._total += amount

    def bad(self, amount):
        self._total = (
            self._total
            + amount
        )  # zipg: ignore[LOCK001]
'''


class TestSuppressionScopes:
    def test_ignore_above_decorator_suppresses_function(self, tmp_path):
        module = tmp_path / "decorated.py"
        module.write_text(DECORATED_MODULE)
        findings, _ = analyze_paths([str(module)], ["API001"])
        assert findings == []

    def test_without_directive_decorated_function_flagged(self, tmp_path):
        module = tmp_path / "decorated.py"
        module.write_text(
            DECORATED_MODULE.replace("# zipg: ignore[API001]\n", "")
        )
        findings, _ = analyze_paths([str(module)], ["API001"])
        assert any("untyped_but_acknowledged" in f.message for f in findings)

    def test_ignore_on_multiline_def_closing_line(self, tmp_path):
        module = tmp_path / "spread.py"
        module.write_text(MULTILINE_DEF_MODULE)
        findings, _ = analyze_paths([str(module)], ["API001"])
        assert findings == []

    def test_ignore_on_multiline_statement_closing_line(self, tmp_path):
        module = tmp_path / "multiline.py"
        module.write_text(MULTILINE_STMT_MODULE)
        findings, _ = analyze_paths([str(module)], ["LOCK001"])
        assert findings == []

    def test_without_directive_multiline_statement_flagged(self, tmp_path):
        module = tmp_path / "multiline.py"
        module.write_text(
            MULTILINE_STMT_MODULE.replace("  # zipg: ignore[LOCK001]", "")
        )
        findings, _ = analyze_paths([str(module)], ["LOCK001"])
        assert len(findings) == 1


# ----------------------------------------------------------------------
# CLI: SARIF, --changed, --cache
# ----------------------------------------------------------------------


class TestCliExtensions:
    def test_sarif_output(self, capsys):
        import json

        assert analysis_main([FIXTURES, "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["results"], "expected findings from the fixture tree"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RACE001", "DEADLOCK001", "EXC001", "CHAOS001"} <= rule_ids
        result = run["results"][0]
        assert result["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] >= 1

    def test_changed_filters_to_listed_files(self, capsys, monkeypatch):
        import repro.analysis.__main__ as driver

        changed = os.path.relpath(fixture("race_violation.py"))
        monkeypatch.setattr(driver, "_changed_files", lambda base: [changed])
        assert analysis_main([FIXTURES, "--changed"]) == 1
        out = capsys.readouterr().out
        body, summary = out.rsplit("scanned ", 1)
        assert "race_violation.py" in body
        assert "deadlock_cycle.py" not in body
        assert "1 finding(s)" in summary

    def test_changed_with_nothing_relevant_passes(self, capsys, monkeypatch):
        import repro.analysis.__main__ as driver

        monkeypatch.setattr(driver, "_changed_files", lambda base: [])
        assert analysis_main([FIXTURES, "--changed"]) == 0

    def test_cache_roundtrip_same_findings(self, tmp_path, capsys):
        cache = str(tmp_path / "scan.pkl")
        assert analysis_main([FIXTURES, "--json", "--cache", cache]) == 1
        first = capsys.readouterr().out
        assert os.path.exists(cache)
        assert analysis_main([FIXTURES, "--json", "--cache", cache]) == 1
        assert capsys.readouterr().out == first

    def test_repro_check_forwards_new_flags(self, capsys):
        import json

        from repro.cli import main as cli_main

        assert cli_main(["check", FIXTURES, "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"]

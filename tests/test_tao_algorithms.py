"""Tests for the paper's Algorithms 1-3 (TAO queries on the ZipG API).

assoc_range (Alg. 1), assoc_get (Alg. 2) and assoc_time_range (Alg. 3)
are implemented on ``get_edge_record`` / ``get_time_range`` /
``get_edge_data`` exactly as in §4.2; these tests pin their semantics
against a hand-computed oracle, including limits, ranges and id2set
filtering -- on fresh data, on LogStore data, and across a freeze.
"""

import pytest

from repro.bench.systems import ZipGSystem
from repro.core import GraphData

NODE = 1
TYPE = 0
# (timestamp, destination) pairs, deliberately unsorted on insert.
EDGES = [(500, 20), (100, 10), (300, 15), (900, 30), (700, 25)]


def build_system():
    graph = GraphData()
    graph.add_node(NODE, {"name": "Alice"})
    for timestamp, destination in EDGES:
        graph.add_node(destination, {"name": f"n{destination}"})
        graph.add_edge(NODE, destination, TYPE, timestamp,
                       {"note": f"e{timestamp}"})
    return ZipGSystem.load(graph, num_shards=2, alpha=4)


@pytest.fixture
def system():
    return build_system()


SORTED_EDGES = sorted(EDGES)


class TestAlgorithm1AssocRange:
    def test_from_start_with_limit(self, system):
        out = system.edges_from_index(NODE, TYPE, 0, 2)
        assert [(e.timestamp, e.destination) for e in out] == SORTED_EDGES[:2]

    def test_mid_index(self, system):
        out = system.edges_from_index(NODE, TYPE, 2, 2)
        assert [(e.timestamp, e.destination) for e in out] == SORTED_EDGES[2:4]

    def test_unlimited(self, system):
        out = system.edges_from_index(NODE, TYPE, 1, None)
        assert [(e.timestamp, e.destination) for e in out] == SORTED_EDGES[1:]

    def test_limit_past_end_clamps(self, system):
        out = system.edges_from_index(NODE, TYPE, 3, 100)
        assert len(out) == 2

    def test_properties_included(self, system):
        out = system.edges_from_index(NODE, TYPE, 0, 1)
        assert out[0].properties == {"note": "e100"}

    def test_without_properties(self, system):
        out = system.edges_from_index(NODE, TYPE, 0, 1, with_properties=False)
        assert out[0].properties == {}

    def test_empty_record(self, system):
        assert system.edges_from_index(99, TYPE, 0, 10) == []


class TestAlgorithm2AssocGet:
    def test_filters_by_id2set_and_range(self, system):
        out = system.assoc_get(NODE, TYPE, {10, 25, 30}, 200, 800)
        assert [(e.timestamp, e.destination) for e in out] == [(700, 25)]

    def test_full_range_wildcards(self, system):
        out = system.assoc_get(NODE, TYPE, {10, 30}, None, None)
        assert [(e.timestamp, e.destination) for e in out] == [(100, 10), (900, 30)]

    def test_empty_id2set(self, system):
        assert system.assoc_get(NODE, TYPE, set(), None, None) == []

    def test_generic_fallback_matches_native(self, system):
        from repro.workloads.base import assoc_get_generic

        native = system.assoc_get(NODE, TYPE, {15, 20}, 200, 600)
        generic = [
            e for e in system.edges_in_time_range(NODE, TYPE, 200, 600)
            if e.destination in {15, 20}
        ]
        assert [(e.timestamp, e.destination) for e in native] == [
            (e.timestamp, e.destination) for e in generic
        ]
        via_helper = assoc_get_generic(system, NODE, TYPE, {15, 20}, 200, 600)
        assert [(e.timestamp, e.destination) for e in via_helper] == [
            (e.timestamp, e.destination) for e in native
        ]


class TestAlgorithm3AssocTimeRange:
    def test_basic_window(self, system):
        out = system.edges_in_time_range(NODE, TYPE, 200, 800)
        assert [(e.timestamp, e.destination) for e in out] == [
            (300, 15), (500, 20), (700, 25),
        ]

    def test_limit_truncates(self, system):
        out = system.edges_in_time_range(NODE, TYPE, 200, 800, limit=2)
        assert [(e.timestamp, e.destination) for e in out] == [(300, 15), (500, 20)]

    def test_inclusive_low_exclusive_high(self, system):
        out = system.edges_in_time_range(NODE, TYPE, 300, 700)
        assert [e.timestamp for e in out] == [300, 500]

    def test_empty_window(self, system):
        assert system.edges_in_time_range(NODE, TYPE, 901, 10_000) == []


class TestAcrossUpdatesAndFreezes:
    def test_appends_merge_into_time_order(self, system):
        system.append_edge(NODE, TYPE, 40, timestamp=400)
        out = system.edges_from_index(NODE, TYPE, 0, None, with_properties=False)
        assert [e.timestamp for e in out] == [100, 300, 400, 500, 700, 900]

    def test_algorithms_after_freeze(self, system):
        system.append_edge(NODE, TYPE, 40, timestamp=400)
        system.store.freeze_logstore()
        out = system.edges_in_time_range(NODE, TYPE, 350, 550, with_properties=False)
        assert [(e.timestamp, e.destination) for e in out] == [(400, 40), (500, 20)]
        assert system.edge_count(NODE, TYPE) == 6

    def test_deleted_edges_excluded_from_all_algorithms(self, system):
        system.delete_edge(NODE, TYPE, 20)
        assert system.edge_count(NODE, TYPE) == 4
        out = system.edges_from_index(NODE, TYPE, 0, None, with_properties=False)
        assert 20 not in [e.destination for e in out]
        out = system.edges_in_time_range(NODE, TYPE, None, None, with_properties=False)
        assert [e.timestamp for e in out] == [100, 300, 700, 900]

"""Integration tests for the ZipG store (Table 1 API, fanned updates)."""

import pytest

from repro.core import GraphData, NodeNotFound, ZipG, WILDCARD


def build_graph():
    graph = GraphData()
    people = {
        1: {"name": "Alice", "city": "Ithaca", "likes": "Music"},
        2: {"name": "Bob", "city": "Boston"},
        3: {"name": "Carol", "city": "Ithaca"},
        4: {"name": "Dan", "city": "Chicago", "likes": "Music"},
        5: {"name": "Eve", "city": "Ithaca", "likes": "Films"},
    }
    for node_id, properties in people.items():
        graph.add_node(node_id, properties)
    # friendships (type 0) and likes (type 1)
    graph.add_edge(1, 2, 0, 100)
    graph.add_edge(1, 3, 0, 200, {"strength": "5"})
    graph.add_edge(1, 5, 0, 300)
    graph.add_edge(2, 1, 0, 100)
    graph.add_edge(3, 4, 0, 50)
    graph.add_edge(1, 4, 1, 400)
    return graph


@pytest.fixture
def store():
    return ZipG.compress(build_graph(), num_shards=2, alpha=4)


class TestNodeQueries:
    def test_get_node_property_wildcard(self, store):
        assert store.get_node_property(1) == {
            "name": "Alice",
            "city": "Ithaca",
            "likes": "Music",
        }

    def test_get_node_property_subset(self, store):
        assert store.get_node_property(1, ["city"]) == {"city": "Ithaca"}
        assert store.get_node_property(2, "name") == {"name": "Bob"}

    def test_missing_node(self, store):
        with pytest.raises(NodeNotFound):
            store.get_node_property(42)
        assert not store.has_node(42)

    def test_get_node_ids(self, store):
        assert store.get_node_ids({"city": "Ithaca"}) == [1, 3, 5]
        assert store.get_node_ids({"city": "Ithaca", "likes": "Music"}) == [1]
        assert store.get_node_ids({"city": "Nowhere"}) == []

    def test_get_neighbor_ids(self, store):
        assert store.get_neighbor_ids(1, 0) == [2, 3, 5]  # time order
        assert store.get_neighbor_ids(1, WILDCARD) == [2, 3, 5, 4]

    def test_get_neighbor_ids_with_filter(self, store):
        # "Friends of Alice who live in Ithaca" (the paper's running example)
        assert store.get_neighbor_ids(1, 0, {"city": "Ithaca"}) == [3, 5]
        assert store.get_neighbor_ids(1, 0, {"city": "Mars"}) == []


class TestEdgeQueries:
    def test_edge_record_and_data(self, store):
        record = store.get_edge_record(1, 0)
        assert record.edge_count == 3
        data = store.get_edge_data(record, 1)
        assert data.destination == 3
        assert data.timestamp == 200
        assert data.properties == {"strength": "5"}

    def test_edge_record_missing(self, store):
        record = store.get_edge_record(1, 9)
        assert record.is_empty

    def test_edge_range(self, store):
        record = store.get_edge_record(1, 0)
        assert store.get_edge_range(record, 150, 350) == (1, 3)
        assert store.get_edge_range(record) == (0, 3)

    def test_wildcard_record_merges_types(self, store):
        record = store.get_edge_record(1, WILDCARD)
        assert record.edge_count == 4
        assert sorted(record.destinations()) == [2, 3, 4, 5]


class TestUpdates:
    def test_append_node_visible(self, store):
        store.append_node(10, {"name": "Frank", "city": "Ithaca"})
        assert store.get_node_property(10, "name") == {"name": "Frank"}
        assert 10 in store.get_node_ids({"city": "Ithaca"})

    def test_append_edge_visible(self, store):
        store.append_edge(2, 0, 5, timestamp=999)
        assert store.get_neighbor_ids(2, 0) == [1, 5]
        record = store.get_edge_record(2, 0)
        assert record.edge_count == 2
        assert record.timestamp_at(1) == 999

    def test_update_node(self, store):
        store.update_node(2, {"name": "Bob", "city": "Ithaca"})
        assert store.get_node_property(2, "city") == {"city": "Ithaca"}
        assert 2 in store.get_node_ids({"city": "Ithaca"})
        assert 2 not in store.get_node_ids({"city": "Boston"})

    def test_delete_node(self, store):
        assert store.delete_node(3)
        assert not store.has_node(3)
        with pytest.raises(NodeNotFound):
            store.get_node_property(3)
        assert 3 not in store.get_node_ids({"city": "Ithaca"})
        # Neighbor filters skip deleted destinations.
        assert store.get_neighbor_ids(1, 0, {"city": "Ithaca"}) == [5]

    def test_delete_edge(self, store):
        assert store.delete_edge(1, 0, 3) == 1
        assert store.get_neighbor_ids(1, 0) == [2, 5]
        record = store.get_edge_record(1, 0)
        assert record.edge_count == 2

    def test_delete_missing_edge(self, store):
        assert store.delete_edge(1, 0, 999) == 0

    def test_update_edge(self, store):
        store.update_edge(1, 0, 3, timestamp=777, properties={"strength": "9"})
        record = store.get_edge_record(1, 0)
        assert record.edge_count == 3
        index = [record.destination_at(i) for i in range(3)].index(3)
        assert record.timestamp_at(index) == 777
        assert record.data_at(index).properties == {"strength": "9"}

    def test_new_property_id_via_extra(self):
        store = ZipG.compress(
            build_graph(), num_shards=2, alpha=4, extra_property_ids=["zip"]
        )
        store.append_node(11, {"zip": "14850"})
        assert store.get_node_ids({"zip": "14850"}) == [11]


class TestFreezeAndFragmentation:
    def test_freeze_on_threshold(self):
        store = ZipG.compress(
            build_graph(), num_shards=2, alpha=4, logstore_threshold_bytes=200
        )
        initial = store.num_shards
        for i in range(30):
            store.append_edge(1, 0, 100 + i, timestamp=1000 + i)
        assert store.freeze_count > 0
        assert store.num_shards > initial

    def test_data_survives_freeze(self):
        store = ZipG.compress(
            build_graph(), num_shards=2, alpha=4, logstore_threshold_bytes=150
        )
        for i in range(20):
            store.append_edge(1, 0, 100 + i, timestamp=1000 + i)
        store.freeze_logstore()
        record = store.get_edge_record(1, 0)
        assert record.edge_count == 3 + 20
        destinations = record.destinations()
        assert destinations[:3] == [2, 3, 5]
        assert set(destinations[3:]) == {100 + i for i in range(20)}

    def test_node_appends_survive_freeze(self, store):
        store.append_node(50, {"name": "Grace", "city": "Ithaca"})
        store.freeze_logstore()
        assert store.get_node_property(50, "name") == {"name": "Grace"}
        assert 50 in store.get_node_ids({"city": "Ithaca"})

    def test_update_across_freeze_resolves_newest(self, store):
        store.update_node(2, {"name": "Bob", "city": "Ithaca"})
        store.freeze_logstore()
        store.update_node(2, {"name": "Bob", "city": "Chicago"})
        assert store.get_node_property(2, "city") == {"city": "Chicago"}
        store.freeze_logstore()
        assert store.get_node_property(2, "city") == {"city": "Chicago"}

    def test_fragment_count_grows(self, store):
        assert store.node_fragment_count(1) == 1
        store.append_edge(1, 0, 200, timestamp=5000)
        assert store.node_fragment_count(1) == 2  # home + active logstore
        store.freeze_logstore()
        assert store.node_fragment_count(1) == 2  # home + frozen shard
        store.append_edge(1, 0, 201, timestamp=5001)
        assert store.node_fragment_count(1) == 3

    def test_merged_record_time_range_across_fragments(self, store):
        store.append_edge(1, 0, 200, timestamp=150)  # interleaves
        store.freeze_logstore()
        record = store.get_edge_record(1, 0)
        assert record.edge_count == 4
        assert [record.timestamp_at(i) for i in range(4)] == [100, 150, 200, 300]
        assert record.time_range(120, 250) == (1, 3)

    def test_empty_freeze_is_noop_shardwise(self, store):
        before = store.num_shards
        store.freeze_logstore()
        assert store.num_shards == before


class TestFootprintAndStats:
    def test_footprint_positive(self, store):
        assert store.storage_footprint_bytes() > 0

    def test_stats_accumulate_and_reset(self, store):
        store.reset_stats()
        store.get_node_property(1)
        stats = store.aggregate_stats()
        assert stats.random_accesses > 0
        store.reset_stats()
        assert store.aggregate_stats().random_accesses == 0

    def test_compress_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ZipG.compress(build_graph(), num_shards=0)


class TestDeleteReappendRegression:
    def test_reappended_edge_does_not_resurrect_older_duplicates(self, store):
        """Regression: deleting (src, type, dst) and then appending the
        same edge again must yield exactly one live copy -- tombstone-
        keyed deletion in the LogStore used to revive the old one."""
        store.append_edge(0, 0, 0, timestamp=0)
        store.delete_edge(0, 0, 0)
        store.append_edge(0, 0, 0, timestamp=0)
        assert store.get_neighbor_ids(0, 0) == [0]
        assert store.get_edge_record(0, 0).edge_count == 1

    def test_same_pattern_across_a_freeze(self, store):
        store.append_edge(2, 1, 5, timestamp=10)
        store.freeze_logstore()
        store.delete_edge(2, 1, 5)
        store.append_edge(2, 1, 5, timestamp=20)
        record = store.get_edge_record(2, 1)
        assert record.edge_count == 1
        assert record.timestamp_at(0) == 20

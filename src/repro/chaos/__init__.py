"""``repro.chaos``: deterministic fault injection (see ISSUE §robustness).

Production modules call the free functions here at named *sites*; with
no injector installed every call is a cheap no-op, so the query and
persistence hot paths pay a single ``is None`` check.  Tests install a
seeded :class:`ChaosInjector` to turn specific sites into exceptions,
latency spikes, torn writes, or simulated process crashes::

    from repro import chaos

    with chaos.injected(chaos.ChaosInjector(seed=7, rules=[
        chaos.FaultRule(site=chaos.SITE_REPLICA_CALL,
                        match={"server": 1}, fault="error"),
    ])):
        cluster.get_node_ids({"city": "Ithaca"})   # server 1 now fails

Site names are dotted and stable (constants below); rules match them
with ``fnmatch`` patterns, so ``"save.*"`` covers every crash point in
:func:`repro.core.persistence.save_store`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import IO, Iterator, Optional

from repro.chaos.injector import (
    ChaosInjector,
    FaultInjected,
    FaultRule,
    SimulatedCrash,
)

__all__ = [
    "ChaosInjector",
    "FaultInjected",
    "FaultRule",
    "SimulatedCrash",
    "SITE_EC_DECODE",
    "SITE_EC_ENCODE",
    "SITE_EC_REBUILD",
    "SITE_EXECUTOR_CALL",
    "SITE_GATEWAY_ADMIT",
    "SITE_GATEWAY_DISPATCH",
    "SITE_REPLICA_CALL",
    "SITE_RPC_HANDLE",
    "SITE_RPC_RECV",
    "SITE_RPC_SEND",
    "SITE_SAVE_WRITE",
    "SITE_WAL_WRITE",
    "active",
    "crash_point",
    "injected",
    "install",
    "kick",
    "uninstall",
    "write_bytes",
]

#: Erasure reconstruction of a snapshot file from fragments (tags:
#: ``file``).  An ``error`` rule makes the degraded read fail over to
#: the partial-result path; a ``latency`` rule models slow decodes.
SITE_EC_DECODE = "ec.decode"
#: Erasure-coded fragment write during initial encode (tags: ``file``,
#: ``fragment``).  ``torn_write`` rules tear a fragment on disk; the
#: CRC'd read path must then treat it as an erasure.
SITE_EC_ENCODE = "ec.encode"
#: Fragment re-creation onto a recovering server (tags: ``file``,
#: ``fragment``, ``server``).  ``crash`` rules kill the rebuild
#: mid-flight -- the server must stay held out and the next
#: ``recover_server`` must converge.
SITE_EC_REBUILD = "ec.rebuild"
#: Executor work-item invocation (tags: ``index``, ``attempt``).
SITE_EXECUTOR_CALL = "executor.shard_call"
#: Gateway admission decision (tags: ``tenant``, ``method``).  An
#: ``error`` rule here makes admission itself fail -- the shed path
#: under fault injection -- and a ``crash`` rule kills the gateway.
SITE_GATEWAY_ADMIT = "gateway.admit"
#: Gateway backend dispatch, just before the awaitable submission to
#: the cluster/transport (tags: ``tenant``, ``method``).
SITE_GATEWAY_DISPATCH = "gateway.dispatch"
#: Replicated-cluster per-replica call (tags: ``shard``, ``server``).
SITE_REPLICA_CALL = "replication.replica_call"
#: RPC frame send (tags: ``method``, ``server``). A ``torn_write``
#: rule models a peer dying mid-frame: a prefix of the frame reaches
#: the socket and the sender crashes.
SITE_RPC_SEND = "rpc.send"
#: RPC frame receive (tags: ``method``, ``server``). ``error`` rules
#: (e.g. ``error=ConnectionResetError``) model resets mid-call.
SITE_RPC_RECV = "rpc.recv"
#: Server-side RPC request execution (tags: ``method``, ``server``).
SITE_RPC_HANDLE = "rpc.handle"
#: Snapshot data-file write (tags: ``file``).
SITE_SAVE_WRITE = "save.write"
#: WAL record write (tags: ``lsn``).
SITE_WAL_WRITE = "wal.write"

_LOCK = threading.Lock()
_INJECTOR: Optional[ChaosInjector] = None


def install(injector: ChaosInjector) -> ChaosInjector:
    """Make ``injector`` the process-wide active injector."""
    global _INJECTOR
    with _LOCK:
        _INJECTOR = injector
    return injector


def uninstall() -> None:
    """Remove the active injector (all sites become no-ops again)."""
    global _INJECTOR
    with _LOCK:
        _INJECTOR = None


def active() -> Optional[ChaosInjector]:
    """The currently installed injector, if any."""
    return _INJECTOR


@contextmanager
def injected(injector: ChaosInjector) -> Iterator[ChaosInjector]:
    """Install ``injector`` for the duration of the ``with`` block."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


# ----------------------------------------------------------------------
# Site hooks (no-ops unless an injector is installed)
# ----------------------------------------------------------------------


def kick(site: str, **tags: object) -> None:
    """Maybe inject latency / an exception / a crash at ``site``."""
    injector = _INJECTOR
    if injector is not None:
        injector.kick(site, **tags)


def crash_point(site: str, **tags: object) -> None:
    """Maybe die (raise :class:`SimulatedCrash`) at ``site``."""
    injector = _INJECTOR
    if injector is not None:
        injector.crash_point(site, **tags)


def write_bytes(site: str, handle: IO[bytes], data: bytes, **tags: object) -> None:
    """Write ``data`` to ``handle``, subject to torn-write faults."""
    injector = _INJECTOR
    if injector is not None:
        injector.write_bytes(site, handle, data, **tags)
    else:
        handle.write(data)

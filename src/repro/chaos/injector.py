"""Deterministic fault injection for the ZipG failure paths.

The store's durability and degraded-query code is only trustworthy if
every failure branch is *executed* by tests, not merely written.  This
module provides the machinery: production code declares named **sites**
(``chaos.kick("executor.shard_call", ...)``, ``chaos.crash_point(
"save.committed")``, ``chaos.write_bytes("wal.write", handle, data)``)
that are free no-ops until a test installs a :class:`ChaosInjector`.

An injector is a seeded RNG plus a list of :class:`FaultRule`\\ s.  Each
rule matches sites by ``fnmatch`` pattern (optionally filtered on site
tags), gates on a deterministic probability / hit window, and injects
one of four faults:

* ``"error"``   -- raise an exception (default :class:`FaultInjected`);
* ``"latency"`` -- sleep ``latency_s`` seconds (a latency spike);
* ``"crash"``   -- raise :class:`SimulatedCrash`, the process-kill
  model (a ``BaseException`` so ordinary retry/except-Exception
  handlers cannot accidentally swallow a "kill -9");
* ``"torn_write"`` -- at a :func:`write_bytes` site, persist only a
  prefix of the payload and then crash (a write torn mid-flight).

Determinism: with the same seed, rules, and sequence of site hits, the
same faults fire.  All bookkeeping is lock-guarded because the
executor fans sites out across threads.
"""

from __future__ import annotations

import fnmatch
import random
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple

from repro import obs
from repro.core.errors import ZipGError


class SimulatedCrash(BaseException):
    """The injected process-kill: everything not yet durable is gone.

    Deliberately *not* an :class:`Exception` subclass -- retry loops and
    ``except Exception`` handlers must not be able to survive it, just
    as no handler survives ``kill -9``."""


class FaultInjected(ZipGError):
    """Default exception raised by ``fault="error"`` rules."""


@dataclass
class FaultRule:
    """One matching rule: where, what, and how often to inject.

    Args:
        site: ``fnmatch`` pattern over site names (``"save.*"``).
        fault: ``"error"``, ``"latency"``, ``"crash"``, ``"torn_write"``.
        probability: chance of firing per matching hit (seeded RNG).
        after: skip the first ``after`` matching hits.
        times: fire at most this many times (``None`` -- unlimited).
        match: tag equality filters, e.g. ``{"server": 1}`` fires only
            at hits carrying that tag value.
        error: exception *instance or class* for ``"error"`` faults.
        latency_s: sleep duration for ``"latency"`` faults.
        keep_bytes: for ``"torn_write"``, how many payload bytes reach
            disk before the crash (``None`` -- a seeded random prefix).
    """

    site: str
    fault: str = "error"
    probability: float = 1.0
    after: int = 0
    times: Optional[int] = None
    match: Optional[Dict[str, object]] = None
    error: Optional[object] = None
    latency_s: float = 0.0
    keep_bytes: Optional[int] = None

    # Internal (mutated under the injector's lock).
    hits: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.fault not in ("error", "latency", "crash", "torn_write"):
            raise ValueError(f"unknown fault kind {self.fault!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches(self, site: str, tags: Dict[str, object]) -> bool:
        if not fnmatch.fnmatchcase(site, self.site):
            return False
        if self.match:
            for key, value in self.match.items():
                if tags.get(key) != value:
                    return False
        return True

    def make_error(self) -> BaseException:
        if self.error is None:
            return FaultInjected(f"injected fault at {self.site!r}")
        if isinstance(self.error, BaseException):
            return self.error
        if isinstance(self.error, type) and issubclass(self.error, BaseException):
            return self.error(f"injected fault at {self.site!r}")
        raise TypeError(f"error must be an exception, got {self.error!r}")


class ChaosInjector:
    """A seeded set of fault rules, installable via :func:`install`.

    The injector is shared across threads; rule bookkeeping (hit
    counters, fire caps, the RNG) is serialized under one lock so a
    given seed yields one deterministic fault schedule per site-hit
    order."""

    def __init__(self, seed: int = 0, rules: Optional[List[FaultRule]] = None) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules or [])
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._log: List[Tuple[str, str]] = []

    def add_rule(self, rule: FaultRule) -> FaultRule:
        with self._lock:
            self.rules.append(rule)
        return rule

    @property
    def injection_log(self) -> List[Tuple[str, str]]:
        """``(site, fault)`` pairs actually fired, in order."""
        with self._lock:
            return list(self._log)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _due(self, site: str, tags: Dict[str, object]) -> List[FaultRule]:
        """Rules that fire at this hit (bookkeeping updated)."""
        due: List[FaultRule] = []
        with self._lock:
            for rule in self.rules:
                if not rule.matches(site, tags):
                    continue
                rule.hits += 1
                if rule.hits <= rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                self._log.append((site, rule.fault))
                due.append(rule)
        for rule in due:
            obs.counter(
                "zipg_chaos_injections_total",
                help="faults injected by repro.chaos, by kind",
                labels={"fault": rule.fault},
            ).inc()
        return due

    def kick(self, site: str, **tags: object) -> None:
        """Fire latency / error / crash faults due at ``site``.

        Latency fires first (a slow call can still fail), then a crash
        beats an error (the process dies before it can raise)."""
        due = self._due(site, tags)
        error: Optional[BaseException] = None
        crash = False
        for rule in due:
            if rule.fault == "latency":
                time.sleep(rule.latency_s)
            elif rule.fault == "crash":
                crash = True
            elif rule.fault == "error":
                error = rule.make_error()
        if crash:
            raise SimulatedCrash(f"simulated crash at {site!r}")
        if error is not None:
            raise error

    def crash_point(self, site: str, **tags: object) -> None:
        """A named crash point: dies here iff a crash rule is due."""
        for rule in self._due(site, tags):
            if rule.fault == "crash":
                raise SimulatedCrash(f"simulated crash at {site!r}")

    def write_bytes(self, site: str, handle: IO[bytes], data: bytes,
                    **tags: object) -> None:
        """Write ``data`` to ``handle``; a due ``torn_write`` rule
        persists only a prefix and then crashes, a due ``crash`` rule
        crashes before any byte lands."""
        for rule in self._due(site, tags):
            if rule.fault == "crash":
                raise SimulatedCrash(f"simulated crash at {site!r}")
            if rule.fault == "torn_write":
                if rule.keep_bytes is not None:
                    keep = max(0, min(len(data), rule.keep_bytes))
                else:
                    with self._lock:
                        keep = self._rng.randrange(len(data)) if data else 0
                handle.write(data[:keep])
                handle.flush()
                raise SimulatedCrash(
                    f"torn write at {site!r}: {keep}/{len(data)} bytes persisted"
                )
        handle.write(data)

"""ZipG reproduction: a memory-efficient graph store for interactive queries.

A pure-Python reimplementation of ZipG (Khandelwal et al., SIGMOD 2017)
and every substrate it depends on:

* :mod:`repro.succinct` -- Succinct-style compressed flat-file and
  key-value stores (sampled suffix arrays + NPA).
* :mod:`repro.core` -- ZipG itself: NodeFile/EdgeFile layouts, the
  compressed graph store API, the LogStore, and fanned updates.
* :mod:`repro.cluster` -- sharding, aggregators and function shipping.
* :mod:`repro.baselines` -- Neo4j-like pointer store and Titan-like
  KV-on-LSM store used as evaluation baselines.
* :mod:`repro.workloads` -- TAO, LinkBench, Graph Search, regular path
  query and traversal workloads.
* :mod:`repro.bench` -- dataset registry, memory model and the harness
  that regenerates every table and figure of the paper.
"""

__version__ = "1.0.0"

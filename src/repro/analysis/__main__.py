"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 when any ERROR-severity finding survives
suppression, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

from repro.analysis.engine import (
    Finding,
    Severity,
    all_rules,
    analyze_paths,
)
from repro.analysis.runtime import load_lock_trace

DEFAULT_PATHS = ["src/repro"]

#: SARIF severity levels by finding severity.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="ZipG repo-specific static checker (lock discipline, "
        "race/deadlock/exception-flow analysis, byte-layout invariants, "
        "hot-path regressions, API hygiene).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to scan (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="BASE",
        help="report only findings in files changed relative to the given "
        "git revision (default BASE: HEAD; includes staged and untracked "
        "files).  The full path set is still scanned so whole-program "
        "rules keep their caller/registry context -- combine with "
        "--cache to make the scan cheap",
    )
    parser.add_argument(
        "--lock-trace",
        action="append",
        default=[],
        metavar="PATH",
        help="runtime lock-order trace (LockOrderRecorder.save output) "
        "to merge into DEADLOCK001's order graph; repeatable",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help="pickle file caching parsed-module scans keyed by content "
        "hash (speeds up repeated runs; safe to delete any time)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _changed_files(base: str) -> List[str]:
    """Repo-relative paths changed vs ``base``, plus untracked files."""
    diff = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
        capture_output=True,
        text=True,
        check=True,
    )
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        capture_output=True,
        text=True,
        check=True,
    )
    names = set(diff.stdout.splitlines()) | set(untracked.stdout.splitlines())
    return sorted(name for name in names if name.endswith(".py"))


def _scope_to_changed(paths: List[str], base: str) -> List[str]:
    """The changed files that live under one of ``paths``."""
    roots = [os.path.abspath(path) for path in paths]
    scoped = []
    for name in _changed_files(base):
        if not os.path.exists(name):
            continue
        target = os.path.abspath(name)
        for root in roots:
            if target == root or target.startswith(root + os.sep):
                scoped.append(name)
                break
    return scoped


def _to_sarif(findings: List[Finding]) -> Dict[str, object]:
    rules = [
        {
            "id": spec.rule_id,
            "shortDescription": {"text": spec.description},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(spec.severity, "warning")
            },
        }
        for spec in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace(os.sep, "/"),
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for spec in all_rules():
            print(f"{spec.rule_id} [{spec.severity.value}] {spec.description}")
        return 0

    output = options.format or ("json" if options.json else "text")

    rule_ids = None
    if options.rules:
        rule_ids = [part.strip() for part in options.rules.split(",") if part.strip()]

    paths = list(options.paths)
    changed_filter: Optional[List[str]] = None
    if options.changed is not None:
        try:
            changed_filter = _scope_to_changed(paths, options.changed)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"error: --changed requires git: {exc}", file=sys.stderr)
            return 2

    lock_traces: List[Dict[str, object]] = []
    for trace_path in options.lock_trace:
        try:
            lock_traces.extend(load_lock_trace(trace_path))
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {trace_path}: {exc}", file=sys.stderr)
            return 2

    try:
        findings, context = analyze_paths(
            paths,
            rule_ids,
            lock_traces=lock_traces or None,
            cache_path=options.cache,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2

    if changed_filter is not None:
        wanted = {os.path.abspath(name) for name in changed_filter}
        findings = [
            finding
            for finding in findings
            if os.path.abspath(finding.path) in wanted
        ]

    if output == "json":
        print(json.dumps([finding.to_json() for finding in findings], indent=2))
    elif output == "sarif":
        print(json.dumps(_to_sarif(findings), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        print(
            f"scanned {len(context.modules)} modules: "
            f"{len(findings)} finding(s), {errors} error(s)"
        )

    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())

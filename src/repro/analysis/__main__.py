"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 when any ERROR-severity finding survives
suppression, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.engine import Severity, all_rules, analyze_paths

DEFAULT_PATHS = ["src/repro"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="ZipG repo-specific static checker (lock discipline, "
        "byte-layout invariants, hot-path regressions, API hygiene).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to scan (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of human-readable lines",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for spec in all_rules():
            print(f"{spec.rule_id} [{spec.severity.value}] {spec.description}")
        return 0

    rule_ids = None
    if options.rules:
        rule_ids = [part.strip() for part in options.rules.split(",") if part.strip()]

    try:
        findings, context = analyze_paths(list(options.paths), rule_ids)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2

    if options.json:
        print(json.dumps([finding.to_json() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        print(
            f"scanned {len(context.modules)} modules: "
            f"{len(findings)} finding(s), {errors} error(s)"
        )

    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())

"""repro.analysis: repo-specific static checks for the ZipG reproduction.

The compressed-store code is correct only while a set of conventions
hold that no general-purpose linter knows about: which locks guard
which shared state, which byte-layout constants the NodeFile/EdgeFile
writers and parsers must agree on (ZipG paper §3.3), which code paths
must never fall back to scalar NPA walks, and how the public API
surfaces errors. This package is an AST-based rule engine enforcing
those conventions on every commit:

* ``LOCK001``/``LOCK002``/``LOCK003`` -- lock discipline (see
  :mod:`repro.analysis.rules.locks`);
* ``LAYOUT001``/``LAYOUT002`` -- byte-layout invariants
  (:mod:`repro.analysis.rules.layout`);
* ``HOT001``/``HOT002`` -- hot-path kernel lint
  (:mod:`repro.analysis.rules.hotpath`);
* ``API001``/``API002`` -- API hygiene
  (:mod:`repro.analysis.rules.hygiene`).

Run it as ``python -m repro.analysis [paths...]`` or ``repro check``.
Suppress a finding with a ``# zipg: ignore[RULE]`` comment; sanction a
deliberate scalar kernel with ``# zipg: scalar-ok``; see
``docs/ANALYSIS.md`` for the full marker vocabulary.

:mod:`repro.analysis.runtime` complements the static pass with an
instrumented-lock harness used by tests as a lightweight race detector.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    ModuleInfo,
    Severity,
    all_rules,
    analyze_paths,
    rule,
)

__all__ = [
    "AnalysisContext",
    "Finding",
    "ModuleInfo",
    "Severity",
    "all_rules",
    "analyze_paths",
    "rule",
]

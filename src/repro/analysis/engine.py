"""Rule engine: module model, rule registry, suppression, reporting.

A rule is a function ``(AnalysisContext) -> Iterable[Finding]``
registered with the :func:`rule` decorator.  The engine parses every
``.py`` file under the requested paths once, builds the shared
:class:`AnalysisContext` (module ASTs, marker indexes, function spans,
and a lazily-built call graph), runs each registered rule, and filters
findings through the ``# zipg: ignore[RULE]`` suppression machinery.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import sys
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.markers import (
    Directive,
    MarkerIndex,
    function_directives,
    index_markers,
)


class Severity(Enum):
    """Finding severity; only errors affect the exit code."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    message: str
    path: str
    line: int
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.severity.value}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
        }


@dataclass
class FunctionRecord:
    """One function or method in a scanned module."""

    module: "ModuleInfo"
    node: ast.FunctionDef
    qualname: str
    class_name: Optional[str]
    nested: bool = False  # defined inside another function's body

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualkey(self) -> str:
        """Globally unique key: ``<module>:<qualname>``."""
        return f"{self.module.name}:{self.qualname}"

    @property
    def start_line(self) -> int:
        """First physical line of the definition, decorators included."""
        decorators = [d.lineno for d in self.node.decorator_list]
        return min(decorators + [self.node.lineno])

    @property
    def end_line(self) -> int:
        return self.node.end_lineno or self.node.lineno

    def directives(self) -> List[Directive]:
        return function_directives(
            self.module.markers,
            self.module.lines,
            self.node.lineno,
            decorator_line=self.start_line,
        )

    def has_directive(self, name: str) -> bool:
        return any(d.name == name for d in self.directives())

    def directive_args(self, name: str) -> List[str]:
        args: List[str] = []
        for directive in self.directives():
            if directive.name == name:
                args.extend(directive.args)
        return args


@dataclass
class ModuleInfo:
    """A parsed module plus everything rules need to inspect it."""

    path: str
    name: str
    source: str
    lines: List[str]
    tree: ast.Module
    markers: MarkerIndex
    functions: List[FunctionRecord] = field(default_factory=list)
    classes: List[ast.ClassDef] = field(default_factory=list)
    _statement_spans: Optional[List[Tuple[int, int]]] = None

    @property
    def is_hot(self) -> bool:
        """Module opted into the hot-path kernel lint."""
        return self.markers.module_has("hot-path")

    @property
    def is_public_api(self) -> bool:
        """Module subject to the public-API hygiene rules."""
        if self.markers.module_has("public-api"):
            return True
        return self.name.startswith(("repro.core.", "repro.succinct."))

    @property
    def is_core_layout(self) -> bool:
        """Module subject to the reserved-byte layout rule: anything in
        ``repro.core`` or importing the delimiter constants."""
        if self.name.startswith("repro.core."):
            return True
        return any(
            isinstance(node, ast.ImportFrom)
            and node.module == "repro.core.delimiters"
            for node in ast.walk(self.tree)
        )

    def enclosing_function(self, line: int) -> Optional[FunctionRecord]:
        """Innermost function whose span (decorators included) contains
        ``line``."""
        best: Optional[FunctionRecord] = None
        for record in self.functions:
            if record.start_line <= line <= record.end_line:
                if best is None or record.start_line >= best.start_line:
                    best = record
        return best

    def statement_span(self, line: int) -> Tuple[int, int]:
        """Physical span of the innermost statement containing ``line``.

        Simple statements span their full (possibly multi-line) extent;
        compound statements (``if``/``with``/``for``/``def``...)
        contribute only their header lines, so a suppression marker on
        the last line of a block never silences the whole block.
        """
        if self._statement_spans is None:
            spans: List[Tuple[int, int]] = []
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                end = node.end_lineno or node.lineno
                body = getattr(node, "body", None)
                if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                    # Compound statement: header only.
                    first_body = min(child.lineno for child in body)
                    end = max(node.lineno, first_body - 1) if (
                        first_body > node.lineno
                    ) else node.lineno
                spans.append((node.lineno, end))
            self._statement_spans = sorted(spans)
        best = (line, line)
        best_size = None
        for start, end in self._statement_spans:
            if start <= line <= end:
                size = end - start
                if best_size is None or size <= best_size:
                    best, best_size = (start, end), size
        return best

    def delimiter_imports(self) -> List[str]:
        """Names imported from ``repro.core.delimiters``."""
        names: List[str] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.core.delimiters":
                names.extend(alias.asname or alias.name for alias in node.names)
        return names


@dataclass
class AnalysisContext:
    """Everything the rules see: all scanned modules plus shared
    lazily-built indexes (the call graph lives in
    :mod:`repro.analysis.callgraph` and is attached on first use)."""

    modules: List[ModuleInfo]
    #: Recorded runtime lock-order edges (see
    #: :mod:`repro.analysis.runtime`) merged into DEADLOCK001.
    lock_traces: List[Dict[str, object]] = field(default_factory=list)
    _callgraph: Optional[object] = None

    def module_by_name(self, name: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.name == name or module.name.endswith("." + name):
                return module
        return None

    def each_function(self) -> Iterator[FunctionRecord]:
        for module in self.modules:
            yield from module.functions

    def each_class(self) -> Iterator[Tuple[ModuleInfo, ast.ClassDef]]:
        for module in self.modules:
            for node in module.classes:
                yield module, node

    def callgraph(self) -> "object":
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph


RuleFunction = Callable[[AnalysisContext], Iterable[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    rule_id: str
    description: str
    severity: Severity
    run: RuleFunction


_REGISTRY: Dict[str, RuleSpec] = {}


def rule(
    rule_id: str, description: str, severity: Severity = Severity.ERROR
) -> Callable[[RuleFunction], RuleFunction]:
    """Register a rule function under ``rule_id``."""

    def decorator(fn: RuleFunction) -> RuleFunction:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = RuleSpec(rule_id, description, severity, fn)
        return fn

    return decorator


def all_rules() -> List[RuleSpec]:
    _load_builtin_rules()
    return [spec for _, spec in sorted(_REGISTRY.items())]


def _load_builtin_rules() -> None:
    import repro.analysis.rules  # noqa: F401  (registers on import)


# ----------------------------------------------------------------------
# Module loading
# ----------------------------------------------------------------------


def _module_name(path: str) -> str:
    """Dotted module name: rooted at ``repro`` when the path contains
    the package, the bare stem otherwise (fixture files)."""
    normalized = os.path.normpath(os.path.abspath(path))
    parts = normalized.split(os.sep)
    if "repro" in parts:
        tail = parts[parts.index("repro") :]
        tail[-1] = os.path.splitext(tail[-1])[0]
        if tail[-1] == "__init__":
            tail.pop()
        return ".".join(tail)
    return os.path.splitext(os.path.basename(path))[0]


#: Bump when ModuleInfo / FunctionRecord / MarkerIndex shapes change
#: (invalidates every ScanCache entry).
_CACHE_VERSION = 1


class ScanCache:
    """Content-addressed cache of parsed :class:`ModuleInfo` objects.

    Parsing plus definition indexing dominates checker start-up on a
    full-tree scan; CI caches this file between jobs (keyed on the
    Python version and engine layout) so re-runs only re-parse files
    whose bytes changed.  The payload is a pickle -- treat the cache
    file like build output, never like an input from another trust
    domain.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._tag = (sys.version_info[:2], _CACHE_VERSION)
        self._entries: Dict[str, Tuple[str, ModuleInfo]] = {}
        self._dirty = False
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("tag") == self._tag:
                self._entries = payload["entries"]
        except Exception:
            self._entries = {}  # corrupt/missing/foreign cache: rebuild

    def get(self, path: str, digest: str) -> Optional[ModuleInfo]:
        entry = self._entries.get(os.path.abspath(path))
        if entry is not None and entry[0] == digest:
            return entry[1]
        return None

    def put(self, path: str, digest: str, module: ModuleInfo) -> None:
        self._entries[os.path.abspath(path)] = (digest, module)
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump({"tag": self._tag, "entries": self._entries}, handle)
        os.replace(tmp, self.path)


def load_module(path: str, cache: Optional[ScanCache] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    if cache is not None:
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = cache.get(path, digest)
        if cached is not None:
            return cached
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    module = ModuleInfo(
        path=path,
        name=_module_name(path),
        source=source,
        lines=lines,
        tree=tree,
        markers=index_markers(lines),
    )
    _index_definitions(module)
    if cache is not None:
        cache.put(path, digest, module)
    return module


def _index_definitions(module: ModuleInfo) -> None:
    """Populate the function/class tables (with class qualification)."""

    def visit(node: ast.AST, class_name: Optional[str], in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                module.classes.append(child)
                visit(child, child.name, in_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(child, ast.FunctionDef):
                    qual = f"{class_name}.{child.name}" if class_name else child.name
                    module.functions.append(
                        FunctionRecord(module, child, qual, class_name, in_function)
                    )
                visit(child, class_name, True)
            else:
                visit(child, class_name, in_function)

    visit(module.tree, None, False)


def collect_files(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


# ----------------------------------------------------------------------
# Suppression + top-level driver
# ----------------------------------------------------------------------


def _suppressed(finding: Finding, module: ModuleInfo) -> bool:
    markers = module.markers
    # A marker on any physical line of the enclosing statement counts:
    # multi-line calls and parenthesized expressions put the natural
    # marker position (end of the statement) lines away from the AST
    # anchor the rule reported.
    start, end = module.statement_span(finding.line)
    for line in range(start, end + 1):
        if markers.line_suppresses(line, finding.rule_id):
            return True
    record = module.enclosing_function(finding.line)
    if record is not None and any(
        d.suppresses(finding.rule_id) for d in record.directives()
    ):
        return True
    return any(d.suppresses(finding.rule_id) for d in markers.module_directives)


def analyze_paths(
    paths: List[str],
    rule_ids: Optional[List[str]] = None,
    lock_traces: Optional[List[Dict[str, object]]] = None,
    cache_path: Optional[str] = None,
) -> Tuple[List[Finding], AnalysisContext]:
    """Run the registered rules over ``paths``.

    ``lock_traces`` feeds recorded runtime lock-order edges (see
    :func:`repro.analysis.runtime.export_lock_order_trace`) into
    DEADLOCK001; ``cache_path`` persists the parsed-module cache
    between runs.  Returns the (suppression-filtered, sorted) findings
    plus the context so callers (tests, the CLI) can introspect what
    was scanned.
    """
    specs = all_rules()
    if rule_ids is not None:
        unknown = set(rule_ids) - {spec.rule_id for spec in specs}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        specs = [spec for spec in specs if spec.rule_id in rule_ids]

    cache = ScanCache(cache_path) if cache_path else None
    modules = [load_module(path, cache) for path in collect_files(paths)]
    if cache is not None:
        cache.save()
    context = AnalysisContext(modules, lock_traces=list(lock_traces or []))
    by_path = {module.path: module for module in modules}

    findings: List[Finding] = []
    for spec in specs:
        for finding in spec.run(context):
            module = by_path.get(finding.path)
            if module is not None and _suppressed(finding, module):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings, context

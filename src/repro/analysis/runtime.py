"""Runtime lock-discipline harness.

Complements the static LOCK rules with a dynamic check: wrap an
object's lock in a :class:`TrackedLock` (which records the set of
threads currently holding it) and swap the object's class for a
subclass whose ``__setattr__`` verifies the discipline on every write
to a guarded attribute.

Two policies mirror the two sanctioned concurrency contracts in this
repository:

* ``"lock"`` -- every write to a guarded attribute must happen while
  the current thread holds the lock (AccessStats.merge/add/reset).
* ``"single-writer"`` -- unlocked writes are allowed from at most one
  thread (the ShardExecutor ``stats_of=`` contract: items sharing a
  stats object serialize into one task, so the unlocked hot-path
  increments all come from a single worker thread).  Locked writes are
  always allowed and do not claim ownership.

Typical use in a test::

    stats = AccessStats()
    instrument(stats, guarded={"npa_hops"}, policy="single-writer")
    ... run the workload ...
    # a second thread writing stats.npa_hops without the lock raises
    # LockDisciplineViolation at the racy write, not as a flaky count.
"""

from __future__ import annotations

import json
import threading
import traceback
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Type

__all__ = [
    "LockDisciplineViolation",
    "LockOrderRecorder",
    "TrackedLock",
    "instrument",
    "lock_order_recorder",
    "load_lock_trace",
]

_POLICIES = ("lock", "single-writer")

#: Frames kept per witness stack (innermost last); enough to show the
#: acquisition path without dragging the whole test harness along.
_STACK_LIMIT = 12


class LockDisciplineViolation(AssertionError):
    """A guarded attribute was written in violation of the policy."""


def _capture_stack() -> List[str]:
    """The current acquisition stack as ``file:line in func`` strings,
    with this module's own frames trimmed off the innermost end."""
    frames = traceback.extract_stack()
    while frames and frames[-1].filename == __file__:
        frames.pop()
    return [
        f"{frame.filename}:{frame.lineno} in {frame.name}"
        for frame in frames[-_STACK_LIMIT:]
    ]


class LockOrderRecorder:
    """Global lock-acquisition-order recorder for :class:`TrackedLock`.

    Keeps a per-thread stack of currently-held named locks.  Whenever a
    thread acquires lock B while holding lock A it records one
    ``A -> B`` edge with two witness stacks: where A was acquired and
    where B is being acquired.  One witness per ordered pair is kept
    (the first), so memory stays bounded no matter how hot the locks.

    The exported trace is plain JSON; feed it back into the static
    checker with ``python -m repro.analysis --lock-trace trace.json``
    so DEADLOCK001 merges runtime-observed edges with the AST-derived
    ones.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._held = threading.local()
        #: (held_name, acquired_name) -> edge record
        self._edges: Dict[Tuple[str, str], Dict[str, object]] = {}

    # -- hook points (called by TrackedLock with the lock held) --------

    def _stack_of(self) -> List[Tuple[str, List[str]]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquired(self, name: str) -> None:
        stack = self._stack_of()
        acquired_at = _capture_stack()
        held_names = [held_name for held_name, _ in stack]
        if name not in held_names:  # reentrant re-acquire adds no edge
            for held_name, held_at in stack:
                key = (held_name, name)
                if key not in self._edges:
                    with self._mutex:
                        self._edges.setdefault(
                            key,
                            {
                                "held": held_name,
                                "acquired": name,
                                "thread": threading.get_ident(),
                                "held_stack": list(held_at),
                                "acquired_stack": acquired_at,
                            },
                        )
        stack.append((name, acquired_at))

    def note_released(self, name: str) -> None:
        stack = self._stack_of()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == name:
                del stack[index]
                break

    # -- inspection / export -------------------------------------------

    def edges(self) -> List[Dict[str, object]]:
        """Recorded order edges, sorted for determinism."""
        with self._mutex:
            records = list(self._edges.values())
        return sorted(records, key=lambda r: (str(r["held"]), str(r["acquired"])))

    def held_by_current(self) -> List[str]:
        return [name for name, _ in self._stack_of()]

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._held = threading.local()

    def export(self) -> Dict[str, object]:
        return {"version": 1, "edges": self.edges()}

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export(), handle, indent=2, sort_keys=True)


_RECORDER = LockOrderRecorder()


def lock_order_recorder() -> LockOrderRecorder:
    """The process-wide recorder every named :class:`TrackedLock` feeds."""
    return _RECORDER


def load_lock_trace(path: str) -> List[Dict[str, object]]:
    """Edge records from a file written by :meth:`LockOrderRecorder.save`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        edges = payload.get("edges", [])
    else:  # bare list is accepted too
        edges = payload
    if not isinstance(edges, list):
        raise ValueError(f"not a lock trace: {path}")
    return [e for e in edges if isinstance(e, dict) and "held" in e and "acquired" in e]


class TrackedLock:
    """A ``threading.Lock`` work-alike that records its holders.

    The holder set is kept under a private mutex; the acquisition order
    is always inner-lock-then-mutex, so the tracker introduces no new
    lock-order edges into the instrumented program.

    A *named* lock additionally reports every acquisition to the
    process-wide :class:`LockOrderRecorder`, building the runtime
    lock-order trace DEADLOCK001 consumes.  ``reentrant=True`` backs
    the lock with an ``RLock`` (re-acquisition by the holder neither
    blocks nor records a self-edge).
    """

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        reentrant: bool = False,
        recorder: Optional[LockOrderRecorder] = None,
    ) -> None:
        self._inner: Any = threading.RLock() if reentrant else threading.Lock()
        self._mutex = threading.Lock()
        self._holders: Dict[int, int] = {}  # thread ident -> depth
        self.name = name
        self.reentrant = reentrant
        self._recorder = recorder if recorder is not None else _RECORDER

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            ident = threading.get_ident()
            with self._mutex:
                self._holders[ident] = self._holders.get(ident, 0) + 1
            if self.name is not None:
                self._recorder.note_acquired(self.name)
        return acquired

    def release(self) -> None:
        ident = threading.get_ident()
        with self._mutex:
            depth = self._holders.get(ident, 0) - 1
            if depth > 0:
                self._holders[ident] = depth
            else:
                self._holders.pop(ident, None)
        if self.name is not None:
            self._recorder.note_released(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        # RLock has no .locked() on the Python versions CI runs;
        # the holder table is authoritative for both flavors.
        with self._mutex:
            return bool(self._holders)

    def held_by_current(self) -> bool:
        with self._mutex:
            return threading.get_ident() in self._holders


class _GuardState:
    """Per-instrumented-object bookkeeping (kept off the instance so
    ``__setattr__`` interception cannot recurse into it)."""

    def __init__(
        self, guarded: FrozenSet[str], lock: TrackedLock, policy: str
    ) -> None:
        self.guarded = guarded
        self.lock = lock
        self.policy = policy
        self.owner_thread: Optional[int] = None
        self.owner_mutex = threading.Lock()


_STATES: Dict[int, _GuardState] = {}


def _check_write(state: _GuardState, attr: str) -> None:
    if state.lock.held_by_current():
        return
    if state.policy == "lock":
        raise LockDisciplineViolation(
            f"guarded attribute {attr!r} written without holding the lock"
        )
    ident = threading.get_ident()
    with state.owner_mutex:
        if state.owner_thread is None:
            state.owner_thread = ident
            return
        if state.owner_thread != ident:
            raise LockDisciplineViolation(
                f"guarded attribute {attr!r} written unlocked from thread "
                f"{ident} but thread {state.owner_thread} already writes it "
                f"unlocked (single-writer contract broken)"
            )


def _instrumented_subclass(base: Type[Any]) -> Type[Any]:
    def __setattr__(self: Any, attr: str, value: Any) -> None:
        state = _STATES.get(id(self))
        if state is not None and attr in state.guarded:
            _check_write(state, attr)
        base.__setattr__(self, attr, value)

    return type(
        f"Instrumented{base.__name__}", (base,), {"__setattr__": __setattr__}
    )


def instrument(
    obj: Any,
    guarded: Iterable[str],
    lock_attr: str = "_lock",
    policy: str = "lock",
) -> TrackedLock:
    """Instrument ``obj`` in place; returns the tracking lock.

    Replaces ``obj.<lock_attr>`` with a :class:`TrackedLock` and swaps
    ``obj.__class__`` for a subclass that enforces ``policy`` on every
    write to an attribute named in ``guarded``.
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
    if not hasattr(obj, lock_attr):
        raise AttributeError(
            f"{type(obj).__name__} has no lock attribute {lock_attr!r}"
        )
    tracked = TrackedLock()
    state = _GuardState(frozenset(guarded), tracked, policy)
    _STATES[id(obj)] = state
    object.__setattr__(obj, lock_attr, tracked)
    obj.__class__ = _instrumented_subclass(type(obj))
    return tracked

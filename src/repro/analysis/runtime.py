"""Runtime lock-discipline harness.

Complements the static LOCK rules with a dynamic check: wrap an
object's lock in a :class:`TrackedLock` (which records the set of
threads currently holding it) and swap the object's class for a
subclass whose ``__setattr__`` verifies the discipline on every write
to a guarded attribute.

Two policies mirror the two sanctioned concurrency contracts in this
repository:

* ``"lock"`` -- every write to a guarded attribute must happen while
  the current thread holds the lock (AccessStats.merge/add/reset).
* ``"single-writer"`` -- unlocked writes are allowed from at most one
  thread (the ShardExecutor ``stats_of=`` contract: items sharing a
  stats object serialize into one task, so the unlocked hot-path
  increments all come from a single worker thread).  Locked writes are
  always allowed and do not claim ownership.

Typical use in a test::

    stats = AccessStats()
    instrument(stats, guarded={"npa_hops"}, policy="single-writer")
    ... run the workload ...
    # a second thread writing stats.npa_hops without the lock raises
    # LockDisciplineViolation at the racy write, not as a flaky count.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, FrozenSet, Iterable, Optional, Set, Type

__all__ = ["LockDisciplineViolation", "TrackedLock", "instrument"]

_POLICIES = ("lock", "single-writer")


class LockDisciplineViolation(AssertionError):
    """A guarded attribute was written in violation of the policy."""


class TrackedLock:
    """A ``threading.Lock`` work-alike that records its holders.

    The holder set is kept under a private mutex; the acquisition order
    is always inner-lock-then-mutex, so the tracker introduces no new
    lock-order edges into the instrumented program.
    """

    def __init__(self) -> None:
        self._inner = threading.Lock()
        self._mutex = threading.Lock()
        self._holders: Set[int] = set()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            with self._mutex:
                self._holders.add(threading.get_ident())
        return acquired

    def release(self) -> None:
        with self._mutex:
            self._holders.discard(threading.get_ident())
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current(self) -> bool:
        with self._mutex:
            return threading.get_ident() in self._holders


class _GuardState:
    """Per-instrumented-object bookkeeping (kept off the instance so
    ``__setattr__`` interception cannot recurse into it)."""

    def __init__(
        self, guarded: FrozenSet[str], lock: TrackedLock, policy: str
    ) -> None:
        self.guarded = guarded
        self.lock = lock
        self.policy = policy
        self.owner_thread: Optional[int] = None
        self.owner_mutex = threading.Lock()


_STATES: Dict[int, _GuardState] = {}


def _check_write(state: _GuardState, attr: str) -> None:
    if state.lock.held_by_current():
        return
    if state.policy == "lock":
        raise LockDisciplineViolation(
            f"guarded attribute {attr!r} written without holding the lock"
        )
    ident = threading.get_ident()
    with state.owner_mutex:
        if state.owner_thread is None:
            state.owner_thread = ident
            return
        if state.owner_thread != ident:
            raise LockDisciplineViolation(
                f"guarded attribute {attr!r} written unlocked from thread "
                f"{ident} but thread {state.owner_thread} already writes it "
                f"unlocked (single-writer contract broken)"
            )


def _instrumented_subclass(base: Type[Any]) -> Type[Any]:
    def __setattr__(self: Any, attr: str, value: Any) -> None:
        state = _STATES.get(id(self))
        if state is not None and attr in state.guarded:
            _check_write(state, attr)
        base.__setattr__(self, attr, value)

    return type(
        f"Instrumented{base.__name__}", (base,), {"__setattr__": __setattr__}
    )


def instrument(
    obj: Any,
    guarded: Iterable[str],
    lock_attr: str = "_lock",
    policy: str = "lock",
) -> TrackedLock:
    """Instrument ``obj`` in place; returns the tracking lock.

    Replaces ``obj.<lock_attr>`` with a :class:`TrackedLock` and swaps
    ``obj.__class__`` for a subclass that enforces ``policy`` on every
    write to an attribute named in ``guarded``.
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
    if not hasattr(obj, lock_attr):
        raise AttributeError(
            f"{type(obj).__name__} has no lock attribute {lock_attr!r}"
        )
    tracked = TrackedLock()
    state = _GuardState(frozenset(guarded), tracked, policy)
    _STATES[id(obj)] = state
    object.__setattr__(obj, lock_attr, tracked)
    obj.__class__ = _instrumented_subclass(type(obj))
    return tracked

"""A receiver-aware interprocedural call graph over the scanned modules.

Python's dynamism makes fully precise call resolution impossible
statically, so the graph is layered:

* **Resolved edges.**  Calls whose receiver class is statically known
  are resolved to the method *on that class* (walking the scanned base
  classes, so ``self.stop()`` inside ``ShardServer`` resolves to
  ``RpcServerBase.stop`` when the subclass does not override it).
  Receivers are known for

  - ``self.f(...)`` inside a method body,
  - ``self.<attr>.f(...)`` where ``__init__`` (or any method) assigns
    ``self.<attr> = SomeScannedClass(...)``,
  - ``x.f(...)`` where the enclosing function assigns
    ``x = SomeScannedClass(...)``,
  - ``SomeScannedClass(...)`` itself (an edge to ``__init__``), and
  - bare ``f(...)`` where ``f`` is a function of the same module.

* **Name-based fallback edges.**  Every other call ``x.f(...)`` /
  ``f(...)`` is an edge to *every* scanned function named ``f``.  That
  over-approximation is the right direction for the lock and race
  rules -- reachability is used to prove the *absence* of unguarded
  mutations, so false edges can only make the checker stricter, never
  blind.

Rules that only need "can this call reach that function" keep using
:meth:`CallGraph.reachable_from_names`; rules that need per-call-site
precision (the RACE001 lockset propagation, the DEADLOCK001 order
graph) walk :meth:`CallGraph.callees_at` call site by call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import AnalysisContext, FunctionRecord, ModuleInfo

#: Walking a base-class chain deeper than this means a cycle in the
#: (name-approximated) hierarchy; stop rather than loop.
_MRO_DEPTH_CAP = 16

#: Builtin/stdlib constructors whose instances carry no scanned
#: methods.  ``self.x = deque(...)`` makes ``self.x.clear()`` a call
#: on an *opaque* receiver: resolving it to nothing beats the
#: name-based fallback, which would connect it to every scanned
#: ``clear`` method (and fabricate lock-order edges out of thin air).
_OPAQUE_CONSTRUCTORS = frozenset(
    {
        "dict", "list", "set", "frozenset", "tuple", "bytearray",
        "deque", "OrderedDict", "defaultdict", "Counter",
        "Lock", "RLock", "Event", "Condition", "Semaphore",
        "BoundedSemaphore", "Barrier", "Queue", "LifoQueue",
        "PriorityQueue", "SimpleQueue", "Thread", "Timer",
    }
)


def called_names(node: ast.AST) -> Set[str]:
    """Bare names of every call target syntactically inside ``node``."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


@dataclass
class ClassInfo:
    """One scanned class: its methods, bases, and inferred field types."""

    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, "FunctionRecord"] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)
    #: ``self.<attr>`` -> names of scanned classes ever assigned to it
    #: (via ``self.attr = ClassName(...)``).
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: Attributes only ever assigned opaque builtins/literals (dicts,
    #: deques, locks, ...): method calls on them get no edges at all.
    opaque_attrs: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name


def _constructed_class_name(
    value: ast.expr, classes: Dict[str, List["ClassInfo"]]
) -> Optional[str]:
    """Scanned class name when ``value`` is ``ClassName(...)``."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in classes
    ):
        return value.func.id
    return None


def _is_opaque_value(value: ast.expr) -> bool:
    """Whether ``value`` constructs a known method-less-for-us type:
    a container/lock builtin (by bare or dotted name) or a display
    literal (``[]``, ``{}``, ``set()``...)."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple, ast.Constant)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            return func.id in _OPAQUE_CONSTRUCTORS
        if isinstance(func, ast.Attribute):
            return func.attr in _OPAQUE_CONSTRUCTORS
    return False


def _base_names(node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


@dataclass
class CallGraph:
    """Function-name index plus resolved/name-based call edges."""

    by_name: Dict[str, List["FunctionRecord"]] = field(default_factory=dict)
    #: Class name -> every scanned class with that name (collisions are
    #: kept: resolution over-approximates across same-named classes).
    classes: Dict[str, List[ClassInfo]] = field(default_factory=dict)
    #: Function key -> keys of receiver-resolved callees.
    resolved: Dict[str, Set[str]] = field(default_factory=dict)
    #: Function key -> bare names left to the name-based fallback.
    unresolved: Dict[str, Set[str]] = field(default_factory=dict)
    _by_key: Dict[str, "FunctionRecord"] = field(default_factory=dict)
    _module_functions: Dict[str, Dict[str, "FunctionRecord"]] = field(
        default_factory=dict
    )
    _local_types: Dict[str, Dict[str, Set[str]]] = field(default_factory=dict)
    _local_opaque: Dict[str, Set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, context: "AnalysisContext") -> "CallGraph":
        graph = cls()
        for module, class_node in context.each_class():
            info = ClassInfo(module, class_node, base_names=_base_names(class_node))
            graph.classes.setdefault(class_node.name, []).append(info)
        for record in context.each_function():
            graph.by_name.setdefault(record.name, []).append(record)
            graph._by_key[record.qualkey] = record
            if record.class_name is None and not record.nested:
                graph._module_functions.setdefault(record.module.name, {})[
                    record.name
                ] = record
            elif record.class_name is not None:
                for info in graph.classes.get(record.class_name, []):
                    if info.module is record.module:
                        info.methods.setdefault(record.name, record)
        graph._infer_attr_types(context)
        for record in context.each_function():
            graph._index_calls(record)
        return graph

    def _infer_attr_types(self, context: "AnalysisContext") -> None:
        """``self.<attr> = ScannedClass(...)`` assignments, class-wide."""
        for record in context.each_function():
            if record.class_name is None:
                continue
            infos = [
                info
                for info in self.classes.get(record.class_name, [])
                if info.module is record.module
            ]
            if not infos:
                continue
            for node in ast.walk(record.node):
                if isinstance(node, ast.Assign):
                    targets_, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets_, value = [node.target], node.value
                else:
                    continue
                class_name = _constructed_class_name(value, self.classes)
                opaque = class_name is None and _is_opaque_value(value)
                if class_name is None and not opaque:
                    continue
                for target in targets_:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        for info in infos:
                            if class_name is not None:
                                info.attr_types.setdefault(
                                    target.attr, set()
                                ).add(class_name)
                            else:
                                info.opaque_attrs.add(target.attr)
        for infos in self.classes.values():
            for info in infos:
                info.opaque_attrs -= set(info.attr_types)

    def _index_calls(self, record: "FunctionRecord") -> None:
        resolved: Set[str] = set()
        unresolved: Set[str] = set()
        for call, targets, fallback in self._call_sites(record):
            if targets:
                resolved.update(t.qualkey for t in targets)
            elif fallback is not None:
                unresolved.add(fallback)
        self.resolved[record.qualkey] = resolved
        self.unresolved[record.qualkey] = unresolved

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def key_of(self, record: "FunctionRecord") -> str:
        return record.qualkey

    def record_for(self, key: str) -> Optional["FunctionRecord"]:
        return self._by_key.get(key)

    def lookup_method(
        self, class_name: str, method: str
    ) -> List["FunctionRecord"]:
        """Resolve ``class_name.method`` through the scanned bases
        (every same-named class contributes; first hit per chain)."""
        results: List["FunctionRecord"] = []
        seen_classes: Set[int] = set()

        def walk(name: str, depth: int) -> bool:
            if depth > _MRO_DEPTH_CAP:
                return False
            found = False
            for info in self.classes.get(name, []):
                if id(info) in seen_classes:
                    continue
                seen_classes.add(id(info))
                hit = info.methods.get(method)
                if hit is not None:
                    results.append(hit)
                    found = True
                    continue
                for base in info.base_names:
                    found = walk(base, depth + 1) or found
            return found

        walk(class_name, 0)
        return results

    def _receiver_classes(
        self, record: "FunctionRecord", receiver: ast.expr
    ) -> Set[str]:
        """Class names the receiver expression may denote, or empty."""
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and record.class_name is not None
        ):
            # ``super().m(...)``: the defining class is one of the
            # scanned bases.  Without this, ``super().__init__()``
            # would fall back to *every* ``__init__`` in the tree and
            # connect unrelated constructors into one blob.
            bases: Set[str] = set()
            for info in self.classes.get(record.class_name, []):
                if info.module is record.module:
                    bases.update(info.base_names)
            return bases
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and record.class_name is not None:
                return {record.class_name}
            return self._local_var_types(record).get(receiver.id, set())
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and record.class_name is not None
        ):
            found: Set[str] = set()
            for info in self.classes.get(record.class_name, []):
                if info.module is record.module:
                    found.update(info.attr_types.get(receiver.attr, set()))
                    for base in info.base_names:
                        for base_info in self.classes.get(base, []):
                            found.update(
                                base_info.attr_types.get(receiver.attr, set())
                            )
            return found
        return set()

    def _is_opaque_receiver(
        self, record: "FunctionRecord", receiver: ast.expr
    ) -> bool:
        """``self.<attr>`` receivers (or locals, or direct constructor
        calls) only ever assigned opaque values (checked after
        :meth:`_receiver_classes` found nothing)."""
        if isinstance(receiver, ast.Call):
            # threading.Thread(...).start() and friends
            return _is_opaque_value(receiver)
        if isinstance(receiver, ast.Name) and receiver.id != "self":
            return receiver.id in self._local_opaque_vars(record)
        if not (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and record.class_name is not None
        ):
            return False
        opaque = False
        for info in self.classes.get(record.class_name, []):
            if info.module is not record.module:
                continue
            if receiver.attr in info.attr_types:
                return False
            opaque = opaque or receiver.attr in info.opaque_attrs
        return opaque

    def _local_var_types(self, record: "FunctionRecord") -> Dict[str, Set[str]]:
        """``x = ScannedClass(...)`` locals of one function (cached
        per graph -- records may be shared across scans via the
        engine's ScanCache, so nothing is memoized on the record)."""
        cached = self._local_types.get(record.qualkey)
        if cached is not None:
            return cached
        types: Dict[str, Set[str]] = {}
        opaque: Set[str] = set()
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in self.classes
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types.setdefault(target.id, set()).add(value.func.id)
            elif _is_opaque_value(value):
                # thread = threading.Thread(...): thread.start() must
                # not alias to every scanned 'start' method.
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        opaque.add(target.id)
        opaque -= set(types)
        self._local_types[record.qualkey] = types
        self._local_opaque[record.qualkey] = opaque
        return types

    def _local_opaque_vars(self, record: "FunctionRecord") -> Set[str]:
        if record.qualkey not in self._local_opaque:
            self._local_var_types(record)
        return self._local_opaque[record.qualkey]

    def _call_sites(
        self, record: "FunctionRecord"
    ) -> Iterable[Tuple[ast.Call, List["FunctionRecord"], Optional[str]]]:
        """Every call in ``record``: ``(call, resolved_targets,
        fallback_name)``.  ``resolved_targets`` is empty when only the
        name-based fallback applies (``fallback_name``); both are empty
        for calls with no identifiable target name."""
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in self.classes:
                    # Constructor: edges to __init__ up the chain.
                    yield node, self.lookup_method(func.id, "__init__"), None
                    continue
                local = self._module_functions.get(record.module.name, {})
                if func.id in local:
                    yield node, [local[func.id]], None
                else:
                    yield node, [], func.id
                continue
            if isinstance(func, ast.Attribute):
                is_super = (
                    isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"
                )
                classes = self._receiver_classes(record, func.value)
                targets: List["FunctionRecord"] = []
                for class_name in sorted(classes):
                    targets.extend(self.lookup_method(class_name, func.attr))
                if targets:
                    yield node, targets, None
                elif is_super or self._is_opaque_receiver(record, func.value):
                    # Unresolved super() (base outside the scanned
                    # set: Exception, Thread, ...) or a receiver only
                    # ever assigned opaque builtins: no edge is better
                    # than an edge to every same-named method.
                    yield node, [], None
                else:
                    yield node, [], func.attr
                continue
            yield node, [], None

    def callees_at(
        self, record: "FunctionRecord"
    ) -> Iterable[Tuple[ast.Call, List["FunctionRecord"]]]:
        """Per-call-site targets: receiver-resolved where possible,
        every same-named scanned function otherwise."""
        for call, targets, fallback in self._call_sites(record):
            if targets:
                yield call, targets
            elif fallback is not None:
                yield call, list(self.by_name.get(fallback, []))

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def _expand(self, record: "FunctionRecord") -> Iterable["FunctionRecord"]:
        for key in self.resolved.get(record.qualkey, ()):
            target = self._by_key.get(key)
            if target is not None:
                yield target
        for name in self.unresolved.get(record.qualkey, ()):
            yield from self.by_name.get(name, [])

    def reachable_from_names(
        self, seed_names: Iterable[str]
    ) -> List["FunctionRecord"]:
        """Every scanned function reachable (transitively) from a call
        to any of ``seed_names`` (seeds resolve name-based; edges past
        the seeds use receiver resolution where available)."""
        seeds: List["FunctionRecord"] = []
        for name in dict.fromkeys(seed_names):
            seeds.extend(self.by_name.get(name, []))
        return self.reachable_from(seeds)

    def reachable_from(
        self, seeds: Iterable["FunctionRecord"]
    ) -> List["FunctionRecord"]:
        """Every scanned function reachable from ``seeds`` (inclusive)."""
        seen: Set[str] = set()
        result: List["FunctionRecord"] = []
        worklist = list(seeds)
        while worklist:
            record = worklist.pop()
            if record.qualkey in seen:
                continue
            seen.add(record.qualkey)
            result.append(record)
            worklist.extend(self._expand(record))
        return result

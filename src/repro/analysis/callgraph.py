"""A conservative name-based call graph over the scanned modules.

Python's dynamism makes precise call resolution impossible statically,
so the graph is deliberately over-approximate: a call ``x.f(...)`` or
``f(...)`` is an edge to *every* scanned function named ``f``.  That is
the right direction for the lock rules -- reachability is used to prove
the *absence* of unguarded mutations, so false edges can only make the
checker stricter, never blind.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import AnalysisContext, FunctionRecord


def called_names(node: ast.AST) -> Set[str]:
    """Bare names of every call target syntactically inside ``node``."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


@dataclass
class CallGraph:
    """Function-name index plus call edges between scanned functions."""

    by_name: Dict[str, List["FunctionRecord"]] = field(default_factory=dict)
    edges: Dict[str, Set[str]] = field(default_factory=dict)  # qualname -> called bare names

    @classmethod
    def build(cls, context: "AnalysisContext") -> "CallGraph":
        graph = cls()
        for record in context.each_function():
            graph.by_name.setdefault(record.name, []).append(record)
            key = f"{record.module.name}:{record.qualname}"
            graph.edges[key] = called_names(record.node)
        return graph

    def key_of(self, record: "FunctionRecord") -> str:
        return f"{record.module.name}:{record.qualname}"

    def reachable_from_names(self, seed_names: Iterable[str]) -> List["FunctionRecord"]:
        """Every scanned function reachable (transitively, name-based)
        from a call to any of ``seed_names``."""
        worklist: List[str] = list(dict.fromkeys(seed_names))
        seen_names: Set[str] = set(worklist)
        seen_records: Set[str] = set()
        result: List["FunctionRecord"] = []
        while worklist:
            name = worklist.pop()
            for record in self.by_name.get(name, []):
                key = self.key_of(record)
                if key in seen_records:
                    continue
                seen_records.add(key)
                result.append(record)
                for callee in self.edges.get(key, set()):
                    if callee not in seen_names:
                        seen_names.add(callee)
                        worklist.append(callee)
        return result

"""``# zipg:`` marker comments: the checker's in-source vocabulary.

Markers let the code under analysis declare intent the AST alone cannot
express.  The grammar is one comment per line::

    # zipg: <directive> <directive> ...

where each directive is a bare word (``hot-path``, ``scalar-ok``,
``public-api``) or a bracketed word (``ignore[LOCK001,HOT002]``,
``layout-writer[edge-record]``, ``layout-parser[edge-record]``).

Placement rules (enforced by :mod:`repro.analysis.engine`):

* module directives (``hot-path``, ``public-api``, ``query-api``)
  must be a standalone comment line anywhere in the file;
* function directives (``scalar-ok``, ``span-free``,
  ``layout-writer``, ``layout-parser``, function-wide ``ignore``) go
  on the ``def`` line or in the comment block immediately above it;
* line directives (``ignore``) go at the end of the offending line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_MARKER_RE = re.compile(r"#\s*zipg:\s*(?P<body>.+?)\s*$")
_DIRECTIVE_RE = re.compile(r"(?P<name>[A-Za-z][A-Za-z0-9_-]*)(?:\[(?P<args>[^\]]*)\])?")

#: Directives that apply to the whole module.
MODULE_DIRECTIVES = frozenset(
    {
        "hot-path",
        "public-api",
        "query-api",
        "robust-path",
        "cache-backed",
        # Mutations in this module follow a single-writer protocol
        # (e.g. per-thread AccessStats counters merged under a lock):
        # RACE001 defers to LOCK003's counter whitelist here.
        "single-writer",
        # This module IS the typed-exception codec: EXC001 reads the
        # registered exception names from it.
        "exception-registry",
        # Code in this module runs on the gateway's asyncio event loop:
        # GATE001 rejects anything that would block it (bare
        # time.sleep, sync socket I/O, lock acquire()).
        "gateway-path",
    }
)
#: Directives that attach to the enclosing/following function.
FUNCTION_DIRECTIVES = frozenset(
    {
        "scalar-ok",
        "layout-writer",
        "layout-parser",
        "ignore",
        "span-free",
        # Entry point of the RPC dispatch surface: EXC001 roots its
        # raisable-exception walk at functions marked this way.
        "rpc-entry",
        # This function hands its blocking work to an executor/thread
        # (run_in_executor, a submission pool): GATE001 skips it.
        "executor-offload",
    }
)


@dataclass(frozen=True)
class Directive:
    """One parsed marker directive, e.g. ``ignore[LOCK001]``."""

    name: str
    args: Tuple[str, ...] = ()

    def suppresses(self, rule_id: str) -> bool:
        """Whether this directive suppresses findings of ``rule_id``."""
        return self.name == "ignore" and (not self.args or rule_id in self.args)


@dataclass
class MarkerIndex:
    """All ``# zipg:`` directives of one module, indexed by line."""

    by_line: Dict[int, List[Directive]] = field(default_factory=dict)
    module_directives: List[Directive] = field(default_factory=list)

    def at(self, line: int) -> List[Directive]:
        return self.by_line.get(line, [])

    def module_has(self, name: str) -> bool:
        return any(d.name == name for d in self.module_directives)

    def line_suppresses(self, line: int, rule_id: str) -> bool:
        return any(d.suppresses(rule_id) for d in self.at(line))


def parse_directives(comment_body: str) -> List[Directive]:
    """Parse the text after ``# zipg:`` into directives."""
    directives: List[Directive] = []
    for match in _DIRECTIVE_RE.finditer(comment_body):
        raw_args = match.group("args")
        args: Tuple[str, ...] = ()
        if raw_args is not None:
            args = tuple(a.strip() for a in raw_args.split(",") if a.strip())
        directives.append(Directive(match.group("name"), args))
    return directives


def _marker_body(line: str) -> Optional[str]:
    match = _MARKER_RE.search(line)
    return match.group("body") if match else None


def index_markers(lines: List[str]) -> MarkerIndex:
    """Scan source ``lines`` (1-indexed semantics) for markers."""
    index = MarkerIndex()
    for lineno, line in enumerate(lines, start=1):
        body = _marker_body(line)
        if body is None:
            continue
        directives = parse_directives(body)
        if not directives:
            continue
        index.by_line[lineno] = directives
        if line.lstrip().startswith("#"):  # standalone comment line
            for directive in directives:
                if directive.name in MODULE_DIRECTIVES:
                    index.module_directives.append(directive)
    return index


def function_directives(
    index: MarkerIndex,
    lines: List[str],
    def_line: int,
    decorator_line: Optional[int] = None,
) -> List[Directive]:
    """Directives attached to a function: those on the ``def`` line, on
    any decorator line (``decorator_line`` is the first decorator's
    line, from the AST -- this covers multi-line decorator calls whose
    continuation lines don't start with ``@``), plus the contiguous
    comment block immediately above the definition."""
    top = def_line if decorator_line is None else min(decorator_line, def_line)
    directives: List[Directive] = []
    for lineno in range(top, def_line + 1):
        directives.extend(index.at(lineno))
    lineno = top - 1
    while lineno >= 1 and lines[lineno - 1].lstrip().startswith(("#", "@")):
        directives.extend(index.at(lineno))
        lineno -= 1
    return directives

"""Lock-discipline rules (LOCK001/LOCK002/LOCK003).

The concurrency contract of this repository (see
``repro.core.executor`` and ``repro.succinct.stats``) has three legs,
each checked by one rule:

* **LOCK001** -- attributes that are ever mutated under a class's lock
  (or inside a ``*_locked`` helper) are *lock-guarded*.  Guarded
  attributes must not be mutated (a) elsewhere in the owning class
  without the lock held, or (b) -- for private attributes -- from
  outside the owning class at all.  Calls to ``*_locked`` helpers must
  themselves happen under a ``with self.<lock>:`` block.
* **LOCK002** -- the lock-acquisition-order graph (lock A held while
  acquiring lock B, directly or through calls) must be acyclic; a
  self-edge on a non-reentrant lock is a self-deadlock.
* **LOCK003** -- callables fanned out through ``ShardExecutor.map``
  without the ``stats_of=`` serialization contract must not reach the
  unlocked ``stats.<counter> += n`` hot-path increments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, called_names
from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    FunctionRecord,
    ModuleInfo,
    rule,
)
from repro.analysis.rules.common import (
    LOCKED_HELPER_SUFFIX,
    call_name,
    lock_attrs_of_class,
    mutation_targets,
    nodes_under_self_lock,
    with_acquired_lock_attrs,
)

#: AccessStats counter names (fallback when stats.py is not in the
#: scanned set; merged with the discovered guarded attributes).
DEFAULT_STATS_COUNTERS = frozenset(
    {
        "random_accesses",
        "sequential_bytes",
        "npa_hops",
        "npa_batched_hops",
        "batch_kernel_calls",
        "searches",
        "writes",
        "decompressed_bytes",
    }
)

_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class LockOwner:
    """A class owning one or more locks, with its guarded attributes."""

    module: ModuleInfo
    class_name: str
    lock_attrs: Set[str]
    guarded: Dict[str, str] = field(default_factory=dict)  # attr -> lock attr

    def methods(self, context: AnalysisContext) -> Iterator[FunctionRecord]:
        for record in self.module.functions:
            if record.class_name == self.class_name:
                yield record


def discover_lock_owners(context: AnalysisContext) -> List[LockOwner]:
    """Find lock-owning classes and infer their guarded attributes.

    An attribute is guarded if it is mutated (i) inside a
    ``with self.<lock>:`` block, or (ii) inside a ``*_locked`` helper of
    a single-lock class.  The lock attributes themselves are excluded.
    """
    owners: List[LockOwner] = []
    for module, cls in context.each_class():
        lock_attrs = lock_attrs_of_class(cls)
        if not lock_attrs:
            continue
        owner = LockOwner(module, cls.name, lock_attrs)
        for record in module.functions:
            if record.class_name != cls.name:
                continue
            for node in ast.walk(record.node):
                if not isinstance(node, ast.With):
                    continue
                acquired = with_acquired_lock_attrs(node, lock_attrs)
                if not acquired:
                    continue
                lock = sorted(acquired)[0]
                for stmt in node.body:
                    for attr, recv, _ in mutation_targets(stmt):
                        if isinstance(recv, ast.Name) and recv.id == "self":
                            owner.guarded.setdefault(attr, lock)
            if record.name.endswith(LOCKED_HELPER_SUFFIX) and len(lock_attrs) == 1:
                (lock,) = lock_attrs
                for attr, recv, _ in mutation_targets(record.node):
                    if isinstance(recv, ast.Name) and recv.id == "self":
                        owner.guarded.setdefault(attr, lock)
        for lock in lock_attrs:
            owner.guarded.pop(lock, None)
        owners.append(owner)
    return owners


@rule(
    "LOCK001",
    "lock-guarded attributes must be mutated under their lock and "
    "only inside the owning class",
)
def check_guarded_mutations(context: AnalysisContext) -> Iterator[Finding]:
    owners = discover_lock_owners(context)
    owners_of_attr: Dict[str, Set[str]] = {}
    for owner in owners:
        for attr in owner.guarded:
            owners_of_attr.setdefault(attr, set()).add(owner.class_name)

    # (a) in-class mutations outside the lock.
    for owner in owners:
        for record in owner.methods(context):
            if record.name in _INIT_METHODS:
                continue
            if record.name.endswith(LOCKED_HELPER_SUFFIX):
                continue
            covered = nodes_under_self_lock(record.node, owner.lock_attrs)
            for attr, recv, node in mutation_targets(record.node):
                if attr not in owner.guarded:
                    continue
                if not (isinstance(recv, ast.Name) and recv.id == "self"):
                    continue
                if id(node) in covered:
                    continue
                yield Finding(
                    "LOCK001",
                    f"mutation of lock-guarded attribute "
                    f"'{owner.class_name}.{attr}' without holding "
                    f"'{owner.guarded[attr]}'",
                    owner.module.path,
                    node.lineno,
                )

    # (b) cross-class mutations of private guarded attributes.
    for module in context.modules:
        for record in module.functions:
            for attr, recv, node in mutation_targets(record.node):
                if not attr.startswith("_") or attr not in owners_of_attr:
                    continue
                if record.class_name in owners_of_attr[attr]:
                    continue
                yield Finding(
                    "LOCK001",
                    f"private lock-guarded attribute '{attr}' (owned by "
                    f"{', '.join(sorted(owners_of_attr[attr]))}) mutated "
                    f"outside its owning class -- add an owning-class "
                    f"method that takes the lock",
                    module.path,
                    node.lineno,
                )

    # (c) *_locked helpers may only be called with the lock held.
    lock_attr_names: Set[str] = set()
    for owner in owners:
        lock_attr_names.update(owner.lock_attrs)
    for module in context.modules:
        for record in module.functions:
            if record.name.endswith(LOCKED_HELPER_SUFFIX):
                continue  # helper-to-helper calls inherit the caller's lock
            covered = nodes_under_self_lock(record.node, lock_attr_names)
            for node in ast.walk(record.node):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name is None or not name.endswith(LOCKED_HELPER_SUFFIX):
                    continue
                if id(node) in covered:
                    continue
                yield Finding(
                    "LOCK001",
                    f"call to '{name}' outside a 'with self.<lock>:' "
                    f"block (the '{LOCKED_HELPER_SUFFIX}' suffix means "
                    f"the caller must hold the lock)",
                    module.path,
                    node.lineno,
                )


def _acquired_lock_nodes(
    with_node: ast.With,
    record: FunctionRecord,
    attr_owners: Dict[str, Set[str]],
) -> List[str]:
    """Resolve a ``with`` statement's acquired locks to graph nodes
    ``Class.lock_attr``; non-self receivers resolve to every owner."""
    nodes: List[str] = []
    for item in with_node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        if not isinstance(expr, ast.Attribute) or expr.attr not in attr_owners:
            continue
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            if record.class_name in attr_owners[expr.attr]:
                nodes.append(f"{record.class_name}.{expr.attr}")
                continue
        nodes.extend(f"{cls}.{expr.attr}" for cls in sorted(attr_owners[expr.attr]))
    return nodes


def static_lock_order_edges(
    context: AnalysisContext,
) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], Tuple[str, int]]]:
    """The AST-derived lock-acquisition-order graph.

    Returns ``(edges, sites)``: ``edges`` maps a held lock node
    (``Class.lock_attr``) to the lock nodes acquired -- directly or
    through receiver-resolved calls -- while it is held; ``sites``
    remembers one witness ``(path, line)`` per ordered pair.  Shared
    by LOCK002 (static cycles) and DEADLOCK001 (static + runtime-trace
    cycles).
    """
    owners = discover_lock_owners(context)
    attr_owners: Dict[str, Set[str]] = {}
    for owner in owners:
        for attr in owner.lock_attrs:
            attr_owners.setdefault(attr, set()).add(owner.class_name)
    if not attr_owners:
        return {}, {}

    graph: CallGraph = context.callgraph()  # type: ignore[assignment]

    acquires: Dict[str, Set[str]] = {}  # function key -> lock nodes it acquires
    for record in context.each_function():
        acquired: Set[str] = set()
        for node in ast.walk(record.node):
            if isinstance(node, ast.With):
                acquired.update(_acquired_lock_nodes(node, record, attr_owners))
        if acquired:
            acquires[graph.key_of(record)] = acquired

    # Build held -> acquired edges, remembering one witness site each.
    edges: Dict[str, Set[str]] = {}
    sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for record in context.each_function():
        call_targets: Optional[Dict[int, List[FunctionRecord]]] = None
        for node in ast.walk(record.node):
            if not isinstance(node, ast.With):
                continue
            held = _acquired_lock_nodes(node, record, attr_owners)
            if not held:
                continue
            if call_targets is None:
                call_targets = {
                    id(call): targets
                    for call, targets in graph.callees_at(record)
                }
            inner: Set[str] = set()
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.With):
                        inner.update(_acquired_lock_nodes(sub, record, attr_owners))
            # Receiver-resolved where the graph can; every same-named
            # function otherwise (calls on opaque builtin receivers
            # like dict.get contribute no edges at all).
            direct: List[FunctionRecord] = []
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        direct.extend(call_targets.get(id(sub), []))
            for callee in graph.reachable_from(direct):
                inner.update(acquires.get(graph.key_of(callee), set()))
            for held_node in held:
                for inner_node in inner:
                    edges.setdefault(held_node, set()).add(inner_node)
                    sites.setdefault(
                        (held_node, inner_node),
                        (record.module.path, node.lineno),
                    )
    return edges, sites


@rule(
    "LOCK002",
    "the lock acquisition-order graph must be acyclic "
    "(cycles deadlock; self-edges self-deadlock on non-reentrant locks)",
)
def check_lock_order(context: AnalysisContext) -> Iterator[Finding]:
    edges, sites = static_lock_order_edges(context)

    def reaches(start: str, goal: str) -> bool:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, set()))
        return False

    for (held_node, inner_node), (path, line) in sorted(sites.items()):
        if held_node == inner_node:
            yield Finding(
                "LOCK002",
                f"'{held_node}' re-acquired while already held "
                f"(self-deadlock on a non-reentrant lock)",
                path,
                line,
            )
        elif reaches(inner_node, held_node):
            yield Finding(
                "LOCK002",
                f"acquiring '{inner_node}' while holding '{held_node}' "
                f"completes an acquisition-order cycle",
                path,
                line,
            )


def _stats_counters(context: AnalysisContext) -> Set[str]:
    counters = set(DEFAULT_STATS_COUNTERS)
    for owner in discover_lock_owners(context):
        if owner.class_name == "AccessStats":
            counters.update(owner.guarded)
    return counters


def _mutates_stats_counter(
    record: FunctionRecord, counters: Set[str]
) -> Optional[Tuple[str, int]]:
    """``(counter, line)`` of the first unlocked ``stats.<counter>``
    mutation in the function, if any."""
    for attr, recv, node in mutation_targets(record.node):
        if attr not in counters:
            continue
        if (isinstance(recv, ast.Attribute) and recv.attr == "stats") or (
            isinstance(recv, ast.Name) and recv.id == "stats"
        ):
            return (attr, node.lineno)
    return None


def _is_executor_receiver(func: ast.Attribute) -> bool:
    recv = func.value
    if isinstance(recv, ast.Attribute):
        return "executor" in recv.attr.lower()
    if isinstance(recv, ast.Name):
        return "executor" in recv.id.lower()
    return False


@rule(
    "LOCK003",
    "ShardExecutor.map fan-outs that reach unlocked stats increments "
    "must pass stats_of= (the per-stats-object serialization contract)",
)
def check_executor_stats_discipline(context: AnalysisContext) -> Iterator[Finding]:
    counters = _stats_counters(context)
    graph: CallGraph = context.callgraph()  # type: ignore[assignment]
    for module in context.modules:
        for record in module.functions:
            for node in ast.walk(record.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "map"
                    and _is_executor_receiver(func)
                ):
                    continue
                if any(kw.arg == "stats_of" for kw in node.keywords):
                    continue
                if not node.args:
                    continue
                fn_arg = node.args[0]
                if isinstance(fn_arg, ast.Lambda):
                    seeds = called_names(fn_arg.body)
                elif isinstance(fn_arg, ast.Name):
                    seeds = {fn_arg.id}
                elif isinstance(fn_arg, ast.Attribute):
                    seeds = {fn_arg.attr}
                else:
                    seeds = called_names(fn_arg)
                for callee in graph.reachable_from_names(seeds):
                    hit = _mutates_stats_counter(callee, counters)
                    if hit is None:
                        continue
                    counter, _ = hit
                    yield Finding(
                        "LOCK003",
                        f"executor.map without stats_of= reaches the "
                        f"unlocked 'stats.{counter} +=' increment in "
                        f"'{callee.qualname}' -- pass stats_of= so items "
                        f"sharing a stats object serialize",
                        module.path,
                        node.lineno,
                    )
                    break

"""RPC exception-flow checking (EXC001).

Every exception type that can propagate out of the RPC dispatch
surface crosses the wire through the typed-exception codec in the
module marked ``# zipg: exception-registry``
(:mod:`repro.server.protocol`).  A type missing from that registry is
not an error at runtime -- it silently degrades to ``RemoteError`` on
the client, losing the type the caller's ``except`` clause was
written against.  EXC001 makes the registry's completeness a static
invariant.

Roots of the raisable-exception walk:

* functions marked ``# zipg: rpc-entry`` (``ops.run_op``, the master
  and shard ``_execute`` dispatchers);
* ``@_op("...")``-registered handlers (dispatched through a table the
  call graph cannot see);
* methods named in a ``*_METHODS`` frozenset of any module containing
  an rpc-entry function (the master's explicit getattr allowlist).

From those roots the rule walks everything reachable on the
receiver-aware call graph and collects each explicit
``raise SomeError(...)`` of a capitalized name.  Raised names must be
registered -- by appearing in the registry module's
``_EXCEPTION_TYPES`` table, its lazy-registration helpers, its
decoder's special cases, or a ``register_exception(X)`` call anywhere
in the scanned tree.

Deliberately *not* checked: bare re-raises (type-preserving),
``raise exc_var`` (unresolvable statically), and crash-model
``BaseException``s that are supposed to kill the process rather than
cross the wire (``SimulatedCrash``, ``KeyboardInterrupt``,
``SystemExit``, ``GeneratorExit``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    FunctionRecord,
    ModuleInfo,
    rule,
)

#: BaseExceptions that must NOT be wire-encoded: they implement the
#: kill -9 crash model or interpreter control flow.
_CRASH_MODEL = frozenset(
    {"SimulatedCrash", "KeyboardInterrupt", "SystemExit", "GeneratorExit"}
)


def _registered_names(registry: ModuleInfo) -> Set[str]:
    """Exception type names the registry module can decode."""
    names: Set[str] = set()
    for node in ast.walk(registry.tree):
        # _EXCEPTION_TYPES = {exc.__name__: exc for exc in (A, B, ...)}
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.endswith("EXCEPTION_TYPES")
                    and node.value is not None
                ):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id[:1].isupper():
                            names.add(sub.id)
                        elif (
                            isinstance(sub, ast.Attribute)
                            and sub.attr[:1].isupper()
                        ):
                            # module-qualified entries: ipc.FrameError
                            names.add(sub.attr)
                # _EXCEPTION_TYPES["FaultInjected"] = FaultInjected
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id.endswith("EXCEPTION_TYPES")
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    names.add(target.slice.value)
        # decoder special cases: type_name == "ReplicaCallError"
        if isinstance(node, ast.Compare):
            for comparator in [node.left, *node.comparators]:
                if (
                    isinstance(comparator, ast.Constant)
                    and isinstance(comparator.value, str)
                    and comparator.value[:1].isupper()
                    and comparator.value.isidentifier()
                ):
                    names.add(comparator.value)
    return names


def _register_calls(context: AnalysisContext) -> Set[str]:
    """Names passed to ``register_exception(X)`` anywhere in the tree."""
    names: Set[str] = set()
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if callee == "register_exception" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Name):
                    names.add(arg.id)
    return names


def _roots(
    context: AnalysisContext, graph: CallGraph
) -> List[FunctionRecord]:
    roots: List[FunctionRecord] = []
    entry_modules: Set[str] = set()
    for record in context.each_function():
        if record.has_directive("rpc-entry"):
            roots.append(record)
            entry_modules.add(record.module.name)
            continue
        # @_op("name") table-dispatched handlers.
        for decorator in record.node.decorator_list:
            if (
                isinstance(decorator, ast.Call)
                and isinstance(decorator.func, ast.Name)
                and decorator.func.id == "_op"
            ):
                roots.append(record)
                break
    # Allowlisted method names: FOO_METHODS = frozenset({"a", "b"}) in
    # a module that has an rpc-entry dispatcher.
    method_names: Set[str] = set()
    for module in context.modules:
        if module.name not in entry_modules:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Name)
                    and target.id.endswith("_METHODS")
                ):
                    continue
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        method_names.add(sub.value)
    for name in sorted(method_names):
        roots.extend(graph.by_name.get(name, []))
    return roots


def _raised_names(record: FunctionRecord) -> Iterator[Tuple[str, int]]:
    for node in ast.walk(record.node):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is not None and name[:1].isupper():
            yield name, node.lineno


@rule(
    "EXC001",
    "every exception raisable from the RPC dispatch surface must be "
    "registered in the typed-exception codec (unregistered types "
    "silently degrade to RemoteError on the wire)",
)
def check_exception_flow(context: AnalysisContext) -> Iterator[Finding]:
    registries = [
        module
        for module in context.modules
        if module.markers.module_has("exception-registry")
    ]
    if not registries:
        return  # nothing to check against (e.g. a fixtures-only scan)

    registered: Set[str] = set(_CRASH_MODEL)
    for registry in registries:
        registered |= _registered_names(registry)
    registered |= _register_calls(context)

    graph: CallGraph = context.callgraph()  # type: ignore[assignment]
    reported: Dict[Tuple[str, str, int], bool] = {}
    for record in graph.reachable_from(_roots(context, graph)):
        for name, line in _raised_names(record):
            if name in registered:
                continue
            key = (record.module.path, name, line)
            if key in reported:
                continue
            reported[key] = True
            yield Finding(
                "EXC001",
                f"'{name}' raised in '{record.qualname}' can escape "
                f"the RPC dispatch surface but is not registered in "
                f"the typed-exception codec -- it would degrade to "
                f"RemoteError on the wire (register_exception or add "
                f"it to _EXCEPTION_TYPES)",
                record.module.path,
                line,
            )

"""Shared AST helpers for the rule families."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: Method-name suffix meaning "caller must already hold the owning
#: lock" (checked at call sites by LOCK001 instead of at the mutation).
LOCKED_HELPER_SUFFIX = "_locked"

LOOP_NODES = (
    ast.For,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def is_lock_factory_call(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    return False


def lock_attrs_of_class(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned a lock anywhere in the class body."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and is_lock_factory_call(node.value):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
    return locks


def _unwrap_target(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``(attr_name, receiver_expr)`` for ``<recv>.attr`` or
    ``<recv>.attr[...]`` targets; ``None`` for anything else."""
    if isinstance(target, ast.Subscript):
        target = target.value  # x.attr[k] = ... mutates x.attr
    if isinstance(target, ast.Attribute):
        return (target.attr, target.value)
    return None


def mutation_targets(node: ast.AST) -> Iterator[Tuple[str, ast.expr, ast.stmt]]:
    """Yield ``(attr_name, receiver_expr, stmt)`` for every attribute
    mutation (assign / aug-assign / ann-assign / delete) inside ``node``."""
    for child in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        elif isinstance(child, ast.Delete):
            targets = list(child.targets)
        else:
            continue
        flat: List[ast.expr] = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        for target in flat:
            unwrapped = _unwrap_target(target)
            if unwrapped is not None:
                yield (unwrapped[0], unwrapped[1], child)


def with_acquired_lock_attrs(
    node: ast.With, lock_attrs: Set[str]
) -> Set[str]:
    """Lock attribute names of ``self`` acquired by this ``with``."""
    acquired: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):  # with self._lock.acquire_timeout(...)
            expr = expr.func
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        ):
            acquired.add(expr.attr)
    return acquired


def nodes_under_self_lock(
    func: ast.FunctionDef, lock_attrs: Set[str]
) -> Set[int]:
    """ids of every AST node inside a ``with self.<lock>:`` block."""
    covered: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.With) and with_acquired_lock_attrs(node, lock_attrs):
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    covered.add(id(inner))
    return covered


def call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def loop_body_nodes(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Every AST node that executes once per loop iteration (loop
    bodies, while tests, comprehension elements) -- not loop iterables,
    which run once."""
    seen: Set[int] = set()

    def emit(node: ast.AST) -> Iterator[ast.AST]:
        for inner in ast.walk(node):
            if id(inner) not in seen:
                seen.add(id(inner))
                yield inner

    for node in ast.walk(func):
        if isinstance(node, ast.For):
            for stmt in list(node.body) + list(node.orelse):
                yield from emit(stmt)
        elif isinstance(node, ast.While):
            yield from emit(node.test)
            for stmt in list(node.body) + list(node.orelse):
                yield from emit(stmt)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            yield from emit(node.elt)
            for comp in node.generators:
                for cond in comp.ifs:
                    yield from emit(cond)
        elif isinstance(node, ast.DictComp):
            yield from emit(node.key)
            yield from emit(node.value)
            for comp in node.generators:
                for cond in comp.ifs:
                    yield from emit(cond)

"""Event-loop blocking lint for gateway modules (GATE001).

The query gateway (:mod:`repro.gateway`) runs its whole admission /
queue / dispatch pipeline on one asyncio event loop.  A single
blocking call anywhere on that path stalls *every* tenant at once --
admission decisions, queue drains, response writes -- which is exactly
the kind of whole-service latency cliff the gateway exists to prevent.
Blocking work belongs behind the awaitable submission seam
(``backend.submit(...)`` + ``asyncio.wrap_future``) or an explicit
executor offload.

Modules opt in with ``# zipg: gateway-path``.  In such modules the
rule flags calls that block the calling thread:

* ``time.sleep(...)`` (and a bare ``sleep(...)``) -- use
  ``asyncio.sleep``;
* synchronous socket I/O -- data ops (``send``/``recv`` and friends,
  also RPC001 territory), plus ``connect`` / ``accept`` /
  ``create_connection``.  ``socket.create_server`` is deliberately
  *not* flagged: a bind is constructor-time setup, before any loop
  runs;
* lock ``.acquire(...)`` -- in asyncio code a lock is taken with
  ``async with``; a literal ``acquire()`` is either a thread lock
  (blocks the loop) or an unidiomatic asyncio lock.

A function that intentionally performs blocking work off-loop (a
thread entry point, a ``run_in_executor`` target) opts out with
``# zipg: executor-offload`` on the definition; single lines opt out
with ``# zipg: ignore[GATE001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import AnalysisContext, Finding, rule

#: Socket methods that block on network progress.
BLOCKING_SOCKET_CALLS = frozenset({
    "accept",
    "connect",
    "recv",
    "recv_into",
    "recvfrom",
    "recvmsg",
    "send",
    "sendall",
    "sendfile",
    "sendmsg",
    "sendto",
})


def _blocking_reason(node: ast.Call) -> Optional[str]:
    """Why this call blocks the event loop, or ``None`` if it doesn't."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "sleep":
            return ("bare 'sleep(...)' blocks the event loop -- "
                    "await asyncio.sleep instead")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "sleep":
        # time.sleep blocks; asyncio.sleep / loop.sleep variants do not.
        value = func.value
        if isinstance(value, ast.Name) and value.id == "time":
            return ("'time.sleep(...)' blocks the event loop -- "
                    "await asyncio.sleep instead")
        return None
    if func.attr == "create_connection":
        return ("'create_connection(...)' performs a blocking connect -- "
                "use asyncio.open_connection (or keep sockets behind the "
                "submission seam)")
    if func.attr in BLOCKING_SOCKET_CALLS:
        return (f"synchronous socket call '.{func.attr}(...)' blocks the "
                f"event loop -- use the asyncio stream helpers "
                f"(repro.server.ipc.send_frame_async/recv_frame_async)")
    if func.attr == "acquire":
        return ("lock '.acquire(...)' blocks the event loop -- take "
                "asyncio locks with 'async with', and keep thread locks "
                "off the gateway path")
    return None


@rule(
    "GATE001",
    "modules marked '# zipg: gateway-path' must not block the event "
    "loop (no time.sleep, sync socket I/O, or lock acquire())",
)
def check_gateway_blocking(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not module.markers.module_has("gateway-path"):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(node)
            if reason is None:
                continue
            record = module.enclosing_function(node.lineno)
            if record is not None and record.has_directive(
                    "executor-offload"):
                continue
            yield Finding(
                "GATE001",
                f"{reason} (or mark the function "
                f"'# zipg: executor-offload' if it runs off-loop)",
                module.path,
                node.lineno,
            )

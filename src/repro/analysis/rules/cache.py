"""Cache-coherence lint (CACHE001).

The hot-set cache (:mod:`repro.perf.cache`) embeds an epoch counter in
every cache key; a mutation that forgets to bump the epoch leaves stale
entries *reachable* -- the exact bug class the epoch design exists to
make impossible. In modules marked ``# zipg: cache-backed``, every
mutating method (``append_*``, ``delete_*``, ``update_*``,
``freeze_*``, ``compact_*``, ``mark_*``, ``add_*``, ``remove_*``) must
bump an epoch, either directly (a ``....bump()`` call) or transitively
through another method of the same class (``self.helper()`` where the
helper bumps).

A mutator that genuinely cannot invalidate cached reads (it mutates
state no cache key covers) opts out with ``# zipg: ignore[CACHE001]``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Set

from repro.analysis.engine import AnalysisContext, Finding, rule

#: Method-name prefixes that mutate store state the cache may front.
MUTATOR_RE = re.compile(
    r"^(append|delete|update|freeze|compact|mark|add|remove)_"
)


def _bumps_epoch_directly(func: ast.FunctionDef) -> bool:
    """Any ``<something>.bump()`` call inside the function body."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "bump"
        ):
            return True
    return False


def _self_calls(func: ast.FunctionDef) -> Set[str]:
    """Names of ``self.<name>(...)`` methods the function calls."""
    calls: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


def _bumping_methods(cls: ast.ClassDef) -> Set[str]:
    """Methods that bump an epoch directly or via same-class self-calls
    (transitive fixpoint over the class-local call graph)."""
    methods: Dict[str, ast.FunctionDef] = {
        node.name: node
        for node in cls.body
        if isinstance(node, ast.FunctionDef)
    }
    bumping = {
        name for name, func in methods.items() if _bumps_epoch_directly(func)
    }
    calls = {name: _self_calls(func) for name, func in methods.items()}
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in bumping and callees & bumping:
                bumping.add(name)
                changed = True
    return bumping


@rule(
    "CACHE001",
    "mutating methods in cache-backed modules must bump an epoch so "
    "stale cache entries become unreachable",
)
def check_cache_epoch_bumps(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not module.markers.module_has("cache-backed"):
            continue
        for cls in module.classes:
            bumping = _bumping_methods(cls)
            for node in cls.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                if not MUTATOR_RE.match(node.name):
                    continue
                if node.name in bumping:
                    continue
                yield Finding(
                    "CACHE001",
                    f"mutating method '{cls.name}.{node.name}' in a "
                    f"cache-backed module never bumps an epoch -- cached "
                    f"reads keyed on the old epoch stay reachable and "
                    f"serve stale data (bump the epoch or mark "
                    f"'# zipg: ignore[CACHE001]')",
                    module.path,
                    node.lineno,
                )

"""Hot-path kernel lint (HOT001/HOT002).

PR 1 replaced scalar NPA hops and per-character extraction with
batched lockstep kernels (``extract_batch``, ``char_at_batch``,
``walk_collect``); this family keeps scalar regressions from creeping
back into modules marked ``# zipg: hot-path``.  A function that is
legitimately scalar (binary-search probes, sub-cutoff fallbacks)
opts out with ``# zipg: scalar-ok``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.analysis.engine import AnalysisContext, Finding, rule
from repro.analysis.rules.common import call_name, loop_body_nodes

#: Per-element kernels that devolve to one NPA hop / random access per
#: call; inside a loop they are the exact pattern PR 1 removed.
SCALAR_KERNELS = frozenset(
    {
        "extract_scalar",
        "search_scalar",
        "char_at",
        "char_of_row",
        "_lookup_sa",
        "_lookup_isa",
    }
)

#: Per-record accessors with a batched counterpart to prefer when
#: called once per loop iteration.
BATCHED_ALTERNATIVES: Dict[str, str] = {
    "extract": "extract_batch",
    "extract_until": "extract_batch with explicit lengths",
    "timestamp_at": "all_timestamps / walk_collect",
    "destination_at": "all_destinations / walk_collect",
    "properties_at": "all_properties",
    "edge_data_at": "walk_collect",
}


@rule(
    "HOT001",
    "scalar NPA/suffix-array kernels must not be called inside loops "
    "in hot-path modules (use the batched kernels)",
)
def check_scalar_kernels_in_loops(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not module.is_hot:
            continue
        for record in module.functions:
            if record.has_directive("scalar-ok"):
                continue
            seen: Set[Tuple[int, str]] = set()
            for node in loop_body_nodes(record.node):
                message = None
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name in SCALAR_KERNELS:
                        message = (
                            f"scalar kernel '{name}' called per loop "
                            f"iteration in hot-path function "
                            f"'{record.qualname}'"
                        )
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load
                ):
                    value = node.value
                    attr = None
                    if isinstance(value, ast.Attribute):
                        attr = value.attr
                    elif isinstance(value, ast.Name):
                        attr = value.id
                    if attr is not None and "npa" in attr.lower():
                        message = (
                            f"per-element NPA indexing of '{attr}' inside "
                            f"a loop in hot-path function "
                            f"'{record.qualname}' -- walk in batch"
                        )
                if message is None:
                    continue
                key = (node.lineno, message)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding("HOT001", message, module.path, node.lineno)


@rule(
    "HOT002",
    "per-record accessors with batched counterparts should not run "
    "once per loop iteration in hot-path modules",
)
def check_per_record_accessors_in_loops(
    context: AnalysisContext,
) -> Iterator[Finding]:
    for module in context.modules:
        if not module.is_hot:
            continue
        for record in module.functions:
            if record.has_directive("scalar-ok"):
                continue
            seen: Set[Tuple[int, str]] = set()
            for node in loop_body_nodes(record.node):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name not in BATCHED_ALTERNATIVES:
                    continue
                key = (node.lineno, name or "")
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    "HOT002",
                    f"'{name}' called per loop iteration in hot-path "
                    f"function '{record.qualname}' -- prefer "
                    f"{BATCHED_ALTERNATIVES[name or '']}",
                    module.path,
                    node.lineno,
                )

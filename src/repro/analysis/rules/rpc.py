"""RPC framing-boundary lint (RPC001).

Every byte that crosses a ZipG socket is length-prefix framed by
:mod:`repro.server.ipc` -- that module is the *only* place raw socket
I/O primitives may appear.  Code elsewhere that calls ``sendall`` /
``recv`` and friends directly bypasses the framing layer, which means
it also bypasses the ``rpc.send`` / ``rpc.recv`` chaos sites, the
torn-frame / oversized-prefix protection, and the
:class:`~repro.server.ipc.FrameError` taxonomy the transport's
failure mapping is built on.  A partial ``send`` or short ``recv``
handled ad hoc is exactly the bug class the framing module exists to
make impossible.

The rule flags any call whose attribute name is a raw socket I/O
primitive (``send``, ``sendall``, ``recv``, ``recv_into``,
``sendmsg``, ``recvmsg``, ``sendfile``) in modules other than the
framing module itself.  Non-socket objects that happen to share a
method name (a generator's ``send``, a queue wrapper's ``recv``) opt
out with ``# zipg: ignore[RPC001]`` on the offending line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import AnalysisContext, Finding, rule

#: Raw socket I/O primitives that bypass length-prefix framing.
RAW_SOCKET_CALLS = frozenset({
    "send",
    "sendall",
    "recv",
    "recv_into",
    "sendmsg",
    "recvmsg",
    "sendfile",
})

#: The one module allowed to touch sockets directly (path suffixes,
#: matched with ``/`` and ``os.sep`` both normalized).
FRAMING_MODULES = ("repro/server/ipc.py",)


def _is_framing_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in FRAMING_MODULES)


@rule(
    "RPC001",
    "raw socket I/O is confined to the framing module "
    "(repro.server.ipc); everything else goes through framed RPC",
)
def check_raw_socket_io(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if _is_framing_module(module.path):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in RAW_SOCKET_CALLS:
                continue
            yield Finding(
                "RPC001",
                f"raw socket call '.{func.attr}(...)' outside the "
                f"framing module -- route bytes through "
                f"repro.server.ipc (send_frame/recv_frame) so framing, "
                f"chaos sites, and FrameError mapping apply (or mark "
                f"'# zipg: ignore[RPC001]' if this is not a socket)",
                module.path,
                node.lineno,
            )

"""Lockset race detection (RACE001).

An Eraser-style may-hold lockset analysis over the receiver-aware call
graph.  The threaded region of the program is everything reachable
from a *threaded entry point*:

* callables fanned out through ``<executor>.map(...)`` /
  ``map_shared(...)`` (the ShardExecutor worker pool);
* ``threading.Thread(target=...)`` targets and ``.submit(...)``
  arguments (the RpcServerBase accept/reader/worker threads);
* loader callables passed to a cache's ``get_or_load``.

Starting from those entries with an empty lockset, the analysis
propagates the union of locks held on *any* path to each reachable
function: a call made inside ``with self.<lock>:`` adds
``Class.<lock>`` to the callee's may-hold set.  A write to an
attribute of a lock-owning class is then flagged when the function is
reachable from a threaded entry and **no** path to it holds one of
the owning class's locks (nor is the write syntactically inside a
``with self.<lock>:`` block).

Union (may-hold) semantics are deliberate: if at least one path holds
the lock the write is assumed disciplined (LOCK001 checks the
per-path syntactic contract), so RACE001 only fires on writes whose
lockset is provably empty -- the classic data-race signature.

Exemptions:

* ``__init__``-family methods (the object is not yet shared);
* modules marked ``# zipg: single-writer`` (their unlocked writes
  follow the stats single-writer contract, checked by LOCK003);
* the lock attributes themselves.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.callgraph import CallGraph, called_names
from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    FunctionRecord,
    rule,
)
from repro.analysis.rules.common import mutation_targets
from repro.analysis.rules.locks import (
    LockOwner,
    _INIT_METHODS,
    discover_lock_owners,
)

#: ``<receiver>.<name>(fn, ...)`` shapes whose first argument runs on
#: another thread.
_FANOUT_METHODS = frozenset({"map", "map_shared", "submit"})


def _callable_records(
    graph: CallGraph, record: FunctionRecord, expr: ast.expr
) -> List[FunctionRecord]:
    """Resolve a callable-valued argument to function records."""
    if isinstance(expr, ast.Lambda):
        out: List[FunctionRecord] = []
        for name in sorted(called_names(expr.body)):
            out.extend(graph.by_name.get(name, []))
        return out
    if isinstance(expr, ast.Attribute):
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and record.class_name is not None
        ):
            return graph.lookup_method(record.class_name, expr.attr)
        return list(graph.by_name.get(expr.attr, []))
    if isinstance(expr, ast.Name):
        return list(graph.by_name.get(expr.id, []))
    return []


def _thread_entries(
    graph: CallGraph, context: AnalysisContext
) -> Dict[str, str]:
    """Function key -> human-readable entry description, for every
    function handed to another thread."""
    entries: Dict[str, str] = {}

    def add(targets: List[FunctionRecord], via: str) -> None:
        for target in targets:
            entries.setdefault(target.qualkey, via)

    for record in context.each_function():
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Thread(target=fn) / threading.Thread(target=fn)
            callee = None
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        add(
                            _callable_records(graph, record, kw.value),
                            f"Thread(target=...) in {record.qualname}",
                        )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _FANOUT_METHODS and node.args:
                add(
                    _callable_records(graph, record, node.args[0]),
                    f"{func.attr}() fan-out in {record.qualname}",
                )
            elif func.attr == "get_or_load" and len(node.args) >= 2:
                add(
                    _callable_records(graph, record, node.args[1]),
                    f"get_or_load loader in {record.qualname}",
                )
    return entries


def _locks_covering_calls(
    record: FunctionRecord, lock_attrs: Set[str]
) -> Dict[int, Set[str]]:
    """``id(node) -> {lock attrs held}`` for every node syntactically
    inside a ``with self.<lock>:`` block of ``record``."""
    covering: Dict[int, Set[str]] = {}

    def visit(node: ast.AST, held: Set[str]) -> None:
        for child in ast.iter_child_nodes(node):
            now = held
            if isinstance(child, ast.With):
                acquired = set()
                for item in child.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in lock_attrs
                    ):
                        acquired.add(expr.attr)
                if acquired:
                    now = held | acquired
            if now:
                covering[id(child)] = now
            visit(child, now)

    visit(record.node, set())
    return covering


@rule(
    "RACE001",
    "writes to attributes of lock-owning classes reachable from "
    "thread-pool / server-thread entry points must hold the owning "
    "lock on at least one path",
)
def check_locksets(context: AnalysisContext) -> Iterator[Finding]:
    graph: CallGraph = context.callgraph()  # type: ignore[assignment]
    owners = discover_lock_owners(context)
    owner_of_class: Dict[str, LockOwner] = {o.class_name: o for o in owners}
    if not owner_of_class:
        return

    entries = _thread_entries(graph, context)
    if not entries:
        return

    # May-hold fixpoint: union of lock nodes held on any path from an
    # entry.  Monotone (sets only grow), so the worklist terminates.
    may_hold: Dict[str, Set[str]] = {}
    origin: Dict[str, str] = {}
    worklist: List[str] = []
    for key, via in entries.items():
        may_hold[key] = set()
        origin[key] = via
        worklist.append(key)

    while worklist:
        key = worklist.pop()
        record = graph.record_for(key)
        if record is None:
            continue
        held_here = may_hold[key]
        lock_attrs: Set[str] = set()
        owner = owner_of_class.get(record.class_name or "")
        if owner is not None:
            lock_attrs = owner.lock_attrs
        covering = (
            _locks_covering_calls(record, lock_attrs) if lock_attrs else {}
        )
        for call, targets in graph.callees_at(record):
            at_call = held_here
            held_attrs = covering.get(id(call))
            if held_attrs:
                at_call = held_here | {
                    f"{record.class_name}.{attr}" for attr in held_attrs
                }
            for target in targets:
                tkey = target.qualkey
                known = may_hold.get(tkey)
                if known is None:
                    may_hold[tkey] = set(at_call)
                    origin[tkey] = origin[key]
                    worklist.append(tkey)
                elif not at_call <= known:
                    known.update(at_call)
                    worklist.append(tkey)

    for key, held in sorted(may_hold.items()):
        record = graph.record_for(key)
        if record is None or record.class_name is None:
            continue
        if record.name in _INIT_METHODS:
            continue
        owner = owner_of_class.get(record.class_name)
        if owner is None or owner.module is not record.module:
            continue
        if record.module.markers.module_has("single-writer"):
            continue
        lock_nodes = {
            f"{record.class_name}.{attr}" for attr in owner.lock_attrs
        }
        covering = _locks_covering_calls(record, owner.lock_attrs)
        for attr, recv, node in mutation_targets(record.node):
            if not (isinstance(recv, ast.Name) and recv.id == "self"):
                continue
            if attr in owner.lock_attrs:
                continue
            if id(node) in covering:
                continue  # syntactically under the lock
            required = owner.guarded.get(attr)
            if required is not None:
                safe = f"{record.class_name}.{required}" in held
            else:
                safe = bool(lock_nodes & held)
            if safe:
                continue
            yield Finding(
                "RACE001",
                f"write to '{record.class_name}.{attr}' in "
                f"'{record.qualname}' is reachable from threaded entry "
                f"({origin[key]}) with an empty lockset -- no path "
                f"holds "
                + (
                    f"'{required}'"
                    if required is not None
                    else f"any of {sorted(owner.lock_attrs)}"
                ),
                record.module.path,
                node.lineno,
            )

"""Public-API hygiene rules (API001/API002).

API001 keeps the public surface of ``repro.core`` / ``repro.succinct``
(and any module marked ``# zipg: public-api``) fully type-annotated so
the mypy-strict gate stays meaningful.  API002 forbids silently
swallowing the :mod:`repro.core.errors` hierarchy -- a bare
``except ...: pass`` around ``NodeNotFound`` or ``GraphFormatError``
turns data corruption into quiet wrong answers.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    FunctionRecord,
    ModuleInfo,
    rule,
)

#: The repro.core.errors hierarchy by name (the call site may import
#: any subset, so the known names are always considered).
ERROR_CLASS_NAMES = frozenset(
    {
        "ZipGError",
        "GraphFormatError",
        "NodeNotFound",
        "EdgeRecordNotFound",
        "TooManyProperties",
        "Exception",
        "BaseException",
    }
)


def _is_staticmethod(node: ast.FunctionDef) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )


def _missing_annotations(record: FunctionRecord) -> List[str]:
    node = record.node
    missing: List[str] = []
    positional = list(node.args.posonlyargs) + list(node.args.args)
    skip_first = (
        record.class_name is not None
        and not _is_staticmethod(node)
        and bool(positional)
    )
    if skip_first:
        positional = positional[1:]
    for arg in positional + list(node.args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    for vararg in (node.args.vararg, node.args.kwarg):
        if vararg is not None and vararg.annotation is None:
            missing.append(vararg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


def _public_class_names(module: ModuleInfo) -> Set[str]:
    return {cls.name for cls in module.classes if not cls.name.startswith("_")}


@rule(
    "API001",
    "public repro.core / repro.succinct functions must be fully "
    "type-annotated (arguments and return)",
)
def check_public_annotations(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not module.is_public_api:
            continue
        public_classes = _public_class_names(module)
        for record in module.functions:
            if record.nested:
                continue
            name = record.name
            if record.class_name is None:
                if name.startswith("_"):
                    continue
            else:
                if record.class_name not in public_classes:
                    continue
                if name.startswith("_") and name != "__init__":
                    continue
            missing = _missing_annotations(record)
            if not missing:
                continue
            yield Finding(
                "API001",
                f"public function '{record.qualname}' is missing type "
                f"annotations for: {', '.join(missing)}",
                module.path,
                record.node.lineno,
            )


def _exception_names(type_node: Optional[ast.expr]) -> List[str]:
    if type_node is None:
        return []
    nodes: List[ast.expr] = (
        list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
    )
    names: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _body_is_only_pass(body: List[ast.stmt]) -> bool:
    return all(isinstance(stmt, ast.Pass) for stmt in body)


@rule(
    "API002",
    "repro.core.errors exceptions must not be silently swallowed "
    "(no bare except, no 'except ZipGError: pass')",
)
def check_swallowed_errors(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        known = set(ERROR_CLASS_NAMES)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.core.errors":
                known.update(alias.asname or alias.name for alias in node.names)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    "API002",
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt -- name the exception",
                    module.path,
                    node.lineno,
                )
                continue
            caught = [n for n in _exception_names(node.type) if n in known]
            if caught and _body_is_only_pass(node.body):
                yield Finding(
                    "API002",
                    f"'{', '.join(caught)}' silently swallowed "
                    f"(handler body is only 'pass') -- handle it or "
                    f"let it propagate",
                    module.path,
                    node.lineno,
                )

"""Byte-layout invariant rules (LAYOUT001/LAYOUT002).

The ZipG node/edge file formats (paper section 3.3) reserve control
bytes below 0x20 as record/field delimiters.  Those values are named
once in :mod:`repro.core.delimiters`; a raw magic number anywhere else
is a latent format skew.  Writer/parser pairs are declared with
``# zipg: layout-writer[tag]`` / ``# zipg: layout-parser[tag]`` and
cross-checked: a parser may only depend on constants its writer also
uses, and neither side may bake in unnamed widths.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    FunctionRecord,
    ModuleInfo,
    rule,
)

#: Reserved delimiter byte values that must never appear as raw
#: integer literals outside repro.core.delimiters.
RESERVED_DELIMITER_BYTES = frozenset({0x1B, 0x1C, 0x1D, 0x1E})

#: Control bytes that are only suspicious when written as payload
#: (elements of a bytes([...]) / bytearray([...]) literal) -- 0 and 1
#: are ubiquitous as plain integers.
CONTROL_PAYLOAD_BYTES = frozenset({0x00, 0x01})

_BYTES_CONSTRUCTORS = frozenset({"bytes", "bytearray"})

#: Small integers that never need naming inside layout functions
#: (identity / emptiness / sign checks).
_ALLOWED_BARE_INTS = frozenset({-1, 0, 1})


@rule(
    "LAYOUT001",
    "reserved delimiter bytes must be referenced via "
    "repro.core.delimiters, never as raw literals",
)
def check_raw_delimiter_bytes(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not module.is_core_layout or module.name.endswith(".delimiters"):
            continue
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and node.value in RESERVED_DELIMITER_BYTES
            ):
                yield Finding(
                    "LAYOUT001",
                    f"raw reserved delimiter byte {node.value:#04x} -- "
                    f"use the named constant from repro.core.delimiters",
                    module.path,
                    node.lineno,
                )
            if isinstance(node, ast.Call) and (
                (isinstance(node.func, ast.Name) and node.func.id in _BYTES_CONSTRUCTORS)
            ):
                for arg in node.args:
                    if not isinstance(arg, (ast.List, ast.Tuple)):
                        continue
                    for element in arg.elts:
                        if (
                            isinstance(element, ast.Constant)
                            and type(element.value) is int
                            and element.value in CONTROL_PAYLOAD_BYTES
                        ):
                            yield Finding(
                                "LAYOUT001",
                                f"raw control byte {element.value:#04x} "
                                f"written as payload -- use the named "
                                f"constant from repro.core.delimiters",
                                module.path,
                                element.lineno,
                            )


def _marked_functions(
    context: AnalysisContext, directive: str
) -> Dict[str, List[Tuple[ModuleInfo, FunctionRecord]]]:
    """tag -> [(module, record)] for every function carrying
    ``# zipg: <directive>[tag]``."""
    by_tag: Dict[str, List[Tuple[ModuleInfo, FunctionRecord]]] = {}
    for module in context.modules:
        for record in module.functions:
            for tag in record.directive_args(directive):
                by_tag.setdefault(tag, []).append((module, record))
    return by_tag


def _referenced_delimiter_names(
    module: ModuleInfo, record: FunctionRecord
) -> Set[str]:
    imported = set(module.delimiter_imports())
    names: Set[str] = set()
    for node in ast.walk(record.node):
        if isinstance(node, ast.Name) and node.id in imported:
            names.add(node.id)
    return names


@rule(
    "LAYOUT002",
    "layout-writer / layout-parser pairs must agree on the delimiter "
    "constants they use, and must not hard-code layout widths",
)
def check_writer_parser_agreement(context: AnalysisContext) -> Iterator[Finding]:
    writers = _marked_functions(context, "layout-writer")
    parsers = _marked_functions(context, "layout-parser")

    for tag in sorted(set(writers) | set(parsers)):
        tag_writers = writers.get(tag, [])
        tag_parsers = parsers.get(tag, [])
        if not tag_writers:
            module, record = tag_parsers[0]
            yield Finding(
                "LAYOUT002",
                f"layout-parser[{tag}] has no matching layout-writer[{tag}] "
                f"in the scanned tree",
                module.path,
                record.node.lineno,
            )
            continue
        if not tag_parsers:
            module, record = tag_writers[0]
            yield Finding(
                "LAYOUT002",
                f"layout-writer[{tag}] has no matching layout-parser[{tag}] "
                f"in the scanned tree",
                module.path,
                record.node.lineno,
            )
            continue
        written: Set[str] = set()
        for module, record in tag_writers:
            written.update(_referenced_delimiter_names(module, record))
        for module, record in tag_parsers:
            for name in sorted(_referenced_delimiter_names(module, record)):
                # Asymmetric on purpose: writers may emit constants the
                # parser skips over, but a parser depending on a
                # constant the writer never emits is a format skew.
                if name not in written:
                    yield Finding(
                        "LAYOUT002",
                        f"parser '{record.qualname}' depends on delimiter "
                        f"constant '{name}' that no layout-writer[{tag}] "
                        f"references",
                        module.path,
                        record.node.lineno,
                    )

    # No unnamed widths inside any marked layout function (the body
    # only: signature defaults like ``alpha=32`` are not layout).
    for directive_tags in (writers, parsers):
        for tag, pairs in directive_tags.items():
            for module, record in pairs:
                for node in (n for stmt in record.node.body for n in ast.walk(stmt)):
                    if (
                        isinstance(node, ast.Constant)
                        and type(node.value) is int
                        and node.value not in _ALLOWED_BARE_INTS
                    ):
                        yield Finding(
                            "LAYOUT002",
                            f"bare integer literal {node.value} inside "
                            f"layout function '{record.qualname}' -- name "
                            f"it in repro.core.delimiters",
                            module.path,
                            node.lineno,
                        )

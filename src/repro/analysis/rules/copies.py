"""Hidden-copy lint (COPY001).

The zero-copy storage path exists so a memory-mapped shard never pulls
its payload through the Python heap: :mod:`repro.succinct.serialize`
returns ``memoryview``/``np.frombuffer`` *views* over the caller's
buffer and every decoder keeps them.  One stray full-buffer copy --
``view.tobytes()``, ``bytes(view)``, ``np.frombuffer(...).copy()`` --
silently reverts a load path to eager materialization and defeats
``load_store(mode="mmap")`` without failing a single test.

In the storage-critical modules (everything under ``repro.succinct``,
the ``repro.core`` storage files, and any module marked ``# zipg:
hot-path``) this rule flags:

* zero-argument ``.tobytes()`` calls (ndarray/memoryview -> bytes);
* ``bytes(x)`` where ``x`` is a bare name or attribute (wrapping an
  existing buffer; ``bytes(n)`` literals and slices are not flagged);
* ``.copy()`` chained onto an ``np.frombuffer(...)`` call (a view
  materialized the instant it was created).

A copy that is *supposed* to own its storage (a mutable deletion
bitmap, a ``bytes`` return the public API promises) declares so with
``# zipg: owned-copy`` on the statement -- the marker is the reviewable
record that someone decided the allocation is the point.  The generic
``# zipg: ignore[COPY001]`` works too.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import AnalysisContext, Finding, ModuleInfo, rule

#: ``repro.core`` modules on the shard serialization path.  The rest of
#: the scope comes from the package prefix / ``hot-path`` marker.
STORAGE_MODULES = frozenset(
    {
        "repro.core.persistence",
        "repro.core.shard",
        "repro.core.nodefile",
        "repro.core.edgefile",
    }
)


def _in_scope(module: ModuleInfo) -> bool:
    if module.name in STORAGE_MODULES:
        return True
    if module.name.startswith("repro.succinct"):
        return True
    return module.markers.module_has("hot-path")


def _owned_copy(module: ModuleInfo, line: int) -> bool:
    """``# zipg: owned-copy`` anywhere on the enclosing statement."""
    start, end = module.statement_span(line)
    return any(
        directive.name == "owned-copy"
        for lineno in range(start, end + 1)
        for directive in module.markers.at(lineno)
    )


def _is_frombuffer(node: ast.AST) -> bool:
    """``np.frombuffer(...)`` / ``frombuffer(...)`` call expression."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "frombuffer"
    return isinstance(func, ast.Name) and func.id == "frombuffer"


def _describe(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # zipg: ignore[ROBUST001]
        return "<expression>"


def _copy_call(node: ast.Call) -> Iterator[str]:
    """Yield a description for each full-buffer copy this call makes."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "tobytes" and not node.args and not node.keywords:
            yield (
                f"'{_describe(func.value)}.tobytes()' materializes the "
                f"whole buffer"
            )
        if (
            func.attr == "copy"
            and not node.args
            and _is_frombuffer(func.value)
        ):
            yield (
                "'frombuffer(...).copy()' copies a view the moment it "
                "is created"
            )
    elif (
        isinstance(func, ast.Name)
        and func.id == "bytes"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], (ast.Name, ast.Attribute))
    ):
        yield (
            f"'bytes({_describe(node.args[0])})' copies the full "
            f"underlying buffer"
        )


@rule(
    "COPY001",
    "storage/succinct hot paths must stay zero-copy: full-buffer "
    "copies need an explicit '# zipg: owned-copy' marker",
)
def check_hidden_copies(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not _in_scope(module):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for description in _copy_call(node):
                if _owned_copy(module, node.lineno):
                    continue
                yield Finding(
                    "COPY001",
                    f"{description} -- on the zero-copy storage path "
                    f"this silently re-materializes mmap-backed data; "
                    f"keep the view, or mark the statement "
                    f"'# zipg: owned-copy' if owning the bytes is "
                    f"intended",
                    module.path,
                    node.lineno,
                )

"""Observability coverage lint (OBS001).

The per-layer latency breakdown (``repro stats``, the bench
``BENCH_*.json`` artifacts) is only as complete as the spans on the
query path. In modules marked ``# zipg: query-api``:

* every public query/update method (``get_*``, ``find_*``, ``has_*``,
  ``append_*``, ``delete_*``, ``update_*``) must be span-wrapped --
  decorated with ``@obs.traced(...)`` or opening a ``with
  obs.span(...)`` block; and
* every ``executor.map`` fan-out call site must sit inside a
  span-wrapped function, otherwise the worker spans it propagates
  (``executor.worker``) attach to whatever span happens to be current
  in the caller's caller, mis-attributing the fan-out's time.

A method that is intentionally untraced (a trivial delegation whose
own span would only add overhead) opts out with ``# zipg: span-free``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import AnalysisContext, Finding, FunctionRecord, rule
from repro.analysis.rules.common import call_name

#: Method-name prefixes of Table 1's query/update surface.
QUERY_METHOD_RE = re.compile(r"^(get|find|has|append|delete|update)_")


def _is_span_call(node: ast.expr) -> bool:
    """``obs.span(...)`` / ``tracer.span(...)`` / bare ``span(...)``."""
    return isinstance(node, ast.Call) and call_name(node) == "span"


def _is_traced_decorator(node: ast.expr) -> bool:
    """``@obs.traced(...)`` / ``@traced`` (with or without arguments)."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr == "traced"
    if isinstance(target, ast.Name):
        return target.id == "traced"
    return False


def _span_wrapped(record: FunctionRecord) -> bool:
    """Whether the function is covered by a span."""
    if any(_is_traced_decorator(d) for d in record.node.decorator_list):
        return True
    for node in ast.walk(record.node):
        if isinstance(node, ast.With) and any(
            _is_span_call(item.context_expr) for item in node.items
        ):
            return True
    return False


def _is_executor_map(node: ast.Call) -> bool:
    """``<...>.executor.map(...)`` / ``executor.map(...)`` call sites."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "map"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "executor"
    if isinstance(receiver, ast.Name):
        return receiver.id == "executor"
    return False


@rule(
    "OBS001",
    "public query methods and executor.map fan-outs in query-api "
    "modules must be span-wrapped (obs.traced / obs.span)",
)
def check_query_path_spans(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not module.markers.module_has("query-api"):
            continue
        for record in module.functions:
            if (
                record.class_name is not None
                and not record.nested
                and QUERY_METHOD_RE.match(record.name)
                and not record.has_directive("span-free")
                and not _span_wrapped(record)
            ):
                yield Finding(
                    "OBS001",
                    f"query method '{record.qualname}' is not "
                    f"span-wrapped -- its latency is invisible to the "
                    f"per-layer breakdown (decorate with obs.traced or "
                    f"mark '# zipg: span-free')",
                    module.path,
                    record.node.lineno,
                )
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_executor_map(node)):
                continue
            record = module.enclosing_function(node.lineno)
            if (
                record is None
                or record.has_directive("span-free")
                or _span_wrapped(record)
            ):
                continue
            yield Finding(
                "OBS001",
                f"executor.map fan-out in '{record.qualname}' runs "
                f"outside any span -- worker spans will attach to the "
                f"wrong parent (wrap the call or mark "
                f"'# zipg: span-free')",
                module.path,
                node.lineno,
            )

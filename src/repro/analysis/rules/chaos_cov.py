"""Chaos-site coverage of raw I/O (CHAOS001).

The fault-injection story (crash-at-every-point recovery, torn
writes, socket resets) only covers what actually routes through
:mod:`repro.chaos`.  A raw I/O call added to a robust-path module
without a chaos site is invisible to every chaos suite -- the exact
blind spot the suites exist to prevent.

In every robust-path module (same scope as ROBUST001, minus the
:mod:`repro.chaos` package itself, which *implements* the sites),
CHAOS001 flags raw I/O calls:

* ``os.fsync`` / ``os.replace`` / ``os.rename`` / ``os.ftruncate``;
* socket data ops (``sendall``, ``recv``, ``recv_into``, ``sendto``,
  ``recvfrom``);
* ``write`` / ``truncate`` / ``flush`` on a handle opened for writing
  in the same function (``open(..., "wb")`` et al.);

unless the I/O is *behind a chaos site*, meaning one of:

* the enclosing function itself calls ``chaos.kick`` /
  ``chaos.crash_point`` / ``chaos.write_bytes``; or
* every scanned caller (receiver-aware call graph, transitively) is
  itself covered or lives in the chaos package -- e.g. ``_fsync_dir``
  is only called from ``save_store``, whose crash points bracket it;
  or
* the I/O lives in a *chaos handle* class -- one whose constructor
  appears inside the arguments of a chaos hook call, like
  ``chaos.write_bytes(SITE, _SocketWriter(sock), frame)``: the object
  exists to be driven BY the injector, so its methods are the site.

The transitive-caller rule means a helper needs no site of its own as
long as no chaos-invisible path can reach its I/O.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import (
    AnalysisContext,
    Finding,
    FunctionRecord,
    rule,
)
from repro.analysis.rules.robustness import is_robust_path

_CHAOS_HOOKS = frozenset({"kick", "crash_point", "write_bytes"})
_OS_IO = frozenset({"fsync", "replace", "rename", "ftruncate"})
_SOCKET_IO = frozenset({"sendall", "recv", "recv_into", "sendto", "recvfrom"})
_HANDLE_IO = frozenset({"write", "truncate", "flush"})
_WRITE_MODES = ("w", "a", "r+", "w+", "a+", "x")


def _is_chaos_module(name: str) -> bool:
    return name == "repro.chaos" or name.startswith("repro.chaos.")


def _has_chaos_hook(record: FunctionRecord) -> bool:
    for node in ast.walk(record.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _CHAOS_HOOKS:
            return True
    return False


def _write_handles(record: FunctionRecord) -> Set[str]:
    """Local names bound to ``open(..., <write mode>)`` handles."""
    handles: Set[str] = set()

    def open_mode(call: ast.expr) -> Optional[str]:
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "open"
        ):
            return None
        mode = None
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            mode = call.args[1].value
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        return mode if isinstance(mode, str) else ""

    for node in ast.walk(record.node):
        if isinstance(node, ast.With):
            for item in node.items:
                mode = open_mode(item.context_expr)
                if mode is None or not mode.startswith(_WRITE_MODES):
                    continue
                if isinstance(item.optional_vars, ast.Name):
                    handles.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign):
            mode = open_mode(node.value)
            if mode is None or not mode.startswith(_WRITE_MODES):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    handles.add(target.id)
    return handles


def _raw_io_calls(record: FunctionRecord) -> Iterator[Tuple[str, int]]:
    """``(description, line)`` of every raw I/O call in ``record``."""
    handles = _write_handles(record)
    for node in ast.walk(record.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        recv = func.value
        if (
            isinstance(recv, ast.Name)
            and recv.id == "os"
            and func.attr in _OS_IO
        ):
            yield f"os.{func.attr}", node.lineno
        elif func.attr in _SOCKET_IO:
            yield f"<socket>.{func.attr}", node.lineno
        elif (
            func.attr in _HANDLE_IO
            and isinstance(recv, ast.Name)
            and recv.id in handles
        ):
            yield f"{recv.id}.{func.attr}", node.lineno


@rule(
    "CHAOS001",
    "raw I/O in robust-path modules must sit behind a repro.chaos "
    "site (directly or via chaos-covered callers) so fault injection "
    "reaches it",
)
def check_chaos_coverage(context: AnalysisContext) -> Iterator[Finding]:
    graph: CallGraph = context.callgraph()  # type: ignore[assignment]

    # Classes constructed inside a chaos hook's arguments are handles
    # the injector drives; their methods count as covered.
    handle_classes: Set[str] = set()
    for record in context.each_function():
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name not in _CHAOS_HOOKS:
                continue
            for arg in node.args:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in graph.classes
                    ):
                        handle_classes.add(sub.func.id)

    # Reverse receiver-aware edges: callee key -> caller keys.
    callers: Dict[str, Set[str]] = {}
    for record in context.each_function():
        for _, targets in graph.callees_at(record):
            for target in targets:
                callers.setdefault(target.qualkey, set()).add(record.qualkey)

    covered: Dict[str, bool] = {}

    def is_covered(key: str, stack: Set[str]) -> bool:
        cached = covered.get(key)
        if cached is not None:
            return cached
        if key in stack:
            return False  # recursion with no hook anywhere on the loop
        record = graph.record_for(key)
        if record is None:
            return False
        if (
            _is_chaos_module(record.module.name)
            or _has_chaos_hook(record)
            or record.class_name in handle_classes
        ):
            covered[key] = True
            return True
        caller_keys = callers.get(key, set())
        if not caller_keys:
            covered[key] = False
            return False
        result = all(
            is_covered(caller, stack | {key}) for caller in sorted(caller_keys)
        )
        covered[key] = result
        return result

    for module in context.modules:
        if not is_robust_path(module) or _is_chaos_module(module.name):
            continue
        for record in module.functions:
            io_calls = list(_raw_io_calls(record))
            if not io_calls:
                continue
            if is_covered(record.qualkey, set()):
                continue
            for description, line in io_calls:
                yield Finding(
                    "CHAOS001",
                    f"raw I/O call '{description}' in '{record.qualname}' "
                    f"is not behind a repro.chaos site on every path -- "
                    f"fault injection cannot reach it (add chaos.kick/"
                    f"crash_point/write_bytes here or in its callers)",
                    module.path,
                    line,
                )

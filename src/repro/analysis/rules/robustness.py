"""Robustness-path error-handling rule (ROBUST001).

The crash-safety guarantees of the durability layer hold only if
failures are never silently discarded: a swallowed ``OSError`` in
:mod:`repro.core.persistence` turns a half-written snapshot into a
"successful" save, and a swallowed exception in the chaos or
replication layers hides exactly the faults those layers exist to
surface.  In robustness-critical modules -- ``repro.core.persistence``,
``repro.core.wal``, everything under ``repro.chaos``, ``repro.cluster``
and ``repro.ec``, plus any module marked ``# zipg: robust-path`` --
ROBUST001 flags:

* bare ``except:`` handlers (they also swallow ``SimulatedCrash``,
  breaking the kill -9 process model); and
* handlers of *any* exception type whose body does nothing at all
  (only ``pass`` / ``continue`` / ``...``) -- the error must be
  re-raised, recorded, converted, or the handler line must carry an
  explicit ``# zipg: ignore[ROBUST001]`` stating the swallow is
  deliberate (e.g. advisory cleanup).

Stricter than API002 on purpose: API002 only guards the
``repro.core.errors`` hierarchy, while on the robustness path even a
silently-dropped ``OSError`` or ``KeyError`` is a durability bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.engine import AnalysisContext, Finding, ModuleInfo, rule

#: Dotted-module prefixes that are always on the robustness path.
ROBUST_MODULE_PREFIXES = ("repro.chaos", "repro.cluster", "repro.ec")
#: Individual modules that are always on the robustness path.
ROBUST_MODULES = frozenset({"repro.core.persistence", "repro.core.wal"})


def is_robust_path(module: ModuleInfo) -> bool:
    """Whether ROBUST001 applies to ``module``."""
    if module.markers.module_has("robust-path"):
        return True
    if module.name in ROBUST_MODULES:
        return True
    return module.name.startswith(
        tuple(prefix + "." for prefix in ROBUST_MODULE_PREFIXES)
    ) or module.name in ROBUST_MODULE_PREFIXES


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


def _swallowing_body(body: List[ast.stmt]) -> bool:
    return bool(body) and all(_is_noop(stmt) for stmt in body)


@rule(
    "ROBUST001",
    "robustness-path modules must not use bare except or silently "
    "swallow exceptions (opt out per line with '# zipg: "
    "ignore[ROBUST001]')",
)
def check_robust_error_handling(context: AnalysisContext) -> Iterator[Finding]:
    for module in context.modules:
        if not is_robust_path(module):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    "ROBUST001",
                    "bare 'except:' on the robustness path -- it also "
                    "swallows SimulatedCrash, defeating the crash "
                    "model; name the exception",
                    module.path,
                    node.lineno,
                )
                continue
            if _swallowing_body(node.body):
                # Anchor the finding on the no-op statement so a
                # deliberate swallow is acknowledged where it happens.
                yield Finding(
                    "ROBUST001",
                    "exception silently swallowed on the robustness "
                    "path (handler body does nothing) -- re-raise, "
                    "record, or convert it, or acknowledge with "
                    "'# zipg: ignore[ROBUST001]'",
                    module.path,
                    node.body[0].lineno,
                )

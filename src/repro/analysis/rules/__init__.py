"""Built-in rule families.  Importing this package registers them."""

from __future__ import annotations

import repro.analysis.rules.cache  # noqa: F401
import repro.analysis.rules.chaos_cov  # noqa: F401
import repro.analysis.rules.copies  # noqa: F401
import repro.analysis.rules.deadlock  # noqa: F401
import repro.analysis.rules.excflow  # noqa: F401
import repro.analysis.rules.gateway  # noqa: F401
import repro.analysis.rules.locks  # noqa: F401
import repro.analysis.rules.race  # noqa: F401
import repro.analysis.rules.layout  # noqa: F401
import repro.analysis.rules.hotpath  # noqa: F401
import repro.analysis.rules.hygiene  # noqa: F401
import repro.analysis.rules.obs  # noqa: F401
import repro.analysis.rules.robustness  # noqa: F401
import repro.analysis.rules.rpc  # noqa: F401

"""Global lock-order deadlock detection (DEADLOCK001).

Builds one lock-acquisition-order graph from two sources and reports
every cycle in it:

* **AST edges** -- the same receiver-resolved held->acquired edges
  LOCK002 derives (shared via
  :func:`repro.analysis.rules.locks.static_lock_order_edges`), with a
  ``path:line`` witness per edge;
* **runtime edges** -- lock-order traces recorded by named
  :class:`repro.analysis.runtime.TrackedLock` instances (exported with
  ``LockOrderRecorder.save`` and fed in via ``--lock-trace``), each
  carrying the two witness acquisition stacks.

The two sources compose: a cycle is reported even when one leg was
only ever observed at runtime (a code path the static analysis cannot
resolve) and the other leg only exists in the AST.  Each finding names
both legs with their witnesses -- for runtime edges the innermost
frame of the recorded acquisition stacks.

LOCK002 keeps its narrower static-only contract; DEADLOCK001 is the
whole-program view.  A purely static cycle is reported by both.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import AnalysisContext, Finding, rule
from repro.analysis.rules.locks import static_lock_order_edges

#: Pseudo-path used for findings whose witness edge exists only in a
#: runtime trace (there is no source line to point at).
TRACE_PATH = "<runtime-lock-trace>"


class _Edge:
    """One held->acquired edge with its witness description."""

    __slots__ = ("held", "acquired", "source", "path", "line", "witness")

    def __init__(
        self,
        held: str,
        acquired: str,
        source: str,
        path: str,
        line: int,
        witness: str,
    ) -> None:
        self.held = held
        self.acquired = acquired
        self.source = source  # "static" | "runtime"
        self.path = path
        self.line = line
        self.witness = witness


def _innermost(stack: object) -> Optional[str]:
    if isinstance(stack, list) and stack:
        last = stack[-1]
        if isinstance(last, str):
            return last
    return None


def _trace_edges(context: AnalysisContext) -> List[_Edge]:
    edges: List[_Edge] = []
    for record in context.lock_traces:
        held = record.get("held")
        acquired = record.get("acquired")
        if not isinstance(held, str) or not isinstance(acquired, str):
            continue
        held_at = _innermost(record.get("held_stack"))
        acquired_at = _innermost(record.get("acquired_stack"))
        witness = f"'{held}' acquired at {held_at or '<unknown>'}, then " \
                  f"'{acquired}' at {acquired_at or '<unknown>'}"
        edges.append(
            _Edge(held, acquired, "runtime", TRACE_PATH, 0, witness)
        )
    return edges


@rule(
    "DEADLOCK001",
    "the combined (AST + runtime-trace) lock-acquisition-order graph "
    "must be acyclic; cycles are reported with both witness "
    "acquisitions",
)
def check_global_lock_order(context: AnalysisContext) -> Iterator[Finding]:
    static_edges, static_sites = static_lock_order_edges(context)

    by_pair: Dict[Tuple[str, str], _Edge] = {}
    for held, inners in static_edges.items():
        for inner in inners:
            path, line = static_sites[(held, inner)]
            by_pair[(held, inner)] = _Edge(
                held, inner, "static", path, line, f"{path}:{line}"
            )
    for edge in _trace_edges(context):
        by_pair.setdefault((edge.held, edge.acquired), edge)

    graph: Dict[str, Set[str]] = {}
    for held, inner in by_pair:
        graph.setdefault(held, set()).add(inner)

    def shortest_path(start: str, goal: str) -> Optional[List[str]]:
        """BFS node path ``start -> ... -> goal`` through the edges."""
        if start == goal:
            return [start]
        parents: Dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            current = queue.pop(0)
            for nxt in sorted(graph.get(current, set())):
                if nxt in seen:
                    continue
                seen.add(nxt)
                parents[nxt] = current
                if nxt == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return None

    reported: Set[frozenset] = set()
    for (held, inner) in sorted(by_pair):
        edge = by_pair[(held, inner)]
        if held == inner:
            if edge.source == "static":
                # LOCK002 already reports static self-deadlocks.
                continue
            yield Finding(
                "DEADLOCK001",
                f"runtime trace shows '{held}' re-acquired while "
                f"already held ({edge.witness})",
                edge.path,
                edge.line,
            )
            continue
        back = shortest_path(inner, held)
        if back is None:
            continue
        cycle_nodes = frozenset(back)
        if cycle_nodes in reported:
            continue  # one finding per distinct cycle
        reported.add(cycle_nodes)
        counter = by_pair.get((back[0], back[1]))
        counter_witness = (
            f"{counter.source} witness {counter.witness}"
            if counter is not None
            else "unknown witness"
        )
        cycle = " -> ".join(back + [inner])
        yield Finding(
            "DEADLOCK001",
            f"lock-order cycle {cycle}: '{inner}' acquired while "
            f"holding '{held}' ({edge.source} witness {edge.witness}) "
            f"but the reverse order also occurs ({counter_witness})",
            edge.path,
            edge.line,
        )

"""The :class:`Transport` seam between the cluster layer and servers.

The replicated cluster dispatches every per-server operation through
``transport.call(server_id, method, args, unit=...)``.  Two backends
implement that contract:

* :class:`InProcessTransport` (the default) resolves the call against
  the shared local store -- exactly what the pre-serving-layer code
  did inline, so existing single-process deployments and tests are
  byte-identical.  No sockets, no codec, no ``rpc.*`` chaos sites.
* :class:`SocketTransport` speaks the :mod:`repro.server.ipc` framed
  protocol to real shard-server processes, pooling one
  :class:`~repro.server.protocol.RpcConnection` per in-flight call per
  server so concurrent executor fan-outs never interleave writes on a
  socket.

Failure mapping is the heart of the seam: every transport-layer
failure -- connection refused, reset mid-call, torn or oversized
frame, socket timeout -- surfaces as a retryable
:class:`~repro.core.errors.TransportError`, so the executor's
retry/backoff/deadline machinery and the cluster's replica failover
treat a dead network peer exactly like an injected
``replication.replica_call`` fault.  Exceptions raised *by the remote
operation* (e.g. ``NodeNotFound``) decode and re-raise as themselves;
:class:`~repro.chaos.SimulatedCrash` stays a ``BaseException`` and is
never swallowed into a retry.
"""
# zipg: robust-path

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.errors import TransportError
from repro.core.graph_store import ZipG
from repro.server import ipc, ops
from repro.server.protocol import RpcConnection, unpack_response


class Transport(ABC):
    """Dispatch surface for per-server operations."""

    @abstractmethod
    def call(self, server_id: int, method: str, args: List[object],
             unit: Optional[int] = None,
             kwargs: Optional[Dict[str, object]] = None) -> object:
        """Run ``method(*args, **kwargs)`` on ``server_id`` against the
        unit ``unit`` (see :func:`repro.server.ops.resolve_unit`)."""

    def close(self) -> None:
        """Release any held connections (idempotent)."""


class InProcessTransport(Transport):
    """All virtual servers answer from one shared local store.

    ``apply_write`` acknowledges without re-applying: the master
    already mutated the (shared) store, so applying again would double
    every write.  Pass ``apply_writes=True`` only when this transport
    fronts a store object the writer does *not* share."""

    def __init__(self, store: ZipG, apply_writes: bool = False) -> None:
        self.store = store
        self.apply_writes = apply_writes

    def call(self, server_id: int, method: str, args: List[object],
             unit: Optional[int] = None,
             kwargs: Optional[Dict[str, object]] = None) -> object:
        return ops.run_op(self.store, method, list(args), kwargs=kwargs,
                          unit=unit, apply_writes=self.apply_writes)


class _ConnectionPool:
    """Idle :class:`RpcConnection`\\ s for one server address.

    Checkout hands each caller its own connection (creating one on
    demand), so concurrent calls never share a socket; clean round
    trips return the connection for reuse, failed ones close it --
    a socket that just tore a frame has undefined stream state."""

    def __init__(self, server_id: int, host: str, port: int,
                 timeout_s: Optional[float]) -> None:
        self.server_id = server_id
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._idle: List[RpcConnection] = []
        self._shutdown = False

    def checkout(self) -> RpcConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        connection = RpcConnection.connect(
            self.host, self.port, timeout_s=self.timeout_s,
            tags={"server": self.server_id},
        )
        return connection

    def checkin(self, connection: RpcConnection) -> None:
        with self._lock:
            if not self._shutdown and not connection.closed:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        with self._lock:
            self._shutdown = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()


class SocketTransport(Transport):
    """Framed RPC to real shard-server processes over TCP.

    Args:
        addresses: ``server_id -> (host, port)`` for every server the
            cluster may address.
        timeout_s: socket timeout per connection (connect and reads);
            ``None`` blocks indefinitely -- rely on the executor's
            cooperative deadline instead.
    """

    def __init__(self, addresses: Dict[int, Tuple[str, int]],
                 timeout_s: Optional[float] = 30.0) -> None:
        self.addresses = dict(addresses)
        self._pools = {
            server_id: _ConnectionPool(server_id, host, port, timeout_s)
            for server_id, (host, port) in self.addresses.items()
        }

    def call(self, server_id: int, method: str, args: List[object],
             unit: Optional[int] = None,
             kwargs: Optional[Dict[str, object]] = None) -> object:
        pool = self._pools.get(server_id)
        if pool is None:
            raise TransportError(f"no address for server {server_id}")
        try:
            connection = pool.checkout()
        except OSError as exc:
            self._count_failure(server_id, "connect")
            raise TransportError(
                f"cannot connect to server {server_id} "
                f"({pool.host}:{pool.port}): {exc}"
            ) from exc
        try:
            request_id = connection.send_request(
                method, list(args), unit=unit, kwargs=kwargs,
                trace=obs.current_trace_context(),
            )
            response = connection.recv_response(request_id)
        except (OSError, ipc.FrameError) as exc:
            connection.close()
            self._count_failure(server_id, type(exc).__name__)
            raise TransportError(
                f"rpc {method!r} to server {server_id} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        except BaseException:
            # SimulatedCrash and friends: the stream state is unknown,
            # drop the connection, but let the crash keep flying.
            connection.close()
            raise
        pool.checkin(connection)
        # Outside the mapping block: a *decoded remote* exception (e.g.
        # NodeNotFound raised by the operation itself) re-raises as its
        # own type, not as a transport failure.
        return unpack_response(response)

    def _count_failure(self, server_id: int, kind: str) -> None:
        obs.counter(
            "zipg_transport_failures_total",
            help="RPC calls that failed at the transport layer",
            labels={"server": str(server_id), "kind": kind},
        ).inc()

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()

"""Thin client library for the master's RPC surface.

A :class:`ZipGClient` mirrors the
:class:`~repro.baselines.interface.GraphStoreInterface` query/update
methods one-to-one, so workload :class:`~repro.workloads.base.Operation`
objects (the TAO mix included) run against it unchanged --
``operation.run(client)`` issues real RPCs instead of local calls.

The client is deliberately *thin*: no retries, no failover, no
routing.  Those are the master's job (it owns the replication state);
the client's only failure semantic is mapping transport-layer problems
-- refused connections, resets, torn frames, timeouts -- to
:class:`~repro.core.errors.TransportError` so callers can distinguish
"the wire broke" from a typed remote error (which decodes and
re-raises as itself, e.g. ``NodeNotFound``).

Connections are pooled per client, one per in-flight call, so a
client instance is safe to share across threads.
"""
# zipg: robust-path

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Set

from repro import obs
from repro.core.errors import TransportError
from repro.core.model import PropertyList
from repro.server import ipc
from repro.server.protocol import unpack_response
from repro.server.transport import _ConnectionPool


class ZipGClient:
    """Speak the master protocol from anywhere on the network."""

    #: Width of the lazily-created awaitable-submission pool.
    SUBMIT_WORKERS = 8

    def __init__(self, host: str, port: int,
                 timeout_s: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = port
        self._rpc_pool = _ConnectionPool(-1, host, port, timeout_s)
        #: Envelope-level fields stamped on every request this client
        #: sends (the gateway client sets ``{"tenant": ...}`` here).
        self._request_extra: Dict[str, object] = {}
        self._submitter: Optional[ThreadPoolExecutor] = None
        self._submitter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _call(self, method: str, *args: object, **kwargs: object) -> object:
        try:
            connection = self._rpc_pool.checkout()
        except OSError as exc:
            raise TransportError(
                f"cannot connect to master at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            request_id = connection.send_request(
                method, list(args), kwargs=kwargs or None,
                trace=obs.current_trace_context(),
                extra=self._request_extra or None,
            )
            response = connection.recv_response(request_id)
        except (OSError, ipc.FrameError) as exc:
            connection.close()
            raise TransportError(
                f"rpc {method!r} to master failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        except BaseException:
            connection.close()
            raise
        self._rpc_pool.checkin(connection)
        return unpack_response(response)

    def submit(self, method: str, *args: object, **kwargs: object) -> "Future":
        """Submit one RPC; returns a ``concurrent.futures`` future an
        event loop can await via ``asyncio.wrap_future``.

        The client-side half of the cluster's awaitable submission
        seam: a gateway fronting a remote master awaits these instead
        of blocking its event loop on socket round trips."""
        handler = getattr(self, method)
        pool = self._submitter
        if pool is None:
            with self._submitter_lock:
                pool = self._submitter
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.SUBMIT_WORKERS,
                        thread_name_prefix="zipg-client-submit",
                    )
                    self._submitter = pool
        return pool.submit(handler, *args, **kwargs)

    def close(self) -> None:
        with self._submitter_lock:
            pool, self._submitter = self._submitter, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._rpc_pool.close()

    def __enter__(self) -> "ZipGClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def topology(self) -> Dict[str, int]:
        return self._call("topology")

    def fail_server(self, server_id: int) -> bool:
        return bool(self._call("fail_server", server_id))

    def recover_server(self, server_id: int) -> bool:
        return bool(self._call("recover_server", server_id))

    def down_servers(self) -> List[int]:
        return list(self._call("down_servers"))

    def catching_up_servers(self) -> List[int]:
        """Servers held out of read rotation mid-catch-up (under ec
        placement this includes the background fragment rebuild)."""
        return list(self._call("catching_up_servers"))

    # ------------------------------------------------------------------
    # Queries (GraphStoreInterface surface)
    # ------------------------------------------------------------------

    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        if isinstance(property_ids, tuple):
            property_ids = list(property_ids)
        return self._call("get_node_property", node_id, property_ids)

    def get_node_ids(self, property_list: PropertyList,
                     partial_results: bool = False):
        if partial_results:
            return self._call("get_node_ids", dict(property_list),
                              partial_results=True)
        return self._call("get_node_ids", dict(property_list))

    def find_edges(self, property_id: str, value: str,
                   partial_results: bool = False):
        if partial_results:
            return self._call("find_edges", property_id, value,
                              partial_results=True)
        return self._call("find_edges", property_id, value)

    def get_neighbor_ids(self, node_id: int, edge_type="*",
                         property_list: Optional[PropertyList] = None) -> List[int]:
        return self._call("get_neighbor_ids", node_id, edge_type,
                          dict(property_list) if property_list else None)

    def edge_count(self, node_id: int, edge_type: int) -> int:
        return self._call("edge_count", node_id, edge_type)

    def edges_from_index(self, node_id: int, edge_type: int,
                         start_index: int, limit: Optional[int],
                         with_properties: bool = True):
        return self._call("edges_from_index", node_id, edge_type,
                          start_index, limit, with_properties)

    def edges_in_time_range(self, node_id: int, edge_type: int,
                            t_low: Optional[int], t_high: Optional[int],
                            limit: Optional[int] = None,
                            with_properties: bool = True):
        return self._call("edges_in_time_range", node_id, edge_type,
                          t_low, t_high, limit, with_properties)

    def assoc_get(self, node_id: int, edge_type: int, id2_set: Set[int],
                  t_low: Optional[int], t_high: Optional[int]):
        return self._call("assoc_get", node_id, edge_type, set(id2_set),
                          t_low, t_high)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append_node(self, node_id: int, properties: PropertyList) -> None:
        self._call("append_node", node_id, dict(properties))

    def append_edge(self, source: int, edge_type: int, destination: int,
                    timestamp: int = 0,
                    properties: Optional[PropertyList] = None) -> None:
        self._call("append_edge", source, edge_type, destination,
                   timestamp, dict(properties or {}))

    def delete_node(self, node_id: int) -> bool:
        return bool(self._call("delete_node", node_id))

    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        return int(self._call("delete_edge", source, edge_type, destination))

    def update_node(self, node_id: int, properties: PropertyList) -> None:
        self._call("update_node", node_id, dict(properties))

    def update_edge(self, source: int, edge_type: int, destination: int,
                    timestamp: int = 0,
                    properties: Optional[PropertyList] = None) -> None:
        self._call("update_edge", source, edge_type, destination,
                   timestamp, dict(properties or {}))

"""RPC envelopes and the wire codec for query values and errors.

Requests and responses are JSON objects carried in :mod:`ipc` frames::

    request:  {"id": 7, "method": "find_live_nodes", "unit": 2,
               "args": [...], "kwargs": {...}, "trace": {...}}
    response: {"id": 7, "ok": true,  "value": <encoded>}
              {"id": 7, "ok": false, "error": <encoded exception>}

``id`` correlates responses with requests: servers execute requests
concurrently and may answer out of order on one connection, so a
client matches on ``id`` and buffers responses destined for other
in-flight calls (:class:`RpcConnection`).  ``trace`` carries the
caller's :mod:`repro.obs` span context (trace id + span id) so server
spans attach to the originating query's trace.

The value codec round-trips everything the query surface returns --
tuples, sets, :class:`~repro.core.model.EdgeData`, degraded
:class:`~repro.cluster.replication.PartialResult` values -- through a
``{"__zipg__": <tag>, ...}`` tagging scheme, and reconstructs typed
exceptions on the client from a registry of ZipG error classes (an
unknown remote type degrades to :class:`~repro.core.errors.RemoteError`
rather than losing the failure).
"""
# zipg: robust-path
# zipg: exception-registry

from __future__ import annotations

import base64
import itertools
import socket
import threading
from typing import Dict, List, Optional, Tuple, Type

from repro.core.errors import (
    DeadlineExceeded,
    EdgeRecordNotFound,
    FragmentCorruptError,
    GatewayClosed,
    GatewayError,
    GraphFormatError,
    ManifestCorruptError,
    ManifestMissingError,
    NodeNotFound,
    ReconstructionFailed,
    RecoveryError,
    RemoteError,
    ReplicaCallError,
    RetryAfter,
    ShardCallError,
    SnapshotCorruptError,
    TooManyProperties,
    TransportError,
    UnsupportedVersionError,
    ZipGError,
)
from repro.core.model import EdgeData
from repro.server import ipc

_TAG = "__zipg__"

#: Exception types reconstructed by name on the receiving side.  The
#: chaos FaultInjected type registers itself lazily (import cycle).
_EXCEPTION_TYPES: Dict[str, Type[BaseException]] = {
    exc.__name__: exc
    for exc in (
        ZipGError,
        GraphFormatError,
        NodeNotFound,
        EdgeRecordNotFound,
        ShardCallError,
        DeadlineExceeded,
        TransportError,
        RecoveryError,
        ManifestCorruptError,
        ManifestMissingError,
        SnapshotCorruptError,
        UnsupportedVersionError,
        FragmentCorruptError,
        ReconstructionFailed,
        TooManyProperties,
        GatewayError,
        GatewayClosed,
        RetryAfter,
        ipc.FrameError,
        ipc.FrameTooLarge,
        ipc.TornFrame,
        ipc.ConnectionClosed,
        KeyError,
        ValueError,
        IndexError,
        RuntimeError,
        TypeError,
        AssertionError,
        ConnectionResetError,
        TimeoutError,
    )
}


def register_exception(exc_type: Type[BaseException]) -> None:
    """Add a type to the wire-decodable exception registry."""
    _EXCEPTION_TYPES[exc_type.__name__] = exc_type


def _registered_types() -> Dict[str, Type[BaseException]]:
    if "FaultInjected" not in _EXCEPTION_TYPES:
        from repro.chaos import FaultInjected

        _EXCEPTION_TYPES["FaultInjected"] = FaultInjected
    if "ShardUnavailable" not in _EXCEPTION_TYPES:
        from repro.cluster.replication import ShardUnavailable

        _EXCEPTION_TYPES["ShardUnavailable"] = ShardUnavailable
    if "ParseError" not in _EXCEPTION_TYPES:
        from repro.query.parser import ParseError

        _EXCEPTION_TYPES["ParseError"] = ParseError
    return _EXCEPTION_TYPES


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------


def encode_value(value: object) -> object:
    """Lower ``value`` into JSON-safe form (tagged where needed)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        # Binary payloads (erasure-coded fragments) ride as base64 --
        # the envelope stays pure JSON for every transport.
        return {
            _TAG: "bytes",
            "v": base64.b64encode(bytes(value)).decode("ascii"),
        }
    if isinstance(value, EdgeData):
        return {
            _TAG: "edgedata",
            "d": value.destination,
            "t": value.timestamp,
            "p": dict(value.properties),
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {_TAG: "set", "v": [encode_value(item) for item in sorted(value)]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and _TAG not in value:
            return {key: encode_value(item) for key, item in value.items()}
        return {
            _TAG: "dict",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, BaseException):
        return encode_exception(value)
    from repro.cluster.replication import PartialResult, ShardError

    if isinstance(value, PartialResult):
        return {
            _TAG: "partial",
            "value": encode_value(value.value),
            "errors": [encode_value(error) for error in value.errors],
            "attempted": value.attempted,
        }
    if isinstance(value, ShardError):
        return {
            _TAG: "sharderror",
            "shard_id": value.shard_id,
            "error": encode_exception(value.error),
            "servers_tried": list(value.servers_tried),
        }
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if not isinstance(value, dict):
        return value
    tag = value.get(_TAG)
    if tag is None:
        return {key: decode_value(item) for key, item in value.items()}
    if tag == "bytes":
        return base64.b64decode(str(value["v"]).encode("ascii"))
    if tag == "edgedata":
        return EdgeData(value["d"], value["t"], dict(value["p"]))
    if tag == "tuple":
        return tuple(decode_value(item) for item in value["v"])
    if tag == "set":
        return {decode_value(item) for item in value["v"]}
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in value["v"]}
    if tag == "error":
        return decode_exception(value)
    if tag == "partial":
        from repro.cluster.replication import PartialResult

        return PartialResult(
            decode_value(value["value"]),
            [decode_value(error) for error in value["errors"]],
            attempted=value["attempted"],
        )
    if tag == "sharderror":
        from repro.cluster.replication import ShardError

        return ShardError(
            value["shard_id"],
            decode_exception(value["error"]),
            list(value["servers_tried"]),
        )
    raise FrameDecodeError(f"unknown wire tag {tag!r}")


class FrameDecodeError(ipc.FrameError):
    """A structurally valid frame carried an undecodable value."""


register_exception(FrameDecodeError)


# ----------------------------------------------------------------------
# Exception codec
# ----------------------------------------------------------------------


def encode_exception(exc: BaseException) -> Dict[str, object]:
    encoded: Dict[str, object] = {
        _TAG: "error",
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ReplicaCallError):
        encoded["shard_id"] = exc.shard_id
        encoded["attempts"] = [
            [server, encode_exception(attempt)] for server, attempt in exc.attempts
        ]
    if isinstance(exc, RetryAfter):
        # The shed hint must survive the wire: clients schedule their
        # retries off it.
        encoded["retry_after_s"] = exc.retry_after_s
        encoded["reason"] = exc.reason
    if isinstance(exc, RemoteError):
        # Re-forwarding an already-remote error keeps the original type.
        encoded["type"] = exc.remote_type
    return encoded


def decode_exception(encoded: Dict[str, object]) -> BaseException:
    type_name = str(encoded.get("type", "Exception"))
    message = str(encoded.get("message", ""))
    if type_name == "RetryAfter":
        return RetryAfter(
            message,
            retry_after_s=float(encoded.get("retry_after_s", 0.0)),
            reason=str(encoded.get("reason", "overload")),
        )
    if type_name == "ReplicaCallError":
        attempts: List[Tuple[int, BaseException]] = [
            (server, decode_exception(attempt))
            for server, attempt in encoded.get("attempts", [])
        ]
        return ReplicaCallError(int(encoded.get("shard_id", -2)), attempts)
    exc_type = _registered_types().get(type_name)
    if exc_type is None:
        return RemoteError(type_name, message)
    try:
        return exc_type(message)
    except Exception:  # ctor with extra required args
        return RemoteError(type_name, message)


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------


def make_request(request_id: int, method: str, args: List[object],
                 unit: Optional[int] = None,
                 kwargs: Optional[Dict[str, object]] = None,
                 trace: Optional[Dict[str, str]] = None,
                 extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    request: Dict[str, object] = {
        "id": request_id,
        "method": method,
        "args": [encode_value(arg) for arg in args],
    }
    if unit is not None:
        request["unit"] = unit
    if kwargs:
        request["kwargs"] = {k: encode_value(v) for k, v in kwargs.items()}
    if trace:
        request["trace"] = trace
    if extra:
        # Envelope-level fields (e.g. the gateway's "tenant") -- never
        # allowed to shadow the reserved envelope keys above.
        for key, value in extra.items():
            request.setdefault(key, value)
    return request


def make_response(request_id: int, value: object) -> Dict[str, object]:
    return {"id": request_id, "ok": True, "value": encode_value(value)}


def make_error_response(request_id: int, exc: BaseException) -> Dict[str, object]:
    return {"id": request_id, "ok": False, "error": encode_exception(exc)}


def unpack_response(response: Dict[str, object]) -> object:
    """The response's value, or raise its reconstructed exception."""
    if response.get("ok"):
        return decode_value(response.get("value"))
    error = response.get("error")
    if not isinstance(error, dict):
        raise FrameDecodeError(f"malformed error response: {response!r}")
    raise decode_exception(error)


# ----------------------------------------------------------------------
# Connection
# ----------------------------------------------------------------------


class RpcConnection:
    """One framed RPC connection with id-correlated responses.

    Supports pipelining: multiple requests may be sent before their
    responses are read, and responses may arrive in any order -- a
    response for another outstanding request is buffered until its
    :meth:`recv_response` call comes asking.  Sending is serialized
    under a lock; concurrent :meth:`call` invocations from multiple
    threads should use one connection each (the transport pools them).
    """

    _ids = itertools.count(1)

    def __init__(self, sock: socket.socket, peer: str = "?",
                 tags: Optional[Dict[str, object]] = None) -> None:
        self._sock = sock
        self.peer = peer
        #: Extra chaos-site tags stamped on every frame this connection
        #: sends or receives (e.g. ``server=2``), so fault rules can
        #: target one peer.
        self._tags = dict(tags or {})
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._buffered: Dict[int, Dict[str, object]] = {}
        self._closed = False

    @classmethod
    def connect(cls, host: str, port: int,
                timeout_s: Optional[float] = None,
                tags: Optional[Dict[str, object]] = None) -> "RpcConnection":
        sock = socket.create_connection((host, port), timeout=timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock, peer=f"{host}:{port}", tags=tags)

    def settimeout(self, timeout_s: Optional[float]) -> None:
        self._sock.settimeout(timeout_s)

    def send_request(self, method: str, args: List[object],
                     unit: Optional[int] = None,
                     kwargs: Optional[Dict[str, object]] = None,
                     trace: Optional[Dict[str, str]] = None,
                     extra: Optional[Dict[str, object]] = None) -> int:
        """Frame and send one request; returns its correlation id."""
        request_id = next(self._ids)
        request = make_request(request_id, method, args, unit=unit,
                               kwargs=kwargs, trace=trace, extra=extra)
        with self._send_lock:
            ipc.send_frame(self._sock, request, method=method, **self._tags)
        return request_id

    def recv_response(self, request_id: int) -> Dict[str, object]:
        """The raw response for ``request_id`` (other ids buffered)."""
        with self._recv_lock:
            if request_id in self._buffered:
                return self._buffered.pop(request_id)
            while True:
                frame = ipc.recv_frame(self._sock, **self._tags)
                frame_id = frame.get("id")
                if frame_id == request_id:
                    return frame
                if isinstance(frame_id, int):
                    self._buffered[frame_id] = frame
                else:
                    raise FrameDecodeError(
                        f"response without an id: {frame!r}"
                    )

    def call(self, method: str, args: List[object],
             unit: Optional[int] = None,
             kwargs: Optional[Dict[str, object]] = None,
             trace: Optional[Dict[str, str]] = None) -> object:
        """One request/response round trip; decodes value or raises."""
        request_id = self.send_request(method, args, unit=unit,
                                       kwargs=kwargs, trace=trace)
        return unpack_response(self.recv_response(request_id))

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        # Socket teardown happens outside the lock: never hold the
        # send lock around I/O that can block.
        try:
            self._sock.close()
        except OSError:
            pass  # zipg: ignore[ROBUST001] - advisory cleanup

    def __enter__(self) -> "RpcConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

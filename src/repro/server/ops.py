"""The shard-server operation registry.

One table maps RPC method names to executions against a local
:class:`~repro.core.graph_store.ZipG` store.  Both transport backends
run through it -- :class:`~repro.server.transport.InProcessTransport`
calls :func:`run_op` directly, and a
:class:`~repro.server.shard_server.ShardServer` calls it per request
-- so the two deployments cannot drift apart on semantics.

Unit addressing: requests carry an optional ``unit`` identifying which
storage unit the operation targets --

* ``None``       -- a store-level operation (node-routed reads, writes);
* ``-1``         -- the LogStore (:data:`LOGSTORE_UNIT`, §3.5);
* ``shard_id >= 0`` -- one compressed shard.

``apply_write`` is the replication op: the master applies a mutation
locally, then ships ``(lsn, op, args)`` -- the exact WAL record
vocabulary -- to each replica, which applies it via
``ZipG.apply_wal_record``.  A server fronting the *same* store object
as the master (the in-process backend, and the loopback harness's
shared-store mode) must acknowledge without re-applying, or every
write would land twice; ``apply_writes=False`` selects that mode.
"""
# zipg: robust-path

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.graph_store import ZipG

#: Wire value for "the LogStore" (matches
#: :data:`repro.cluster.replication.LOGSTORE_UNIT`; duplicated here so
#: the server package never imports the cluster layer at module level).
LOGSTORE_UNIT = -1


def resolve_unit(store: ZipG, unit: Optional[int]) -> object:
    """The storage unit ``unit`` addresses within ``store``.

    ``None`` is the store itself, :data:`LOGSTORE_UNIT` the LogStore,
    and any other value a shard id (which must exist)."""
    if unit is None:
        return store
    if unit == LOGSTORE_UNIT:
        return store.logstore
    for shard in store.shards:
        if shard.shard_id == unit:
            return shard
    raise KeyError(f"no shard {unit} on this server")


_HANDLERS: Dict[str, Callable] = {}


def _op(name: str) -> Callable[[Callable], Callable]:
    def register(fn: Callable) -> Callable:
        _HANDLERS[name] = fn
        return fn

    return register


def methods() -> List[str]:
    """The registered method names (for introspection and tests)."""
    return sorted(_HANDLERS)


# zipg: rpc-entry
def run_op(store: ZipG, method: str, args: List[object],
            kwargs: Optional[Dict[str, object]] = None,
            unit: Optional[int] = None,
            apply_writes: bool = True) -> object:
    """Run one RPC method against the local store.

    Raises :class:`KeyError` for unknown methods (the server turns
    that into a structured error response)."""
    handler = _HANDLERS.get(method)
    if handler is None:
        raise KeyError(f"unknown RPC method {method!r}")
    return handler(_Context(store, unit, apply_writes), *args, **(kwargs or {}))


class _Context:
    """What a handler gets: the store, the addressed unit, write mode."""

    __slots__ = ("store", "unit", "apply_writes")

    def __init__(self, store: ZipG, unit: Optional[int],
                 apply_writes: bool) -> None:
        self.store = store
        self.unit = unit
        self.apply_writes = apply_writes


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------


@_op("ping")
def _ping(ctx: _Context) -> str:
    return "pong"


@_op("shard_inventory")
def _shard_inventory(ctx: _Context) -> Dict[str, object]:
    """What this server holds (master handshake / diagnostics)."""
    return {
        "shards": [shard.shard_id for shard in ctx.store.shards],
        "epoch": ctx.store.epoch.value,
        "freeze_count": ctx.store.freeze_count,
    }


@_op("find_live_nodes")
def _find_live_nodes(ctx: _Context, property_list: Dict[str, str]) -> List[int]:
    """Node search on one unit (the broadcast fan-out's per-unit op)."""
    return resolve_unit(ctx.store, ctx.unit).find_live_nodes(
        dict(property_list)
    )


@_op("find_edges_by_property")
def _find_edges_by_property(ctx: _Context, property_id: str, value: str):
    """Edge-property search on one unit."""
    return resolve_unit(ctx.store, ctx.unit).find_edges_by_property(
        property_id, value
    )


@_op("get_node_property")
def _get_node_property(ctx: _Context, node_id: int, property_ids: object = "*"):
    if isinstance(property_ids, list):
        property_ids = tuple(property_ids)
    return ctx.store.get_node_property(node_id, property_ids)


def _fragment_store(ctx: _Context, server_id: int):
    """The fragment store this process serves for ``server_id``.

    In-process deployments attach every server's store to the shared
    ZipG object; a socket shard-server process attaches only its own,
    so a fetch addressed to a server that does not hold the fragment
    directory fails loudly (and the reconstruction treats it as an
    erasure)."""
    stores = ctx.store.ec_fragment_stores
    store = stores.get(int(server_id)) if stores else None
    if store is None:
        raise KeyError(f"server {server_id} serves no ec fragment store")
    return store


@_op("ec_fetch_fragment")
def _ec_fetch_fragment(ctx: _Context, server_id: int, name: str,
                       index: int) -> bytes:
    """One erasure-coded fragment's raw payload (degraded-read path).

    Integrity is the *caller's* job -- the EC manifest (which this
    server may not hold) has the fragment CRC, and the reconstruction
    verifies every fetched fragment against it."""
    return _fragment_store(ctx, server_id).read(str(name), int(index))


@_op("ec_store_fragment")
def _ec_store_fragment(ctx: _Context, server_id: int, name: str,
                       index: int, data: bytes) -> int:
    """Persist one rebuilt fragment onto this server (rebuild path);
    returns the byte count as the ack."""
    _fragment_store(ctx, server_id).write(
        str(name), int(index), bytes(data), site="ec.rebuild"
    )
    return len(data)


@_op("ec_has_fragment")
def _ec_has_fragment(ctx: _Context, server_id: int, name: str, index: int,
                     crc32: int, num_bytes: int) -> bool:
    """Whether this server holds a verified copy of the fragment --
    lets the rebuild skip fragments that survived the outage intact
    (a server bounce is not a disk loss)."""
    return bool(
        _fragment_store(ctx, server_id).has(
            str(name), int(index), int(crc32), int(num_bytes)
        )
    )


@_op("apply_write")
def _apply_write(ctx: _Context, lsn: int, op: str, args: List[object]) -> int:
    """Apply one replicated mutation; returns the LSN as the ack.

    Uses the WAL replay path (``apply_wal_record``): replicas must not
    re-log or auto-freeze -- freezes replicate as explicit ``freeze``
    records from the master, keeping shard inventories aligned."""
    if ctx.apply_writes:
        ctx.store.apply_wal_record(op, list(args))
    return int(lsn)

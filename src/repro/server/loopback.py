"""Loopback harness: real sockets, one process, existing suites.

A :class:`LoopbackCluster` runs ``num_servers``
:class:`~repro.server.shard_server.ShardServer` listeners on
``127.0.0.1`` (threads, ephemeral ports) and hands back a
:class:`~repro.server.transport.SocketTransport` wired to them, so a
cluster built for in-process dispatch exercises the full framed RPC
path -- codec, pooling, ``rpc.*`` chaos sites, transport-error mapping
-- without subprocess management.  This is what ``ZIPG_TRANSPORT=
socket`` swaps into the resilient-cluster and chaos suites.

Two store modes:

* **shared** (default): every server fronts the *same* store object as
  the cluster.  Query semantics are byte-identical to in-process
  dispatch (same shards, same stats), and ``apply_write`` RPCs
  acknowledge without re-applying -- the master already mutated the
  shared store.  Chaos injection composes because the injector is
  process-global.
* **replica factory**: ``replica_factory(server_id)`` builds a private
  store per server.  Writes then replicate for real over RPC, which is
  what the replica-divergence and catch-up-over-the-wire tests need.
"""
# zipg: robust-path

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.graph_store import ZipG
from repro.server.shard_server import ShardServer
from repro.server.transport import SocketTransport


class LoopbackCluster:
    """``num_servers`` localhost shard servers plus a wired transport."""

    def __init__(self, store: ZipG, num_servers: int,
                 replica_factory: Optional[Callable[[int], ZipG]] = None,
                 timeout_s: Optional[float] = 10.0) -> None:
        self.servers: List[ShardServer] = []
        shared = replica_factory is None
        for server_id in range(num_servers):
            server_store = store if shared else replica_factory(server_id)
            server = ShardServer(
                server_store, server_id=server_id,
                apply_writes=not shared,
            ).start()
            self.servers.append(server)
        self.addresses: Dict[int, Tuple[str, int]] = {
            server.server_id: server.address for server in self.servers
        }
        self.transport = SocketTransport(self.addresses, timeout_s=timeout_s)

    def kill_server(self, server_id: int) -> None:
        """Hard-stop one server: connections reset, reconnects refused
        (the loopback analogue of kill -9)."""
        self.servers[server_id].stop()

    def close(self) -> None:
        self.transport.close()
        for server in self.servers:
            server.stop()

    def __enter__(self) -> "LoopbackCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Framed-RPC server machinery and the shard-server role.

:class:`RpcServerBase` owns everything both server roles share:
connections are accepted on a listener thread, each connection gets a
reader thread, and each *request* is handed to a shared worker pool so
a slow operation does not head-of-line-block its connection -- the
response for a fast later request may overtake it (clients correlate
by request id, see :class:`~repro.server.protocol.RpcConnection`).
Subclasses supply :meth:`RpcServerBase._execute`.

:class:`ShardServer` is the worker role: one local
:class:`~repro.core.graph_store.ZipG` replica answering the
:mod:`repro.server.ops` surface (the master role lives in
:mod:`repro.server.master`).

Failure semantics, from the server's side of the wire:

* an operation that raises an ``Exception`` becomes a structured error
  response -- the typed exception re-raises client-side;
* a peer that vanishes (reset, torn frame) kills only that
  connection's reader; the store and other connections are untouched;
* :class:`~repro.chaos.SimulatedCrash` out of a ``rpc.handle`` or
  ``rpc.send`` chaos rule is a *process death model* -- it tears down
  the whole server (listener included), so clients observe exactly
  what a kill -9 produces: connection resets and refused reconnects.

Chaos sites: every request execution passes ``rpc.handle`` (tags:
``method``, ``server``); the framed reply goes out through
``rpc.send`` (a ``torn_write`` rule there models the server dying
mid-response, which clients see as a torn frame).
"""
# zipg: robust-path

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

from repro import chaos, obs
from repro.core.graph_store import ZipG
from repro.server import ipc, ops
from repro.server.protocol import (
    decode_value,
    make_error_response,
    make_response,
)

#: Accept-loop poll interval; bounds how long ``stop()`` can take.
_ACCEPT_TIMEOUT_S = 0.2


class RpcServerBase:
    """Threaded accept/read/execute loop for one framed-RPC listener.

    Args:
        server_id: this server's cluster id (stamped on spans, chaos
            tags, and metrics).
        host / port: bind address; port 0 picks a free port (read the
            chosen one off :attr:`address`).
        max_workers: request-execution pool width.
    """

    #: Role tag used in thread names and spans ("shard" / "master").
    role = "server"

    def __init__(self, server_id: int = 0, host: str = "127.0.0.1",
                 port: int = 0, max_workers: int = 8) -> None:
        self.server_id = server_id
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(_ACCEPT_TIMEOUT_S)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._workers = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix=f"zipg-{self.role}{server_id}",
        )
        self._lock = threading.Lock()
        self._connections: Set[socket.socket] = set()
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    def _execute(self, request: Dict[str, object], method: str) -> object:
        """Run one decoded request; subclasses implement dispatch."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RpcServerBase":
        """Accept connections on a background thread; returns self."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"zipg-{self.role}{self.server_id}-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections on the calling thread until ``stop()``
        (the CLI ``serve-*`` entry points)."""
        self._accept_loop()

    @property
    def stopped(self) -> bool:
        return self._stopping.is_set()

    def stop(self) -> None:
        """Stop accepting, drop every connection, drain the pool."""
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass  # zipg: ignore[ROBUST001] - already closed
        with self._lock:
            connections, self._connections = list(self._connections), set()
        for sock in connections:
            _close_socket(sock)
        accept_thread = self._accept_thread
        if (accept_thread is not None and accept_thread.is_alive()
                and accept_thread is not threading.current_thread()):
            accept_thread.join(timeout=5.0)
        self._workers.shutdown(wait=False)

    def __enter__(self) -> "RpcServerBase":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept / read / execute
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _peer = self._listener.accept()
            except socket.timeout:
                continue  # zipg: ignore[ROBUST001] - accept poll tick
            except OSError:
                if self._stopping.is_set():
                    return
                raise
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            accepted = False
            with self._lock:
                if not self._stopping.is_set():
                    self._connections |= {sock}
                    accepted = True
            if not accepted:
                # Raced with stop(): this socket is not tracked, close
                # it ourselves and bail out.
                _close_socket(sock)
                return
            threading.Thread(
                target=self._connection_loop, args=(sock,),
                name=f"zipg-{self.role}{self.server_id}-conn", daemon=True,
            ).start()

    def _connection_loop(self, sock: socket.socket) -> None:
        """Read frames off one connection until the peer goes away."""
        send_lock = threading.Lock()
        try:
            while not self._stopping.is_set():
                try:
                    request = ipc.recv_frame(sock, server=self.server_id)
                except (ipc.ConnectionClosed, OSError):
                    return  # peer hung up (or we are stopping)
                except ipc.FrameError as exc:
                    # Protocol violation: answer if the stream still
                    # works, then drop the connection -- framing state
                    # is unrecoverable after a bad prefix.
                    self._try_send(sock, send_lock,
                                   make_error_response(-1, exc))
                    return
                self._workers.submit(self._handle, sock, send_lock, request)
        finally:
            with self._lock:
                self._connections.discard(sock)
            _close_socket(sock)

    def _handle(self, sock: socket.socket, send_lock: threading.Lock,
                request: Dict[str, object]) -> None:
        request_id = request.get("id")
        if not isinstance(request_id, int):
            request_id = -1
        method = str(request.get("method", ""))
        trace = request.get("trace")
        try:
            chaos.kick(chaos.SITE_RPC_HANDLE,
                       method=method, server=self.server_id)
            with obs.remote_span(
                f"rpc.{method}",
                trace if isinstance(trace, dict) else None,
                layer="server", method=method, server=self.server_id,
            ):
                value = self._execute(request, method)
            response = make_response(request_id, value)
        except chaos.SimulatedCrash:
            # kill -9 model: the whole process dies, not one request.
            self._crash()
            return
        except Exception as exc:
            obs.counter(
                "zipg_rpc_errors_total",
                help="RPC requests answered with an error response",
                labels={"method": method},
            ).inc()
            response = make_error_response(request_id, exc)
        self._try_send(sock, send_lock, response)

    def _try_send(self, sock: socket.socket, send_lock: threading.Lock,
                  response: Dict[str, object]) -> None:
        try:
            with send_lock:
                ipc.send_frame(sock, response, server=self.server_id)
        except chaos.SimulatedCrash:
            self._crash()
        except (OSError, ipc.FrameError) as exc:
            # The peer is gone (or the response was torn); it retries
            # via its transport. Count it so dead-peer storms show up.
            obs.counter(
                "zipg_rpc_send_failures_total",
                help="RPC responses that could not be delivered",
                labels={"kind": type(exc).__name__},
            ).inc()
            _close_socket(sock)

    def _crash(self) -> None:
        """A ``SimulatedCrash`` fired server-side: die like a process.

        Every connection resets (clients get torn frames / resets) and
        the listener closes (reconnects are refused) -- observable
        behavior identical to the OS killing the server."""
        obs.counter(
            "zipg_rpc_simulated_crashes_total",
            help="server deaths injected at rpc.* sites",
            labels={"server": str(self.server_id), "role": self.role},
        ).inc()
        self.stop()


class ShardServer(RpcServerBase):
    """Serve one store replica's operations over framed TCP RPC.

    Args:
        store: the local store (a full replica in the replicated
            deployment).
        apply_writes: whether ``apply_write`` RPCs mutate the local
            store. ``False`` only for loopback harnesses whose servers
            *share* the writer's store object.
    """

    role = "shard"

    def __init__(self, store: ZipG, server_id: int = 0,
                 host: str = "127.0.0.1", port: int = 0,
                 apply_writes: bool = True, max_workers: int = 8) -> None:
        super().__init__(server_id=server_id, host=host, port=port,
                         max_workers=max_workers)
        self.store = store
        self.apply_writes = apply_writes

    # zipg: rpc-entry
    def _execute(self, request: Dict[str, object], method: str) -> object:
        args = [decode_value(arg) for arg in request.get("args", [])]
        kwargs = {
            key: decode_value(value)
            for key, value in (request.get("kwargs") or {}).items()
        }
        unit = request.get("unit")
        return ops.run_op(self.store, method, args, kwargs=kwargs,
                          unit=unit if isinstance(unit, int) else None,
                          apply_writes=self.apply_writes)


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass  # zipg: ignore[ROBUST001] - already closed

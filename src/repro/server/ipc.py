"""Length-prefixed binary framing over TCP sockets.

Wire format -- one frame per message::

    +----------------+----------------------+
    | length (4B BE) | payload (JSON, UTF-8)|
    +----------------+----------------------+

The length prefix is an unsigned 32-bit big-endian integer counting
payload bytes only.  Frames above :data:`MAX_FRAME_BYTES` are rejected
*before* any allocation happens (a hostile or corrupt length prefix
must not OOM the server), and a peer that disappears mid-frame is
distinguished from one that closed cleanly between frames:

* clean EOF at a frame boundary  -> :class:`ConnectionClosed`
* EOF inside a frame             -> :class:`TornFrame`
* length prefix over the cap     -> :class:`FrameTooLarge`
* undecodable payload            -> :class:`FrameError`

This is the **only** module in the tree allowed to perform raw socket
byte I/O (``send``/``sendall``/``recv``); analysis rule RPC001 flags
any other call site, so every wire interaction inherits these framing
guarantees and the chaos sites below.

Chaos sites: :func:`send_frame` routes its bytes through
``chaos.write_bytes`` at ``rpc.send`` (so ``torn_write`` rules model a
process dying mid-frame and ``crash`` rules one dying just before the
frame), and :func:`recv_frame` kicks ``rpc.recv`` (so ``error`` rules
-- e.g. ``error=ConnectionResetError`` -- and latency spikes strike
the read path).
"""
# zipg: robust-path

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, Optional

from repro import chaos
from repro.core.errors import ZipGError

#: Hard cap on payload size; a length prefix above this is a protocol
#: violation, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


class FrameError(ZipGError):
    """The peer violated the framing protocol (bad length, bad JSON)."""


class FrameTooLarge(FrameError):
    """A length prefix exceeded :data:`MAX_FRAME_BYTES`."""


class TornFrame(FrameError):
    """The connection ended in the middle of a frame."""


class ConnectionClosed(FrameError):
    """The peer closed the connection cleanly between frames."""


class _SocketWriter:
    """File-like adapter so ``chaos.write_bytes`` can tear socket
    sends exactly like it tears file writes."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def write(self, data: bytes) -> None:
        self._sock.sendall(data)

    def flush(self) -> None:
        """Sockets have no userspace buffer to flush."""


class _StreamWriterAdapter:
    """The same adapter over an asyncio ``StreamWriter`` (whose
    ``write`` only buffers; the caller awaits ``drain()`` after)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer

    def write(self, data: bytes) -> None:
        self._writer.write(data)

    def flush(self) -> None:
        """Draining happens in the caller's coroutine."""


def encode_frame(payload: Dict[str, object]) -> bytes:
    """Serialize one message into its on-wire frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"payload of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(data)) + data


def send_frame(sock: socket.socket, payload: Dict[str, object],
               **tags: object) -> None:
    """Frame and send one message (chaos site ``rpc.send``)."""
    frame = encode_frame(payload)
    chaos.write_bytes(chaos.SITE_RPC_SEND, _SocketWriter(sock), frame, **tags)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes off the socket.

    Returns ``None`` on EOF *before the first byte* (a clean close if
    the caller was between frames); raises :class:`TornFrame` on EOF
    after a partial read."""
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(min(65536, count - received))
        if not chunk:
            if received == 0:
                return None
            raise TornFrame(
                f"connection ended {received}/{count} bytes into a read"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def _decode_body(body: bytes) -> Dict[str, object]:
    """Decode one frame payload (shared by the sync and async readers)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def recv_frame(sock: socket.socket, **tags: object) -> Dict[str, object]:
    """Receive and decode one frame (chaos site ``rpc.recv``)."""
    chaos.kick(chaos.SITE_RPC_RECV, **tags)
    header = _recv_exact(sock, HEADER_BYTES)
    if header is None:
        raise ConnectionClosed("peer closed the connection")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"length prefix {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise TornFrame("connection ended between header and payload")
    return _decode_body(body)


# ----------------------------------------------------------------------
# asyncio variants (the gateway's event loop speaks the same frames)
# ----------------------------------------------------------------------


async def recv_frame_async(reader: asyncio.StreamReader,
                           **tags: object) -> Dict[str, object]:
    """:func:`recv_frame` over an asyncio stream (same chaos site,
    same error taxonomy, same cap-before-allocation discipline)."""
    chaos.kick(chaos.SITE_RPC_RECV, **tags)
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed the connection") from exc
        raise TornFrame(
            f"connection ended {len(exc.partial)}/{HEADER_BYTES} bytes "
            f"into a header"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"length prefix {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise TornFrame(
            f"connection ended {len(exc.partial)}/{length} bytes into a frame"
        ) from exc
    return _decode_body(body)


async def send_frame_async(writer: asyncio.StreamWriter,
                           payload: Dict[str, object],
                           **tags: object) -> None:
    """:func:`send_frame` over an asyncio stream (chaos site
    ``rpc.send``; ``StreamWriter.write`` only buffers, so torn-write
    faults tear the gateway's frames exactly like socket sends)."""
    frame = encode_frame(payload)
    chaos.write_bytes(chaos.SITE_RPC_SEND, _StreamWriterAdapter(writer),
                      frame, **tags)
    await writer.drain()

"""The master (aggregator) role: clients in, cluster fan-out behind.

ZipG's deployment fronts the shard servers with an *aggregator*
(§4.1): clients speak to one endpoint, which routes node-local
operations, fans broadcast searches out across shards, and owns the
replication/failover state.  :class:`MasterServer` is that endpoint --
a :class:`~repro.server.shard_server.RpcServerBase` whose requests
dispatch against a cluster object (usually a
:class:`~repro.cluster.replication.ReplicatedZipGCluster` whose
transport points at the shard servers, so every query inherits replica
failover, retries/backoff/deadline, and ``partial_results``
degradation unchanged).

The client-visible method surface is an explicit allowlist -- the
:class:`~repro.baselines.interface.GraphStoreInterface` query/update
methods plus a few admin verbs -- not ``getattr`` over everything, so
a client cannot reach into cluster internals by method name.
"""
# zipg: robust-path

from __future__ import annotations

from typing import Dict, List

from repro.server.protocol import decode_value
from repro.server.shard_server import RpcServerBase

#: ``server`` tag the master stamps on frames and spans. Distinct from
#: every shard-server id (those are >= 0) so chaos rules matching
#: ``{"server": N}`` target exactly one process.
MASTER_SERVER_ID = -1

#: Query methods forwarded verbatim to the cluster.
READ_METHODS = frozenset({
    "assoc_get",
    "edge_count",
    "edges_from_index",
    "edges_in_time_range",
    "find_edges",
    "get_neighbor_ids",
    "get_node_ids",
    "get_node_property",
})

#: Mutations; on a replicated cluster these also replicate to the
#: shard servers (with LSN tracking for re-admission catch-up).
WRITE_METHODS = frozenset({
    "append_edge",
    "append_node",
    "delete_edge",
    "delete_node",
    "update_edge",
    "update_node",
})

#: Cluster-administration verbs (handled in :meth:`MasterServer._admin`).
ADMIN_METHODS = frozenset({
    "catching_up_servers",
    "down_servers",
    "fail_server",
    "ping",
    "recover_server",
    "topology",
})


class MasterServer(RpcServerBase):
    """Serve the client-facing query surface in front of a cluster."""

    role = "master"

    def __init__(self, cluster: object, host: str = "127.0.0.1",
                 port: int = 0, max_workers: int = 8) -> None:
        super().__init__(server_id=MASTER_SERVER_ID, host=host, port=port,
                         max_workers=max_workers)
        self.cluster = cluster

    # zipg: rpc-entry
    def _execute(self, request: Dict[str, object], method: str) -> object:
        args = [decode_value(arg) for arg in request.get("args", [])]
        kwargs = {
            key: decode_value(value)
            for key, value in (request.get("kwargs") or {}).items()
        }
        if method in ADMIN_METHODS:
            return self._admin(method, args)
        if method not in READ_METHODS and method not in WRITE_METHODS:
            raise KeyError(f"unknown master method {method!r}")
        handler = getattr(self.cluster, method, None)
        if handler is None:
            raise KeyError(
                f"method {method!r} is not supported by "
                f"{type(self.cluster).__name__}"
            )
        return handler(*args, **kwargs)

    # zipg: rpc-entry
    def _admin(self, method: str, args: List[object]) -> object:
        if method == "ping":
            return "pong"
        if method == "topology":
            return {
                "num_servers": getattr(self.cluster, "num_servers", 1),
                "replication_factor": getattr(
                    self.cluster, "replication_factor", 1
                ),
                "placement": getattr(self.cluster, "placement",
                                     "replication"),
                "num_shards": len(self.cluster.store.shards),
            }
        if method == "down_servers":
            return sorted(self.cluster.down_servers)
        if method == "catching_up_servers":
            # ec rebuilds are asynchronous: clients poll this (together
            # with down_servers) to observe re-admission.
            return sorted(getattr(self.cluster, "catching_up_servers", ()))
        if method == "fail_server":
            self.cluster.fail_server(int(args[0]))
            return True
        # recover_server: on a replicated cluster this runs WAL-tail
        # catch-up before re-admitting the replica to read rotation.
        self.cluster.recover_server(int(args[0]))
        return True

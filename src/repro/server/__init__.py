"""``repro.server``: the real socket-based serving layer (§3, §4.1).

ZipG's deployment architecture is an *aggregator* fronting a set of
*shard servers*; queries enter at the aggregator and fan out to the
servers holding the touched shards.  This package realizes that
topology with actual OS processes and TCP sockets:

* :mod:`repro.server.ipc` -- length-prefixed binary framing, the one
  module allowed to do raw socket I/O (enforced by analysis rule
  RPC001);
* :mod:`repro.server.protocol` -- request/response envelopes, the
  value/exception codec, and :class:`RpcConnection`;
* :mod:`repro.server.transport` -- the :class:`Transport` interface
  the cluster layer dispatches through, with interchangeable
  in-process and socket backends;
* :mod:`repro.server.shard_server` / :mod:`repro.server.master` --
  the two server roles (``repro serve-shard`` / ``repro serve-master``);
* :mod:`repro.server.client` -- the thin client library speaking the
  master protocol;
* :mod:`repro.server.loopback` -- an in-test harness running shard
  servers on localhost threads so the socket backend can be swapped
  into existing suites (``ZIPG_TRANSPORT=socket``).

Failure semantics are inherited, not reinvented: transport failures
surface as retryable :class:`~repro.core.errors.TransportError`\\ s, so
the executor's retry/backoff/deadline machinery and the replicated
cluster's failover/partial-results paths behave identically over real
network faults and simulated ones.
"""

from repro.server.client import ZipGClient
from repro.server.loopback import LoopbackCluster
from repro.server.master import MasterServer
from repro.server.shard_server import ShardServer
from repro.server.transport import InProcessTransport, SocketTransport, Transport

__all__ = [
    "InProcessTransport",
    "LoopbackCluster",
    "MasterServer",
    "ShardServer",
    "SocketTransport",
    "Transport",
    "ZipGClient",
]

"""Plain-text reporting helpers for the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent across all of
``benchmarks/``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
    column_width: int = 18,
) -> str:
    """A fixed-width text table with a title banner."""
    lines = [f"\n=== {title} ==="]
    header = "".join(f"{name:<{column_width}}" for name in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("".join(f"{_fmt(cell):<{column_width}}" for cell in row))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_ratio_series(title: str, series: Dict[str, Dict[str, float]]) -> str:
    """Figure-5-style grouped bars: dataset -> system -> ratio."""
    systems: List[str] = []
    for per_system in series.values():
        for system in per_system:
            if system not in systems:
                systems.append(system)
    rows = [
        [dataset] + [per_system.get(system, float("nan")) for system in systems]
        for dataset, per_system in series.items()
    ]
    return format_table(title, ["dataset"] + systems, rows)


def speedup(numerator: float, denominator: float) -> float:
    """Safe ratio used in 'ZipG is N x faster' assertions."""
    if denominator <= 0:
        return float("inf")
    return numerator / denominator

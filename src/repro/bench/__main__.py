"""``python -m repro.bench``: the quick instrumented benchmark.

Runs the TAO mixed workload against a ZipG store with tracing enabled
and emits a ``BENCH_quick_tao.json`` artifact carrying p50/p95/p99
modeled latencies plus the per-layer (succinct / logstore / pointer)
time and operation breakdown. Pass ``--json`` to also print the full
metrics snapshot to stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.bench.artifacts import recorder, write_all
from repro.bench.datasets import build_dataset, memory_budget_bytes
from repro.bench.harness import run_mixed_workload
from repro.bench.memory_model import CostModel
from repro.bench.systems import build_system
from repro.workloads import TAOWorkload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--dataset", default="orkut")
    parser.add_argument("--operations", type=int, default=400)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--alpha", type=int, default=32)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sample-rate", type=float, default=1.0,
                        help="trace sampling rate in (0, 1]")
    parser.add_argument("--cache-budget", type=int, default=0,
                        help="enable the hot-set cache with this byte "
                             "budget (0 = cache off)")
    parser.add_argument("--json", action="store_true",
                        help="print the full obs snapshot to stdout")
    args = parser.parse_args(argv)

    graph = build_dataset(args.dataset)
    system = build_system(
        "zipg", graph, num_shards=args.shards, alpha=args.alpha
    )
    workload = TAOWorkload(graph, seed=args.seed)
    budget = memory_budget_bytes(args.dataset, graph)
    cache = None
    if args.cache_budget:
        cache = system.store.enable_cache(args.cache_budget)

    obs.reset()
    obs.enable_tracing(args.sample_rate)
    try:
        result = run_mixed_workload(
            system,
            workload.operations(args.operations),
            CostModel(),
            budget,
            workload_name="tao",
        )
    finally:
        obs.disable_tracing()

    print(result.row())
    for layer, values in sorted(result.layers.items()):
        fields = ", ".join(f"{k}={v:.1f}" for k, v in sorted(values.items()))
        print(f"  layer {layer:<12} {fields}")
    if cache is not None:
        snap = cache.stats()
        print(f"  cache hits={snap['hits']} misses={snap['misses']} "
              f"evictions={snap['evictions']} bytes={snap['bytes']} "
              f"hit_ratio={snap['hit_ratio']:.3f}")

    rec = recorder("quick_tao")
    rec.add_result(result)
    for path in write_all():
        print(f"wrote {path}")

    if args.json:
        print(obs.json_snapshot(obs.get_registry(), obs.get_tracer(), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

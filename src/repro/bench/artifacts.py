"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Benchmarks record their headline numbers here; at process exit (or on
demand) each figure's accumulated records are written to
``$ZIPG_BENCH_OUT`` (default ``bench_out/``) as ``BENCH_<figure>.json``.
CI uploads the files and :mod:`repro.bench.gate` compares the ``gate``
metrics against the checked-in ``benchmarks/baseline.json``.

Artifact schema::

    {
      "figure": "fig6_tao",
      "results": [<ThroughputResult.to_payload() or free-form dict>, ...],
      "gate": {"<metric>": {"value": 12.3, "kind": "higher_better"}, ...}
    }

``gate`` metrics must be machine-independent ratios (speedups,
modeled-throughput ratios), never absolute wall times -- the regression
check runs on arbitrary CI hardware.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

#: Environment variable naming the artifact output directory.
OUTPUT_ENV = "ZIPG_BENCH_OUT"
DEFAULT_OUTPUT_DIR = "bench_out"

VALID_KINDS = ("higher_better", "lower_better")


def output_dir() -> Path:
    return Path(os.environ.get(OUTPUT_ENV, DEFAULT_OUTPUT_DIR))


class BenchRecorder:
    """Accumulates one figure's results and gate metrics."""

    def __init__(self, figure: str) -> None:
        self.figure = figure
        self.results: List[Dict] = []
        self.gate: Dict[str, Dict[str, object]] = {}

    def add_result(self, result) -> None:
        """Record a result (a :class:`ThroughputResult` or a dict)."""
        payload = result.to_payload() if hasattr(result, "to_payload") else dict(result)
        self.results.append(payload)

    def add_gate_metric(
        self, name: str, value: float, kind: str = "higher_better"
    ) -> None:
        """Record a ratio metric the CI gate will compare to baseline."""
        if kind not in VALID_KINDS:
            raise ValueError(f"kind must be one of {VALID_KINDS}, got {kind!r}")
        self.gate[name] = {"value": float(value), "kind": kind}

    def payload(self) -> Dict[str, object]:
        return {
            "figure": self.figure,
            "results": list(self.results),
            "gate": dict(self.gate),
        }

    def write(self, directory: Optional[Path] = None) -> Path:
        """Write ``BENCH_<figure>.json`` and return its path."""
        directory = directory if directory is not None else output_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.figure}.json"
        path.write_text(json.dumps(self.payload(), indent=2, sort_keys=True) + "\n")
        return path


_RECORDERS: Dict[str, BenchRecorder] = {}


def recorder(figure: str) -> BenchRecorder:
    """The process-wide recorder for a figure (created on first use)."""
    if figure not in _RECORDERS:
        _RECORDERS[figure] = BenchRecorder(figure)
    return _RECORDERS[figure]


def write_all(directory: Optional[Path] = None) -> List[Path]:
    """Flush every recorder that accumulated anything."""
    return [
        rec.write(directory)
        for rec in _RECORDERS.values()
        if rec.results or rec.gate
    ]


def reset() -> None:
    """Drop all accumulated recorders (tests)."""
    _RECORDERS.clear()

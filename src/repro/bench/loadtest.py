"""Closed- and open-loop TAO load drivers for the query gateway.

The paper's serving claim is about *interactive* latency, which only
means something stated against offered load: a closed-loop driver
(each worker waits for its answer before sending the next request)
self-throttles under overload and hides saturation, so this module
pairs it with an **open-loop** driver that schedules arrivals on a
clock regardless of completions -- queueing delay shows up in the
measured latency instead of silently stretching the run.

The flow CI runs (``benchmarks/bench_gateway_loadtest.py``):

1. :func:`closed_loop_capacity` estimates the backend's saturation
   throughput through the same awaitable submission seam the gateway
   uses -- no gateway in the path;
2. :func:`latency_curve` replays the TAO mix open-loop through a
   :class:`~repro.gateway.service.GatewayService` at offered loads
   placed relative to that estimate (below, near, above saturation),
   yielding one :class:`LoadPoint` per offered load;
3. :func:`direct_point` runs the same open-loop mix straight at the
   submission seam, so the gateway's latency overhead below
   saturation is a measured ratio, not a guess.

Every request must end *structurally*: a result, a
:class:`~repro.cluster.PartialResult` (degraded read), or a typed
:class:`~repro.core.errors.RetryAfter` shed.  Anything else counts in
``LoadPoint.errors``, and the bench gates that at zero.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster import PartialResult, ReplicatedZipGCluster
from repro.core import GraphData, ZipG
from repro.core.errors import RetryAfter
from repro.gateway import GatewayConfig, GatewayService
from repro.workloads import TAOWorkload

#: (method, args, kwargs) -- one store call, transport-agnostic.
Call = Tuple[str, list, dict]

#: An async request sink: drives one Call to a structured outcome.
Handler = Callable[[str, list, dict], Awaitable[object]]


def build_load_graph(num_nodes: int = 96) -> GraphData:
    """A small, deterministic social-ish graph for load runs: a ring
    for connectivity plus skip links so adjacency lists have fanout."""
    graph = GraphData()
    for i in range(num_nodes):
        graph.add_node(i, {"name": f"n{i}", "kind": "x" if i % 2 else "y"})
    for i in range(num_nodes):
        graph.add_edge(i, (i + 1) % num_nodes, 0, timestamp=i)
        graph.add_edge(i, (i + 7) % num_nodes, 1, timestamp=1000 + i)
        if i % 3 == 0:
            graph.add_edge(i, (i + 13) % num_nodes, 0, timestamp=2000 + i)
    return graph


def build_backend(graph: Optional[GraphData] = None, num_shards: int = 2,
                  alpha: int = 8, num_servers: int = 2
                  ) -> ReplicatedZipGCluster:
    """The cluster a load run drives (exposes the submission seam)."""
    graph = graph if graph is not None else build_load_graph()
    store = ZipG.compress(graph, num_shards=num_shards, alpha=alpha,
                          logstore_threshold_bytes=1 << 20)
    return ReplicatedZipGCluster(store, num_servers=num_servers,
                                 replication_factor=1)


class _CallRecorder:
    """Duck-types the store surface; captures calls instead of running
    them, turning workload :class:`Operation` closures into replayable
    ``(method, args, kwargs)`` tuples."""

    def __init__(self) -> None:
        self.calls: List[Call] = []

    def __getattr__(self, method: str) -> Callable[..., None]:
        def capture(*args: object, **kwargs: object) -> None:
            self.calls.append((method, list(args), dict(kwargs)))
        return capture


def tao_calls(graph: GraphData, count: int, seed: int = 0) -> List[Call]:
    """``count`` TAO-mix operations (Table 2 percentages) as calls."""
    workload = TAOWorkload(graph, seed=seed)
    recorder = _CallRecorder()
    for operation in workload.operations(count):
        operation.run(recorder)
    return recorder.calls


# ----------------------------------------------------------------------
# Closed loop: capacity estimation
# ----------------------------------------------------------------------


def closed_loop_capacity(backend: object, calls: Sequence[Call],
                         concurrency: int = 8) -> float:
    """Achieved throughput (requests/s) with ``concurrency`` logical
    workers driving the submission seam back-to-back.

    Closed-loop by construction -- a new request is only issued when a
    slot's previous one finished -- so the result approximates the
    backend's saturation throughput and anchors the open-loop offered
    loads."""
    start = time.perf_counter()
    completed = 0
    for index in range(0, len(calls), concurrency):
        window = calls[index:index + concurrency]
        futures = [backend.submit(method, *args, **kwargs)
                   for method, args, kwargs in window]
        for future in futures:
            future.result()
            completed += 1
    elapsed = time.perf_counter() - start
    return completed / elapsed if elapsed > 0 else float("inf")


def gateway_closed_loop_capacity(backend: object, calls: Sequence[Call],
                                 concurrency: int = 8) -> float:
    """Achieved throughput (requests/s) closed-loop *through* a
    gateway service with admission effectively disabled.

    This is the saturation point the open-loop curve anchors to: the
    gateway pipeline (admission bookkeeping, queues, dispatchers, the
    wrap-future hop) costs more per request than the bare submission
    seam, so anchoring to :func:`closed_loop_capacity` would place
    "below saturation" points past the gateway's actual ceiling."""

    async def scenario() -> float:
        config = GatewayConfig(tenant_rate=1e9, tenant_burst=1e9,
                               queue_depth=1 << 20)
        service = GatewayService(backend, config)
        await service.start()
        completed = 0

        async def worker(shard: Sequence[Call]) -> None:
            nonlocal completed
            for method, args, kwargs in shard:
                await service.handle(method, args, kwargs,
                                     tenant="capacity")
                completed += 1

        start = time.perf_counter()
        try:
            await asyncio.gather(*[
                asyncio.ensure_future(worker(calls[index::concurrency]))
                for index in range(concurrency)
            ])
        finally:
            await service.drain()
        elapsed = time.perf_counter() - start
        return completed / elapsed if elapsed > 0 else float("inf")

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# Open loop: latency vs offered load
# ----------------------------------------------------------------------


@dataclass
class LoadPoint:
    """One open-loop measurement at a fixed offered load."""

    offered_load: float      #: arrivals/second the driver scheduled
    offered: int             #: requests scheduled
    completed: int           #: structured results (degraded included)
    shed: int                #: typed RetryAfter rejections
    degraded: int            #: completions that were PartialResults
    errors: int              #: anything unstructured (gate: zero)
    duration_s: float        #: first arrival to last completion
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    @property
    def achieved_load(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def handled_fraction(self) -> float:
        """Every request that ended structurally, shed included."""
        return ((self.completed + self.shed) / self.offered
                if self.offered else 0.0)

    def to_payload(self) -> Dict[str, float]:
        return {
            "offered_load_rps": self.offered_load,
            "achieved_load_rps": self.achieved_load,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "degraded": self.degraded,
            "errors": self.errors,
            "shed_fraction": self.shed_fraction,
            "handled_fraction": self.handled_fraction,
            "duration_s": self.duration_s,
            "latency_ms": {"p50": self.p50_ms, "p95": self.p95_ms,
                           "p99": self.p99_ms, "mean": self.mean_ms},
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


async def _open_loop(handler: Handler, calls: Sequence[Call],
                     offered_load: float) -> LoadPoint:
    """Schedule one arrival every ``1/offered_load`` seconds and fire
    it as a task -- never waiting for completions, which is what makes
    the loop open: under overload the latencies grow (or the sheds
    mount) instead of the arrival clock stretching."""
    latencies: List[float] = []
    counts = {"completed": 0, "shed": 0, "degraded": 0, "errors": 0}

    async def fire(call: Call) -> None:
        method, args, kwargs = call
        begin = time.perf_counter()
        try:
            result = await handler(method, args, kwargs)
        except RetryAfter:
            counts["shed"] += 1
            return
        except Exception:
            counts["errors"] += 1
            return
        latencies.append(time.perf_counter() - begin)
        counts["completed"] += 1
        if isinstance(result, PartialResult):
            counts["degraded"] += 1

    start = time.perf_counter()
    tasks = []
    for index, call in enumerate(calls):
        delay = start + index / offered_load - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(call)))
    await asyncio.gather(*tasks)
    duration = time.perf_counter() - start

    latencies.sort()
    to_ms = 1000.0
    return LoadPoint(
        offered_load=offered_load,
        offered=len(calls),
        completed=counts["completed"],
        shed=counts["shed"],
        degraded=counts["degraded"],
        errors=counts["errors"],
        duration_s=duration,
        p50_ms=_percentile(latencies, 0.50) * to_ms,
        p95_ms=_percentile(latencies, 0.95) * to_ms,
        p99_ms=_percentile(latencies, 0.99) * to_ms,
        mean_ms=(sum(latencies) / len(latencies) * to_ms
                 if latencies else 0.0),
    )


def gateway_point(backend: object, calls: Sequence[Call],
                  offered_load: float,
                  config: Optional[GatewayConfig] = None,
                  tenant: str = "loadtest") -> LoadPoint:
    """One open-loop point through a fresh gateway service (started,
    driven, cleanly drained)."""

    async def scenario() -> LoadPoint:
        service = GatewayService(backend, config)
        await service.start()

        async def handler(method: str, args: list, kwargs: dict) -> object:
            return await service.handle(method, args, kwargs, tenant=tenant)

        try:
            return await _open_loop(handler, calls, offered_load)
        finally:
            await service.drain()

    return asyncio.run(scenario())


def direct_point(backend: object, calls: Sequence[Call],
                 offered_load: float) -> LoadPoint:
    """The same open-loop drive straight at the submission seam -- the
    no-gateway control the overhead ratio is measured against."""

    async def scenario() -> LoadPoint:
        async def handler(method: str, args: list, kwargs: dict) -> object:
            return await asyncio.wrap_future(
                backend.submit(method, *args, **kwargs)
            )

        return await _open_loop(handler, calls, offered_load)

    return asyncio.run(scenario())


def latency_curve(backend: object, calls: Sequence[Call],
                  offered_loads: Sequence[float],
                  config: Optional[GatewayConfig] = None
                  ) -> List[LoadPoint]:
    """The latency-vs-offered-load curve: one gateway point per load,
    each on a fresh service so bucket state never leaks across points."""
    return [gateway_point(backend, calls, load, config)
            for load in offered_loads]


def admission_config_for(capacity_rps: float,
                         queue_depth: int = 64) -> GatewayConfig:
    """Gateway tuning pinned to a measured capacity: the token rate
    admits sustained load right at the backend's saturation point, so
    below-capacity offered loads pass untouched and above-capacity
    excess sheds structurally instead of queueing without bound."""
    rate = max(1.0, capacity_rps)
    return GatewayConfig(
        tenant_rate=rate,
        tenant_burst=max(8.0, rate / 4.0),
        queue_depth=queue_depth,
    )

"""Simulated memory hierarchy (the testbed substitution, DESIGN.md §3).

The paper's single-server experiments run on 244 GB of RAM against up
to 636 GB of data; what the throughput figures measure is *which
system's representation still fits in memory and what the SSD penalty
is when it does not*. This module reproduces that mechanism at MB
scale:

* every store counts its logical storage touches in
  :class:`~repro.succinct.stats.AccessStats`;
* a store whose measured footprint exceeds the budget has a miss
  fraction ``1 - budget/footprint``; each random touch pays the SSD
  latency with that probability (in expectation), mirroring a uniform
  page-cache model;
* CPU-side costs (NPA hops for ZipG, block decompression for
  Titan-Compressed, per-search automaton work) are charged regardless
  of residency -- they are what makes compressed stores *slower* than
  uncompressed ones when everything fits (§5.2's Neo4j-Tuned > ZipG on
  in-memory Graph Search).

Latency constants are calibrated to commodity hardware orders of
magnitude (DRAM ~100 ns, NVMe SSD ~100 us random read); the absolute
KOps are not meant to match the paper's testbed, the *shapes* are.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.succinct.stats import AccessStats


@dataclass(frozen=True)
class CostModel:
    """Latency constants for converting access counts into time."""

    memory_random_ns: float = 400.0
    ssd_random_ns: float = 100_000.0
    memory_scan_ns_per_byte: float = 2.0
    ssd_scan_ns_per_byte: float = 25.0
    npa_hop_ns: float = 8.0
    decompress_ns_per_byte: float = 5.0
    search_base_ns: float = 800.0
    write_persist_ns: float = 18_000.0  # mmap write-through to SSD (§4.1)
    network_hop_ns: float = 120_000.0  # one RPC round trip (distributed runs)

    def query_latency_ns(
        self,
        stats: AccessStats,
        footprint_bytes: int,
        budget_bytes: int,
        network_hops: int = 0,
    ) -> float:
        """Expected latency of the work described by ``stats``.

        Args:
            stats: counter deltas accumulated by the query.
            footprint_bytes: the store's total representation size.
            budget_bytes: the simulated memory budget.
            network_hops: RPC round trips (0 for single-server runs).
        """
        hit = hit_fraction(footprint_bytes, budget_bytes)
        miss = 1.0 - hit
        latency = stats.random_accesses * (
            hit * self.memory_random_ns + miss * self.ssd_random_ns
        )
        latency += stats.sequential_bytes * (
            hit * self.memory_scan_ns_per_byte + miss * self.ssd_scan_ns_per_byte
        )
        latency += stats.npa_hops * self.npa_hop_ns
        latency += stats.decompressed_bytes * self.decompress_ns_per_byte
        latency += stats.searches * self.search_base_ns
        latency += stats.writes * self.write_persist_ns
        latency += network_hops * self.network_hop_ns
        return latency


def hit_fraction(footprint_bytes: int, budget_bytes: int) -> float:
    """Fraction of the store resident in memory under a uniform model."""
    if footprint_bytes <= 0:
        return 1.0
    return min(1.0, budget_bytes / footprint_bytes)


@dataclass(frozen=True)
class MemoryBudget:
    """A named memory budget (one per simulated server)."""

    bytes: int

    def fits(self, footprint_bytes: int) -> bool:
        """Table 5's criterion: does the representation fit entirely?"""
        return footprint_bytes <= self.bytes

"""One-shot experiment report: the headline results without pytest.

``python -m repro experiments`` runs a compact version of the paper's
core evaluation -- Figure 5's footprint ratios, Table 5's fit matrix,
and Figures 6-8's throughput tables -- and prints them in one report.
The full per-figure benchmarks (with shape assertions and appendix
experiments) live in ``benchmarks/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.datasets import DATASETS, build_dataset, memory_budget_bytes
from repro.bench.harness import run_mixed_workload
from repro.bench.memory_model import CostModel
from repro.bench.reporting import format_ratio_series, format_table
from repro.bench.systems import build_system
from repro.workloads import GraphSearchWorkload, LinkBenchWorkload, TAOWorkload

REPORT_SYSTEMS = ("zipg", "neo4j-tuned", "titan", "titan-compressed")
_EXTRA_IDS = (
    ["city", "interest"] + [f"attr{i:02d}" for i in range(38)] + ["payload", "data"]
)


def run_report(
    datasets: Optional[Sequence[str]] = None,
    ops: int = 150,
    print_fn=print,
) -> Dict[str, object]:
    """Run the compact evaluation; returns the collected numbers."""
    names = list(datasets or DATASETS)
    cost_model = CostModel()
    systems: Dict[str, Dict[str, object]] = {}
    ratios: Dict[str, Dict[str, float]] = {}
    fits_rows: List[List[str]] = []

    for dataset_name in names:
        graph = build_dataset(dataset_name)
        raw = graph.on_disk_size_bytes()
        budget = memory_budget_bytes(dataset_name, graph)
        per_system = {}
        fits = [dataset_name]
        for system_name in REPORT_SYSTEMS:
            system = build_system(system_name, graph, extra_property_ids=_EXTRA_IDS)
            per_system[system_name] = system
            footprint = system.storage_footprint_bytes()
            ratios.setdefault(dataset_name, {})[system_name] = footprint / raw
            fits.append("yes" if footprint <= budget else "NO")
        systems[dataset_name] = per_system
        fits_rows.append(fits)

    print_fn(format_ratio_series("Figure 5: footprint / raw input", ratios))
    print_fn(format_table("Table 5: fits completely in memory",
                          ["dataset"] + list(REPORT_SYSTEMS), fits_rows))

    throughput: Dict[str, Dict[str, float]] = {}
    for dataset_name in names:
        graph = build_dataset(dataset_name)
        budget = memory_budget_bytes(dataset_name, graph)
        if DATASETS[dataset_name].kind == "linkbench":
            workload_name = "linkbench"
            make = lambda: LinkBenchWorkload(graph, seed=42)
        else:
            workload_name = "tao"
            make = lambda: TAOWorkload(graph, seed=42)
        cells = {}
        for system_name, system in systems[dataset_name].items():
            result = run_mixed_workload(
                system, make().operations(ops), cost_model, budget,
                workload_name=workload_name,
            )
            cells[system_name] = result.throughput_kops
        throughput[dataset_name] = cells
    rows = [
        [name] + [f"{throughput[name][s]:.0f}" for s in REPORT_SYSTEMS]
        for name in names
    ]
    print_fn(format_table("Figures 6-7: workload throughput (KOps)",
                          ["dataset"] + list(REPORT_SYSTEMS), rows))

    gs: Dict[str, Dict[str, float]] = {}
    for dataset_name in names:
        if DATASETS[dataset_name].kind == "linkbench":
            continue
        graph = build_dataset(dataset_name)
        budget = memory_budget_bytes(dataset_name, graph)
        cells = {}
        for system_name, system in systems[dataset_name].items():
            result = run_mixed_workload(
                system, GraphSearchWorkload(graph, seed=7).operations(ops),
                cost_model, budget, workload_name="graph-search",
            )
            cells[system_name] = result.throughput_kops
        gs[dataset_name] = cells
    if gs:
        rows = [
            [name] + [f"{gs[name][s]:.0f}" for s in REPORT_SYSTEMS]
            for name in gs
        ]
        print_fn(format_table("Figure 8: Graph Search throughput (KOps)",
                              ["dataset"] + list(REPORT_SYSTEMS), rows))

    return {"ratios": ratios, "throughput": throughput, "graph_search": gs}

"""CI performance-regression gate over ``BENCH_*.json`` artifacts.

Usage::

    python -m repro.bench.gate --baseline benchmarks/baseline.json \
        --bench-dir bench_out [--tolerance 2.0] \
        [--only PREFIX ...] [--exclude PREFIX ...]

``--only`` / ``--exclude`` select baseline metrics by name prefix, so
CI jobs that each produce a *subset* of the artifacts (the bench job
vs the gateway load-test job) can share one ``baseline.json`` without
tripping the missing-metric failure on each other's metrics.  Within
the selected subset, missing is still a failure.

The baseline pins *ratio* metrics only (modeled throughput ratios,
batched-vs-scalar speedups) so the check is independent of absolute
machine speed. A ``higher_better`` metric fails when it drops below
``baseline / tolerance``; a ``lower_better`` metric fails when it rises
above ``baseline * tolerance``. A baseline metric missing from the
current artifacts is a failure too -- a silently-dropped benchmark must
not read as a pass. A *malformed* baseline entry (missing or
non-positive ``value``) is skipped with a warning instead of crashing
the gate.

Exit status: 0 when every metric passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_TOLERANCE = 2.0


def load_current_metrics(bench_dir: Path) -> Dict[str, Dict[str, object]]:
    """Merge the ``gate`` sections of every ``BENCH_*.json`` in the dir."""
    merged: Dict[str, Dict[str, object]] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        for name, entry in payload.get("gate", {}).items():
            merged[name] = entry
    return merged


def select_metrics(
    baseline: Dict[str, Dict[str, object]],
    only: List[str],
    exclude: List[str],
) -> Dict[str, Dict[str, object]]:
    """Filter baseline metrics by name prefix.

    ``only`` keeps metrics matching any listed prefix (empty = all);
    ``exclude`` then drops matches.  The selection narrows which
    metrics a job is accountable for -- inside it, a missing current
    metric remains a hard failure.
    """
    selected = {
        name: entry
        for name, entry in baseline.items()
        if not only or any(name.startswith(prefix) for prefix in only)
    }
    return {
        name: entry
        for name, entry in selected.items()
        if not any(name.startswith(prefix) for prefix in exclude)
    }


def check(
    baseline: Dict[str, Dict[str, object]],
    current: Dict[str, Dict[str, object]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str], List[str]]:
    """Compare current gate metrics to the baseline.

    Returns ``(passes, failures, warnings)`` -- human-readable lines
    for each baseline metric. A malformed baseline entry (missing,
    non-numeric, or zero/negative ``value`` -- a ratio gate needs a
    positive pin) is *skipped with a warning* rather than crashing the
    gate or producing a vacuous bound; a baseline metric absent from
    the current artifacts is still a failure (a silently-dropped
    benchmark must not read as a pass).
    """
    passes: List[str] = []
    failures: List[str] = []
    warnings: List[str] = []
    for name, entry in sorted(baseline.items()):
        try:
            base_value = float(entry["value"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError):
            warnings.append(
                f"{name}: baseline entry has no numeric 'value'; skipped"
            )
            continue
        if base_value <= 0:
            warnings.append(
                f"{name}: baseline value {base_value} is not positive; "
                f"ratio bounds would be vacuous; skipped"
            )
            continue
        kind = entry.get("kind", "higher_better")
        if name not in current:
            failures.append(f"{name}: missing from current bench artifacts")
            continue
        try:
            value = float(current[name]["value"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError):
            failures.append(
                f"{name}: current bench artifact has no numeric 'value'"
            )
            continue
        if kind == "lower_better":
            ok = value <= base_value * tolerance
            bound = f"<= {base_value * tolerance:.3f}"
        else:
            ok = value >= base_value / tolerance
            bound = f">= {base_value / tolerance:.3f}"
        line = (f"{name}: {value:.3f} (baseline {base_value:.3f}, "
                f"needs {bound}, {kind})")
        (passes if ok else failures).append(line)
    return passes, failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.gate", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--baseline", type=Path,
                        default=Path("benchmarks/baseline.json"))
    parser.add_argument("--bench-dir", type=Path, default=Path("bench_out"))
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--only", action="append", default=[],
                        metavar="PREFIX",
                        help="gate only baseline metrics with this name "
                             "prefix (repeatable)")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="PREFIX",
                        help="drop baseline metrics with this name prefix "
                             "(repeatable)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["metrics"]
    baseline = select_metrics(baseline, args.only, args.exclude)
    current = load_current_metrics(args.bench_dir)
    passes, failures, warnings = check(baseline, current, args.tolerance)

    for line in passes:
        print(f"PASS {line}")
    for line in warnings:
        print(f"WARN {line}")
    for line in failures:
        print(f"FAIL {line}")
    print(f"\n{len(passes)} passed, {len(failures)} failed, "
          f"{len(warnings)} skipped "
          f"(tolerance {args.tolerance}x, {len(current)} current metrics)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

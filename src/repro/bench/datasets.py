"""Scaled dataset registry (Table 4 analogues).

The paper's six datasets hold up to 4.5 B edges and 636 GB; a pure-
Python reproduction runs MB-scale analogues with the same *relative*
proportions: three TAO-annotated "real-world" graphs (orkut, twitter,
uk) and three LinkBench-generated graphs (small, medium, large), where
small:medium:large mirrors orkut:twitter:uk in raw size, exactly as in
the paper.

Each spec also carries the experiment's simulated ``memory budget``,
chosen so the fits-in-memory matrix reproduces Table 5: orkut-scale
data fits for everyone, twitter-scale stops fitting for Neo4j,
uk-scale fits (mostly) only for ZipG / Titan-Compressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.core.model import GraphData
from repro.workloads.graphs import linkbench_graph, social_graph, web_graph

#: shrink factor applied to the paper's property sizes; 1.0 keeps the
#: paper's 640 B/node / 128 B/edge distributions.
PROPERTY_SCALE = 1.0


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset.

    Attributes:
        name: registry key (Table 4 row).
        kind: ``social`` / ``web`` / ``linkbench``.
        num_nodes: scaled node count.
        avg_degree: average out-degree.
        memory_budget_fraction: simulated single-server memory budget as
            a fraction of the dataset's *raw* size; the knob that
            reproduces Table 5's fits-in-memory matrix.
        seed: generator seed (datasets are deterministic).
    """

    name: str
    kind: str
    num_nodes: int
    avg_degree: float
    memory_budget_fraction: float
    seed: int


DATASETS: Dict[str, DatasetSpec] = {
    # Real-world analogues (TAO-annotated): raw sizes ~ 1 : 2.3 : 4.2,
    # echoing orkut(20GB) : twitter(250GB) : uk(636GB) qualitatively
    # while staying runnable. Budget fractions reproduce Table 5:
    # orkut fits everyone (even Neo4j at ~2.5x raw); twitter fits all
    # but Neo4j; uk fits nobody entirely, ZipG almost.
    "orkut": DatasetSpec("orkut", "social", 300, 8.0, 6.0, seed=1),
    "twitter": DatasetSpec("twitter", "social", 600, 9.0, 2.4, seed=2),
    "uk": DatasetSpec("uk", "web", 1000, 10.0, 0.9, seed=3),
    # LinkBench-generated analogues mirroring the real-world sizes.
    "linkbench-small": DatasetSpec("linkbench-small", "linkbench", 300, 8.0, 6.0, seed=4),
    # Lower fraction than twitter's: Neo4j's LinkBench overhead is
    # smaller, but Table 5 pairs this row with twitter (Neo4j misses).
    "linkbench-medium": DatasetSpec("linkbench-medium", "linkbench", 600, 9.0, 1.4, seed=5),
    "linkbench-large": DatasetSpec("linkbench-large", "linkbench", 1000, 10.0, 0.45, seed=6),
}

REAL_WORLD = ("orkut", "twitter", "uk")
LINKBENCH = ("linkbench-small", "linkbench-medium", "linkbench-large")


@lru_cache(maxsize=None)
def build_dataset(name: str, scale: float = 1.0) -> GraphData:
    """Build (and cache) a registry dataset.

    Args:
        name: a key of :data:`DATASETS`.
        scale: extra node-count multiplier (0.3 for quick test runs).
    """
    spec = DATASETS[name]
    num_nodes = max(20, int(spec.num_nodes * scale))
    if spec.kind == "social":
        return social_graph(
            num_nodes, spec.avg_degree, seed=spec.seed, property_scale=PROPERTY_SCALE
        )
    if spec.kind == "web":
        return web_graph(
            num_nodes, spec.avg_degree, seed=spec.seed, property_scale=PROPERTY_SCALE
        )
    if spec.kind == "linkbench":
        return linkbench_graph(
            num_nodes, spec.avg_degree, seed=spec.seed, property_scale=PROPERTY_SCALE
        )
    raise ValueError(f"unknown dataset kind {spec.kind!r}")


def memory_budget_bytes(name: str, graph: GraphData) -> int:
    """The simulated single-server memory budget for a dataset."""
    return int(DATASETS[name].memory_budget_fraction * graph.on_disk_size_bytes())


def dataset_summary(name: str, graph: GraphData) -> Tuple[int, int, int]:
    """(num_nodes, num_edges, raw_bytes) -- the Table 4 row."""
    return (graph.num_nodes, graph.num_edges, graph.on_disk_size_bytes())

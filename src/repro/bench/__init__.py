"""Benchmark infrastructure: systems registry, datasets, memory model,
harness and reporting -- everything needed to regenerate the paper's
tables and figures."""

from repro.bench.datasets import DATASETS, DatasetSpec, build_dataset
from repro.bench.harness import ThroughputResult, run_mixed_workload, run_query_class
from repro.bench.memory_model import CostModel, MemoryBudget
from repro.bench.systems import SYSTEMS, ZipGSystem, build_system

__all__ = [
    "CostModel",
    "DATASETS",
    "DatasetSpec",
    "MemoryBudget",
    "SYSTEMS",
    "ThroughputResult",
    "ZipGSystem",
    "build_dataset",
    "build_system",
    "run_mixed_workload",
    "run_query_class",
]

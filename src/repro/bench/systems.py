"""System registry: ZipG and the four baselines behind one interface.

:class:`ZipGSystem` implements the evaluation interface *on the ZipG
API* exactly the way §4.2 does: ``assoc_range`` is Algorithm 1,
``assoc_get``/``assoc_time_range`` are Algorithms 2/3 -- each a handful
of lines over ``get_edge_record`` / ``get_time_range`` /
``get_edge_data``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.baselines.interface import GraphStoreInterface
from repro.baselines.kvgraph import KVGraphStore
from repro.baselines.pointerstore import PointerGraphStore
from repro.core.graph_store import ZipG
from repro.core.model import EdgeData, GraphData, PropertyList
from repro.succinct.stats import AccessStats

SYSTEMS = ("zipg", "neo4j", "neo4j-tuned", "titan", "titan-compressed")


class ZipGSystem(GraphStoreInterface):
    """ZipG exposed through the evaluation interface (Table 2 mapping)."""

    name = "zipg"

    def __init__(self, store: ZipG):
        self.store = store

    @classmethod
    def load(
        cls,
        graph: GraphData,
        num_shards: int = 4,
        alpha: int = 32,
        logstore_threshold_bytes: int = 1 << 20,
        extra_property_ids: Optional[Sequence[str]] = None,
        encoding: str = "succinct",
    ) -> "ZipGSystem":
        return cls(
            ZipG.compress(
                graph,
                num_shards=num_shards,
                alpha=alpha,
                logstore_threshold_bytes=logstore_threshold_bytes,
                extra_property_ids=extra_property_ids,
                encoding=encoding,
            )
        )

    # -- node queries ---------------------------------------------------

    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        return self.store.get_node_property(node_id, property_ids)

    def get_node_ids(self, property_list: PropertyList) -> List[int]:
        return self.store.get_node_ids(property_list)

    def get_neighbor_ids(
        self, node_id: int, edge_type="*", property_list: Optional[PropertyList] = None
    ) -> List[int]:
        return self.store.get_neighbor_ids(node_id, edge_type, property_list)

    # -- edge queries (Algorithms 1-3 of the paper) ----------------------

    def edge_count(self, node_id: int, edge_type: int) -> int:
        # assoc_count: the EdgeCount metadata via get_edge_record.
        return self.store.get_edge_record(node_id, edge_type).edge_count

    def edges_from_index(
        self,
        node_id: int,
        edge_type: int,
        start_index: int,
        limit: Optional[int],
        with_properties: bool = True,
    ) -> List[EdgeData]:
        # Algorithm 1: assoc_range(id, atype, idx, limit).
        record = self.store.get_edge_record(node_id, edge_type)
        end = record.edge_count if limit is None else min(record.edge_count, start_index + limit)
        return [
            self.store.get_edge_data(record, i, with_properties)
            for i in range(start_index, end)
        ]

    def edges_in_time_range(
        self,
        node_id: int,
        edge_type: int,
        t_low: Optional[int],
        t_high: Optional[int],
        limit: Optional[int] = None,
        with_properties: bool = True,
    ) -> List[EdgeData]:
        # Algorithm 3: assoc_time_range(id, atype, lo, hi, limit).
        record = self.store.get_edge_record(node_id, edge_type)
        begin, end = self.store.get_edge_range(record, t_low, t_high)
        if limit is not None:
            end = min(end, begin + limit)
        return [
            self.store.get_edge_data(record, i, with_properties)
            for i in range(begin, end)
        ]

    def assoc_get(
        self,
        node_id: int,
        edge_type: int,
        id2_set: Set[int],
        t_low: Optional[int],
        t_high: Optional[int],
    ) -> List[EdgeData]:
        # Algorithm 2: assoc_get(id1, atype, id2set, hi, lo).
        record = self.store.get_edge_record(node_id, edge_type)
        begin, end = self.store.get_edge_range(record, t_low, t_high)
        results = []
        for i in range(begin, end):
            entry = self.store.get_edge_data(record, i)
            if entry.destination in id2_set:
                results.append(entry)
        return results

    # -- updates ----------------------------------------------------------

    def append_node(self, node_id: int, properties: PropertyList) -> None:
        self.store.append_node(node_id, properties)

    def append_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        self.store.append_edge(source, edge_type, destination, timestamp, properties)

    def delete_node(self, node_id: int) -> bool:
        return self.store.delete_node(node_id)

    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        return self.store.delete_edge(source, edge_type, destination)

    # -- accounting -------------------------------------------------------

    def storage_footprint_bytes(self) -> int:
        return self.store.storage_footprint_bytes()

    def aggregate_stats(self) -> AccessStats:
        return self.store.aggregate_stats()

    def reset_stats(self) -> None:
        self.store.reset_stats()


def build_system(
    name: str,
    graph: GraphData,
    num_shards: int = 4,
    alpha: int = 32,
    extra_property_ids: Optional[Sequence[str]] = None,
    logstore_threshold_bytes: int = 1 << 20,
) -> GraphStoreInterface:
    """Instantiate any of the five evaluated systems over ``graph``."""
    if name == "zipg":
        return ZipGSystem.load(
            graph,
            num_shards=num_shards,
            alpha=alpha,
            logstore_threshold_bytes=logstore_threshold_bytes,
            extra_property_ids=extra_property_ids,
        )
    if name == "neo4j":
        return PointerGraphStore.load(graph, tuned=False)
    if name == "neo4j-tuned":
        return PointerGraphStore.load(graph, tuned=True)
    if name == "titan":
        return KVGraphStore.load(graph, compressed=False)
    if name == "titan-compressed":
        return KVGraphStore.load(graph, compressed=True)
    raise ValueError(f"unknown system {name!r}; choose from {SYSTEMS}")

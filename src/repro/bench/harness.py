"""Throughput harness: replays operation streams and prices them.

``run_mixed_workload`` executes a workload's operations for real
(correctness is exercised, wall-clock is measurable with
pytest-benchmark) while accumulating each store's access counters; the
cost model then converts the counters into simulated per-query latency
under the experiment's memory budget, and throughput follows as
``cores / avg_latency`` -- the quantity the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.bench.memory_model import CostModel, hit_fraction
from repro.workloads.base import Operation

DEFAULT_CORES = 32  # the paper's single server: 32 vCPUs


@dataclass
class ThroughputResult:
    """Outcome of one (system, workload, dataset) cell of a figure."""

    system: str
    workload: str
    operations: int
    avg_latency_us: float
    throughput_kops: float
    hit_fraction: float
    per_query_latency_us: Dict[str, float]
    p50_latency_us: float = 0.0
    p99_latency_us: float = 0.0

    def row(self) -> str:
        return (
            f"{self.system:<18} {self.workload:<18} "
            f"{self.throughput_kops:>10.1f} KOps "
            f"{self.avg_latency_us:>10.1f} us/op "
            f"(p99 {self.p99_latency_us:.1f} us, mem hit {self.hit_fraction:5.1%})"
        )


def run_mixed_workload(
    system,
    operations: Iterable[Operation],
    cost_model: CostModel,
    budget_bytes: int,
    cores: int = DEFAULT_CORES,
    workload_name: str = "mixed",
    network_hops_per_op: int = 0,
) -> ThroughputResult:
    """Replay ``operations`` against ``system`` and price them.

    The store's footprint is measured once up front (queries do not
    change it materially; update-heavy runs slightly grow it, which is
    fine -- the budget comparison uses the initial representation like
    the paper's warmed-up steady state).
    """
    footprint = system.storage_footprint_bytes()
    hit = hit_fraction(footprint, budget_bytes)

    per_query_ns: Dict[str, float] = {}
    per_query_count: Dict[str, int] = {}
    latencies: List[float] = []
    total_ns = 0.0
    count = 0
    for operation in operations:
        before = system.aggregate_stats().snapshot()
        operation.run(system)
        delta = system.aggregate_stats().delta_since(before)
        latency = cost_model.query_latency_ns(
            delta, footprint, budget_bytes, network_hops=network_hops_per_op
        )
        total_ns += latency
        count += 1
        latencies.append(latency)
        per_query_ns[operation.name] = per_query_ns.get(operation.name, 0.0) + latency
        per_query_count[operation.name] = per_query_count.get(operation.name, 0) + 1

    avg_ns = total_ns / count if count else 0.0
    throughput_kops = (cores / (avg_ns * 1e-9)) / 1e3 if avg_ns else 0.0
    per_query_latency_us = {
        name: per_query_ns[name] / per_query_count[name] / 1e3 for name in per_query_ns
    }
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2] / 1e3 if ordered else 0.0
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] / 1e3 if ordered else 0.0
    return ThroughputResult(
        system=getattr(system, "name", type(system).__name__),
        workload=workload_name,
        operations=count,
        avg_latency_us=avg_ns / 1e3,
        throughput_kops=throughput_kops,
        hit_fraction=hit,
        per_query_latency_us=per_query_latency_us,
        p50_latency_us=p50,
        p99_latency_us=p99,
    )


def run_query_class(
    system,
    workload,
    query_name: str,
    count: int,
    cost_model: CostModel,
    budget_bytes: int,
    cores: int = DEFAULT_CORES,
) -> ThroughputResult:
    """The per-query isolation runs of Figures 6-8: one query type."""
    return run_mixed_workload(
        system,
        workload.operations_of(query_name, count),
        cost_model,
        budget_bytes,
        cores=cores,
        workload_name=query_name,
    )

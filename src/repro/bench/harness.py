"""Throughput harness: replays operation streams and prices them.

``run_mixed_workload`` executes a workload's operations for real
(correctness is exercised, wall-clock is measurable with
pytest-benchmark) while accumulating each store's access counters; the
cost model then converts the counters into simulated per-query latency
under the experiment's memory budget, and throughput follows as
``cores / avg_latency`` -- the quantity the paper's figures plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.bench.memory_model import CostModel, hit_fraction
from repro.workloads.base import Operation

DEFAULT_CORES = 32  # the paper's single server: 32 vCPUs


@dataclass
class ThroughputResult:
    """Outcome of one (system, workload, dataset) cell of a figure."""

    system: str
    workload: str
    operations: int
    avg_latency_us: float
    throughput_kops: float
    hit_fraction: float
    per_query_latency_us: Dict[str, float]
    p50_latency_us: float = 0.0
    p99_latency_us: float = 0.0
    p95_latency_us: float = 0.0
    wall_seconds: float = 0.0
    layers: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def row(self) -> str:
        return (
            f"{self.system:<18} {self.workload:<18} "
            f"{self.throughput_kops:>10.1f} KOps "
            f"{self.avg_latency_us:>10.1f} us/op "
            f"(p99 {self.p99_latency_us:.1f} us, mem hit {self.hit_fraction:5.1%})"
        )

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form for ``BENCH_*.json`` artifacts."""
        return {
            "system": self.system,
            "workload": self.workload,
            "operations": self.operations,
            "avg_latency_us": self.avg_latency_us,
            "p50_latency_us": self.p50_latency_us,
            "p95_latency_us": self.p95_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "throughput_kops": self.throughput_kops,
            "hit_fraction": self.hit_fraction,
            "wall_seconds": self.wall_seconds,
            "per_query_latency_us": dict(self.per_query_latency_us),
            "layers": {name: dict(values) for name, values in self.layers.items()},
        }


def _layer_delta(
    after: Dict[str, Dict], before: Dict[str, Dict]
) -> Dict[str, Dict[str, float]]:
    """Field-wise difference of two monotone ``snapshot_metrics`` layer
    maps -- what the bracketed workload spent, per layer."""
    delta: Dict[str, Dict[str, float]] = {}
    for layer, fields in after.items():
        base = before.get(layer, {})
        delta[layer] = {
            key: float(value) - float(base.get(key, 0.0))
            for key, value in fields.items()
        }
    return delta


def run_mixed_workload(
    system,
    operations: Iterable[Operation],
    cost_model: CostModel,
    budget_bytes: int,
    cores: int = DEFAULT_CORES,
    workload_name: str = "mixed",
    network_hops_per_op: int = 0,
) -> ThroughputResult:
    """Replay ``operations`` against ``system`` and price them.

    The store's footprint is measured once up front (queries do not
    change it materially; update-heavy runs slightly grow it, which is
    fine -- the budget comparison uses the initial representation like
    the paper's warmed-up steady state).
    """
    footprint = system.storage_footprint_bytes()
    hit = hit_fraction(footprint, budget_bytes)

    # Per-layer attribution: ZipG-backed systems expose a monotone
    # snapshot (succinct/logstore/pointer ops + traced time); diffing
    # two snapshots isolates this workload's share. Baselines report
    # no layers.
    store = getattr(system, "store", None)
    snapshot_metrics = getattr(store, "snapshot_metrics", None)
    layers_before = snapshot_metrics()["layers"] if snapshot_metrics else None

    per_query_ns: Dict[str, float] = {}
    per_query_count: Dict[str, int] = {}
    latencies: List[float] = []
    total_ns = 0.0
    count = 0
    wall_start = time.perf_counter()
    for operation in operations:
        before = system.aggregate_stats().snapshot()
        operation.run(system)
        delta = system.aggregate_stats().delta_since(before)
        latency = cost_model.query_latency_ns(
            delta, footprint, budget_bytes, network_hops=network_hops_per_op
        )
        total_ns += latency
        count += 1
        latencies.append(latency)
        per_query_ns[operation.name] = per_query_ns.get(operation.name, 0.0) + latency
        per_query_count[operation.name] = per_query_count.get(operation.name, 0) + 1

    wall_seconds = time.perf_counter() - wall_start

    layers: Dict[str, Dict[str, float]] = {}
    if layers_before is not None:
        layers = _layer_delta(snapshot_metrics()["layers"], layers_before)

    avg_ns = total_ns / count if count else 0.0
    throughput_kops = (cores / (avg_ns * 1e-9)) / 1e3 if avg_ns else 0.0
    per_query_latency_us = {
        name: per_query_ns[name] / per_query_count[name] / 1e3 for name in per_query_ns
    }
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2] / 1e3 if ordered else 0.0
    p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))] / 1e3 if ordered else 0.0
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] / 1e3 if ordered else 0.0
    return ThroughputResult(
        system=getattr(system, "name", type(system).__name__),
        workload=workload_name,
        operations=count,
        avg_latency_us=avg_ns / 1e3,
        throughput_kops=throughput_kops,
        hit_fraction=hit,
        per_query_latency_us=per_query_latency_us,
        p50_latency_us=p50,
        p99_latency_us=p99,
        p95_latency_us=p95,
        wall_seconds=wall_seconds,
        layers=layers,
    )


def run_query_class(
    system,
    workload,
    query_name: str,
    count: int,
    cost_model: CostModel,
    budget_bytes: int,
    cores: int = DEFAULT_CORES,
) -> ThroughputResult:
    """The per-query isolation runs of Figures 6-8: one query type."""
    return run_mixed_workload(
        system,
        workload.operations_of(query_name, count),
        cost_model,
        budget_bytes,
        cores=cores,
        workload_name=query_name,
    )

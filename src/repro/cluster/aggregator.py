"""Multi-level function shipping (§4.1, Figure 4).

Each ZipG server hosts an aggregator. A query like "friends of Alice
who live in Ithaca" decomposes exactly as in Figure 4:

* level 0 -- the client reaches the entry aggregator;
* level 1 -- "Friends of Alice?" executes on the server owning Alice's
  shard;
* level 2 -- one sub-query per server owning a friend's data ("Carol &
  Dan's cities?", "Bob's city?"), shipped in parallel;
* the aggregator intersects/filters and returns.

:class:`FunctionShippingAggregator` executes that plan explicitly over
a :class:`~repro.cluster.cluster.ZipGCluster`, recording the shipping
trace (levels, per-level target servers, message counts) so the
communication structure is observable -- and charges one network round
trip per level, since each level's sub-queries run in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import NodeNotFound
from repro.core.model import PropertyList


@dataclass
class ShippingLevel:
    """One level of the function-shipping tree."""

    description: str
    target_servers: List[int]

    @property
    def messages(self) -> int:
        return len(self.target_servers)


@dataclass
class ShippingTrace:
    """The full decomposition of one query (Figure 4 rendered as data)."""

    entry_server: int
    levels: List[ShippingLevel] = field(default_factory=list)

    @property
    def round_trips(self) -> int:
        # Client -> entry aggregator, plus one parallel fan-out per level.
        return 1 + len(self.levels)

    @property
    def total_messages(self) -> int:
        return 1 + sum(level.messages for level in self.levels)


class FunctionShippingAggregator:
    """Executes neighborhood queries via explicit function shipping."""

    def __init__(self, cluster, entry_server: int = 0):
        self._cluster = cluster
        self._entry_server = entry_server

    def neighbor_filter_query(
        self,
        node_id: int,
        edge_type,
        property_list: Optional[PropertyList] = None,
    ):
        """"Friends of ``node_id`` [matching ``property_list``]".

        Returns ``(destinations, trace)``; the result is identical to
        ``get_neighbor_ids`` (the trace only *describes* where the work
        ran).
        """
        store = self._cluster.store
        trace = ShippingTrace(entry_server=self._entry_server)

        # Level 1: the edge fetch runs on the server(s) owning the
        # queried node's fragments.
        edge_servers = self._edge_servers(node_id, edge_type)
        record = store.get_edge_record(node_id, edge_type)
        destinations = record.destinations()
        trace.levels.append(ShippingLevel(
            f"edges of node {node_id}", edge_servers
        ))
        if not property_list:
            return destinations, trace

        # Level 2: property probes ship to each destination's server,
        # grouped so every server receives exactly one sub-query.
        by_server: Dict[int, List[int]] = {}
        for destination in destinations:
            server = self._cluster.server_of_shard(store.route(destination))
            by_server.setdefault(server, []).append(destination)
        trace.levels.append(ShippingLevel(
            f"property probes for {len(destinations)} neighbors",
            sorted(by_server),
        ))

        matches: List[int] = []
        for destination in destinations:  # preserve time order
            try:
                properties = store.get_node_property(destination, list(property_list))
            except NodeNotFound:
                continue  # neighbor deleted mid-query  # zipg: ignore[ROBUST001]
            if all(properties.get(k) == v for k, v in property_list.items()):
                matches.append(destination)
        return matches, trace

    def _edge_servers(self, node_id: int, edge_type) -> List[int]:
        store = self._cluster.store
        servers = set()
        for location in store._edge_locations(node_id, edge_type):
            shard_id = getattr(location, "shard_id", None)
            if shard_id is None:
                servers.add(self._cluster.logstore_server)
            else:
                servers.add(self._cluster.server_of_shard(shard_id))
        return sorted(servers)

    def two_hop_query(
        self,
        node_id: int,
        edge_type,
        property_list: Optional[PropertyList] = None,
    ):
        """Friends-of-friends [matching properties]: a three-level tree
        (the "multi-level function shipping" case -- sub-queries are
        themselves decomposed and forwarded)."""
        store = self._cluster.store
        friends, trace = self.neighbor_filter_query(node_id, edge_type, None)

        # Level 2: each friend's server computes that friend's neighbors.
        second_hop: List[int] = []
        servers = set()
        for friend in friends:
            servers.add(self._cluster.server_of_shard(store.route(friend)))
            second_hop.extend(store.get_edge_record(friend, edge_type).destinations())
        trace.levels.append(ShippingLevel(
            f"second hop from {len(friends)} friends", sorted(servers)
        ))

        unique = sorted(set(second_hop) - {node_id})
        if not property_list:
            return unique, trace

        # Level 3: property filter on the second-hop frontier.
        probe_servers = sorted({
            self._cluster.server_of_shard(store.route(n)) for n in unique
        })
        trace.levels.append(ShippingLevel(
            f"property probes for {len(unique)} second-hop nodes", probe_servers
        ))
        matches = []
        for candidate in unique:
            try:
                properties = store.get_node_property(candidate, list(property_list))
            except NodeNotFound:
                continue  # candidate deleted mid-query  # zipg: ignore[ROBUST001]
            if all(properties.get(k) == v for k, v in property_list.items()):
                matches.append(candidate)
        return matches, trace

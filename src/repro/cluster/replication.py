"""Replication-based fault tolerance and load balancing (§4.1).

"ZipG currently uses traditional replication-based techniques for
fault tolerance; an application can specify the desired number of
replicas per shard. Queries are load balanced evenly across multiple
replicas."

Each shard is placed on ``replication_factor`` consecutive servers.
Reads rotate round-robin over a shard's *live* replicas; failing a
server re-routes its shards' reads to the surviving replicas, and a
shard whose replicas are all down makes queries raise
:class:`ShardUnavailable`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cluster.cluster import Server, ZipGCluster
from repro.core.graph_store import ZipG


class ShardUnavailable(RuntimeError):
    """Every replica of a required shard is down."""


class ReplicatedZipGCluster(ZipGCluster):
    """A ZipG cluster with per-shard replication.

    Args:
        store: the logical ZipG store.
        num_servers: cluster size.
        replication_factor: replicas per shard (the paper's app-chosen
            knob). Must not exceed ``num_servers``.
    """

    def __init__(self, store: ZipG, num_servers: int, replication_factor: int = 2):
        super().__init__(store, num_servers)
        if not 1 <= replication_factor <= num_servers:
            raise ValueError("replication_factor must be in [1, num_servers]")
        self.replication_factor = replication_factor
        self._down: Set[int] = set()
        self._rotation: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def replica_servers(self, shard_id: int) -> List[int]:
        """Servers holding a replica of ``shard_id`` (primary first)."""
        primary = shard_id % self.num_servers
        return [
            (primary + offset) % self.num_servers
            for offset in range(self.replication_factor)
        ]

    def live_replicas(self, shard_id: int) -> List[int]:
        return [s for s in self.replica_servers(shard_id) if s not in self._down]

    def server_of_shard(self, shard_id: int) -> int:
        """Round-robin read routing over the shard's live replicas."""
        live = self.live_replicas(shard_id)
        if not live:
            raise ShardUnavailable(f"no live replica for shard {shard_id}")
        turn = self._rotation.get(shard_id, 0)
        self._rotation[shard_id] = turn + 1
        return live[turn % len(live)]

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------

    def fail_server(self, server_id: int) -> None:
        """Mark a server down; its shards fail over to surviving replicas."""
        if not 0 <= server_id < self.num_servers:
            raise IndexError(f"server {server_id} out of range")
        self._down.add(server_id)

    def recover_server(self, server_id: int) -> None:
        self._down.discard(server_id)

    @property
    def down_servers(self) -> Set[int]:
        return set(self._down)

    def is_available(self) -> bool:
        """True if every shard still has at least one live replica."""
        return all(self.live_replicas(s.shard_id) for s in self.store.shards)

    def storage_footprint_bytes(self) -> int:
        """Replication multiplies the stored bytes (no storage-efficient
        erasure coding -- the paper leaves that as future work)."""
        return super().storage_footprint_bytes() * self.replication_factor

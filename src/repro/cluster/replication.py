"""Replication-based fault tolerance and load balancing (§4.1).

"ZipG currently uses traditional replication-based techniques for
fault tolerance; an application can specify the desired number of
replicas per shard. Queries are load balanced evenly across multiple
replicas."

Each shard is placed on ``replication_factor`` consecutive servers.
Reads rotate round-robin over a shard's *live* replicas; failing a
server re-routes its shards' reads to the surviving replicas, and a
shard whose replicas are all down makes queries raise
:class:`ShardUnavailable`.

Degraded-query semantics on top of that placement:

* :meth:`ReplicatedZipGCluster.call_on_shard` tries a shard's live
  replicas in rotation order; a replica call that raises fails over to
  the next live replica (``zipg_replica_failovers_total``) and only
  raises :class:`~repro.core.errors.ReplicaCallError` -- carrying every
  ``(server, exception)`` attempt -- once *all* live replicas failed.
* The broadcast queries (``get_node_ids`` / ``find_edges``) accept
  ``partial_results=True``: instead of raising on the first exhausted
  shard they return a :class:`PartialResult` with the merged value from
  the shards that answered plus one structured :class:`ShardError` per
  shard that did not.
* Replica calls pass through the ``replication.replica_call`` chaos
  site, so :mod:`repro.chaos` can fail chosen servers deterministically.

Per-server operations dispatch through the cluster's
:class:`~repro.server.transport.Transport` (``self.transport``): the
default in-process backend answers from the shared local store exactly
as the pre-serving-layer code did, and a socket backend routes the
same ``(method, args, unit)`` triples to real shard-server processes
-- failover, retries, deadlines, and ``partial_results`` degradation
apply identically to both because transport failures surface as
retryable :class:`~repro.core.errors.TransportError`\\ s.

Writes replicate: each mutation is applied locally, assigned a
monotone cluster LSN, recorded in an in-memory oplog (the WAL record
vocabulary), and shipped to every live server as an ``apply_write``
RPC.  A server that misses writes while down is *not* re-admitted to
read rotation by :meth:`ReplicatedZipGCluster.recover_server` until
its missed oplog tail has been replayed -- re-admitting immediately
(the old behavior) let reads route to a replica that was missing
acknowledged writes.  Replicas mid-catch-up are counted by the
``zipg_replicas_catching_up`` gauge.

Rotation, down-server, and catch-up state are guarded by one lock:
cluster queries fan out on the store's thread pool, so ``fail_server``
can race ``server_of_shard`` from a worker thread.  Writes and
catch-up serialize on a separate write lock (always taken *before*
the state lock) so the oplog and the commit LSN stay consistent.

**Erasure-coded placement** (``placement="ec"``, :mod:`repro.ec`):
instead of ``replication_factor`` whole-shard copies, each immutable
snapshot file is split into ``k`` data + ``m`` parity fragments spread
round-robin across the servers (the hot oplog tail stays fully
replicated exactly as above).  Shard-unit reads route to the single
owning server; when it is down, the cluster reconstructs the shard
from any ``k`` surviving fragments (``zipg_ec_reconstructions_total``,
``ec.decode`` span) and answers *completely* -- no ``partial_results``
degradation for single-server loss.  Reconstructions replay the
post-snapshot oplog deletes before serving, so degraded reads stay
epoch-fresh.  ``recover_server`` replays the missed oplog tail, then
re-creates the returning server's missing fragments in a rate-limited
background rebuild (``ec.rebuild`` chaos site) and only then re-admits
it -- the same catching-up hold-out replication uses.  Lock order:
``_ec_lock`` before ``_write_lock`` before ``_state_lock``.
"""
# zipg: query-api

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import chaos, obs
from repro.cluster.cluster import ZipGCluster
from repro.core.errors import FragmentCorruptError, ReconstructionFailed, ReplicaCallError
from repro.core.graph_store import ZipG
from repro.core.model import PropertyList
from repro.core.shard import CompressedShard
from repro.ec import ErasureCodedSnapshots


class ShardUnavailable(RuntimeError):
    """Every replica of a required shard is down."""


#: Pseudo shard id used to tag replica-call chaos sites and errors for
#: the (unreplicated, §3.5) LogStore server.
LOGSTORE_UNIT = -1


@dataclass
class ShardError:
    """One shard's structured failure inside a degraded query."""

    shard_id: int
    error: BaseException
    servers_tried: List[int] = field(default_factory=list)


@dataclass
class PartialResult:
    """Outcome of a ``partial_results=True`` broadcast query."""

    value: object
    errors: List[ShardError]
    attempted: int

    @property
    def complete(self) -> bool:
        return not self.errors


class ReplicatedZipGCluster(ZipGCluster):
    """A ZipG cluster with per-shard replication.

    Args:
        store: the logical ZipG store.
        num_servers: cluster size.
        replication_factor: replicas per shard (the paper's app-chosen
            knob). Must not exceed ``num_servers``.
        retries: extra per-shard attempts the broadcast fan-out makes
            on top of replica failover (passed to ``executor.map``).
        backoff_s: base exponential backoff between those retries.
        deadline_s: cooperative per-shard-call deadline.
        placement: ``"replication"`` (whole-shard copies, the paper's
            scheme) or ``"ec"`` (erasure-coded snapshot fragments;
            forces ``replication_factor`` to 1 -- redundancy comes
            from parity, not copies).
        ec_snapshots: the encoded snapshot handle
            (:class:`repro.ec.ErasureCodedSnapshots`); required with
            ``placement="ec"``.  The snapshot must reflect the store's
            state at cluster construction -- reconstruction replays
            only the *cluster's* oplog on top of it.
        rebuild_rate_bytes_s: throttle for the background fragment
            rebuild (None = unthrottled).
    """

    def __init__(self, store: ZipG, num_servers: int,
                 replication_factor: int = 2, retries: int = 0,
                 backoff_s: float = 0.0,
                 deadline_s: Optional[float] = None,
                 placement: str = "replication",
                 ec_snapshots: Optional[ErasureCodedSnapshots] = None,
                 rebuild_rate_bytes_s: Optional[float] = None):
        super().__init__(store, num_servers, retries=retries,
                         backoff_s=backoff_s, deadline_s=deadline_s)
        if placement not in ("replication", "ec"):
            raise ValueError(f"unknown placement {placement!r}")
        if placement == "ec":
            if ec_snapshots is None:
                raise ValueError("placement='ec' requires ec_snapshots")
            # Fragments are the redundancy; each shard serves from its
            # one owning server and loss is covered by reconstruction.
            replication_factor = 1
        elif ec_snapshots is not None:
            raise ValueError("ec_snapshots is only valid with placement='ec'")
        if not 1 <= replication_factor <= num_servers:
            raise ValueError("replication_factor must be in [1, num_servers]")
        self.placement = placement
        self.replication_factor = replication_factor
        self.rebuild_rate_bytes_s = rebuild_rate_bytes_s
        self._ec = ec_snapshots
        # Reconstructed-shard cache: shard_id -> [shard, oplog records
        # already replayed onto it].  _ec_lock may acquire _write_lock /
        # _state_lock; never the reverse.
        self._ec_lock = threading.Lock()
        self._ec_shards: Dict[int, List] = {}
        self._rebuild_threads: Dict[int, threading.Thread] = {}
        self._rebuild_errors: Dict[int, BaseException] = {}
        if self._ec is not None and not store.ec_fragment_stores:
            # In-process deployment: this process fronts every server's
            # fragment directory.  Socket shard servers attach only
            # their own (see `repro serve-shard --ec-dir`).
            store.ec_fragment_stores = dict(self._ec.fragment_stores())
        self._state_lock = threading.Lock()
        self._down: Set[int] = set()
        self._rotation: Dict[int, int] = {}
        # Replicated-write state: a monotone cluster LSN, the in-memory
        # oplog of (lsn, op, args) in WAL vocabulary, what each server
        # has acknowledged, and which servers are replaying a missed
        # tail (held out of read rotation). Lock order: _write_lock
        # before _state_lock, never the reverse.
        self._write_lock = threading.Lock()
        self._commit_lsn = 0
        self._oplog: List[Tuple[int, str, List]] = []
        self._applied_lsn: Dict[int, int] = {
            server: 0 for server in range(num_servers)
        }
        self._catching_up: Set[int] = set()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def replica_servers(self, shard_id: int) -> List[int]:
        """Servers holding a replica of ``shard_id`` (primary first)."""
        primary = shard_id % self.num_servers
        return [
            (primary + offset) % self.num_servers
            for offset in range(self.replication_factor)
        ]

    def live_replicas(self, shard_id: int) -> List[int]:
        """Replicas reads may route to: not down, not mid-catch-up."""
        with self._state_lock:
            out = self._down | self._catching_up
        return [s for s in self.replica_servers(shard_id) if s not in out]

    def server_of_shard(self, shard_id: int) -> int:
        """Round-robin read routing over the shard's live replicas."""
        live, turn = self._route(shard_id)
        if not live:
            raise ShardUnavailable(f"no live replica for shard {shard_id}")
        return live[turn % len(live)]

    def _route(self, shard_id: int) -> Tuple[List[int], int]:
        """Atomically snapshot the live replicas and claim a rotation
        turn for one read of ``shard_id``."""
        with self._state_lock:
            out = self._down | self._catching_up
            live = [
                s for s in self.replica_servers(shard_id)
                if s not in out
            ]
            turn = self._rotation.get(shard_id, 0)
            self._rotation[shard_id] = turn + 1
        return live, turn

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------

    def fail_server(self, server_id: int) -> None:
        """Mark a server down; its shards fail over to surviving replicas."""
        if not 0 <= server_id < self.num_servers:
            raise IndexError(f"server {server_id} out of range")
        with self._state_lock:
            self._down.add(server_id)

    def recover_server(self, server_id: int) -> None:
        """Re-admit a server to read rotation -- after catch-up.

        A server that missed replicated writes while down first
        replays its missed oplog tail (``apply_write`` RPCs through
        the transport); until the replay finishes it stays out of read
        rotation (``zipg_replicas_catching_up``), because serving
        reads from a replica missing acknowledged writes is the bug
        this method used to have.  A server whose replay fails stays
        down.  Holding the write lock freezes the commit LSN for the
        duration, so "caught up" is exact, not racy.

        Under ``placement="ec"`` the oplog replay is followed by a
        rate-limited *background* fragment rebuild: the returning
        server's missing fragments are re-encoded from the survivors
        and pushed to it (``ec_store_fragment``), and only then is the
        server re-admitted -- see :meth:`wait_for_rebuild`."""
        if not 0 <= server_id < self.num_servers:
            raise IndexError(f"server {server_id} out of range")
        if self._ec is not None:
            self._ec_recover_server(server_id)
            return
        with self._write_lock:
            with self._state_lock:
                if server_id not in self._down:
                    return
                behind = self._applied_lsn.get(server_id, 0) < self._commit_lsn
                self._down.discard(server_id)
                if behind:
                    self._catching_up.add(server_id)
            if not behind:
                return
            gauge = obs.gauge(
                "zipg_replicas_catching_up",
                help="recovered replicas still replaying missed writes",
            )
            gauge.inc()
            try:
                self._replay_tail_locked(server_id)
            except Exception:
                # Replay failed (server still unreachable / mid-crash):
                # the server goes back to down rather than serving
                # reads from a stale replica.
                obs.counter(
                    "zipg_replica_catchup_failures_total",
                    help="recover_server catch-ups that could not replay",
                ).inc()
                with self._state_lock:
                    self._down.add(server_id)
            finally:
                with self._state_lock:
                    self._catching_up.discard(server_id)
                gauge.inc(-1)

    def _replay_tail_locked(self, server_id: int) -> None:
        """Ship every oplog record past the server's applied LSN."""
        applied = self._applied_lsn.get(server_id, 0)
        for lsn, op, args in self._oplog:
            if lsn <= applied:
                continue
            self.transport.call(server_id, "apply_write", [lsn, op, list(args)])
            self._applied_lsn[server_id] = lsn

    # ------------------------------------------------------------------
    # Erasure-coded placement: degraded reads + background rebuild
    # ------------------------------------------------------------------

    def _catchup_gauge(self):
        return obs.gauge(
            "zipg_replicas_catching_up",
            help="recovered replicas still replaying missed writes",
        )

    def _ec_skip_servers(self) -> Tuple[int, ...]:
        """Servers reconstruction must not use as fragment sources."""
        with self._state_lock:
            return tuple(self._down | self._catching_up)

    def _ec_fetch(self, server: int, name: str, index: int) -> bytes:
        """Fetch one fragment over the transport (degraded reads pull
        from whichever servers still answer)."""
        data = self.transport.call(
            server, "ec_fetch_fragment", [server, name, index]
        )
        if not isinstance(data, (bytes, bytearray)):
            raise FragmentCorruptError(
                f"server {server} returned {type(data).__name__} for "
                f"fragment {name!r}[{index}]"
            )
        return bytes(data)

    def _ec_reconstructed_shard(self, shard_id: int) -> CompressedShard:
        """A served-from-parity stand-in for a shard whose server is
        down: decode the shard's snapshot file from any ``k`` live
        fragments, then replay the post-snapshot oplog deletes so the
        reconstruction is epoch-fresh (appends live in the replicated
        LogStore, and freezes only ever *create* shards, so deletes
        are the only mutations an encoded shard can miss)."""
        if self._ec is None:
            raise ReconstructionFailed("cluster has no erasure-coded snapshots")
        with self._ec_lock:
            entry = self._ec_shards.get(shard_id)
            if entry is None:
                name = self._ec.shard_file(shard_id)
                blob = self._ec.reconstruct_file(
                    name, self._ec_fetch, skip_servers=self._ec_skip_servers()
                )
                entry = [
                    CompressedShard.from_bytes(blob, self.store.delimiters),
                    0,
                ]
                self._ec_shards[shard_id] = entry
            shard, replayed = entry
            with self._write_lock:
                tail = self._oplog[replayed:]
            for _lsn, op, args in tail:
                if op == "del_node":
                    shard.delete_node(int(args[0]))
                elif op == "del_edge":
                    shard.delete_edges(int(args[0]), int(args[1]),
                                       int(args[2]))
            entry[1] = replayed + len(tail)
            return shard

    def _ec_degraded_op(self, shard_id: int, method: str,
                        wire_args: List) -> object:
        """Answer one shard-unit op from a reconstructed shard."""
        shard = self._ec_reconstructed_shard(shard_id)
        if method == "find_live_nodes":
            return shard.find_live_nodes(dict(wire_args[0]))
        if method == "find_edges_by_property":
            return shard.find_edges_by_property(str(wire_args[0]),
                                                str(wire_args[1]))
        raise ReconstructionFailed(
            f"no degraded dispatch for shard op {method!r}"
        )

    def _shard_unit_call(self, shard_id: int, method: str,
                         wire_args: List) -> object:
        """Route one shard-unit op with replica failover; under ec
        placement a shard whose server(s) cannot answer falls back to
        fragment reconstruction -- a *complete* answer, not a
        ``ShardError``."""
        transport = self.transport
        try:
            return self.call_on_shard(
                shard_id,
                lambda server: transport.call(
                    server, method, wire_args, unit=shard_id
                ),
            )
        except (ShardUnavailable, ReplicaCallError):
            if self._ec is None:
                raise
            return self._ec_degraded_op(shard_id, method, wire_args)

    def _ec_any_server_call(self, shard_id: int, method: str,
                            wire_args: List, exclude: Set[int],
                            unit: Optional[int] = None) -> object:
        """Store-level fallback: the pointer tables and hot tail are
        replicated on every server, so a store-routed op a down owner
        cannot answer is retried on the remaining live servers."""
        with self._state_lock:
            out = self._down | self._catching_up
        candidates = [
            server for server in range(self.num_servers)
            if server not in out and server not in exclude
        ]
        attempts: List[Tuple[int, BaseException]] = []
        for server in candidates:
            try:
                chaos.kick(chaos.SITE_REPLICA_CALL,
                           shard=shard_id, server=server)
                return self.transport.call(server, method, wire_args,
                                           unit=unit)
            except Exception as exc:
                attempts.append((server, exc))
        raise ReplicaCallError(shard_id, attempts)

    def _ec_recover_server(self, server_id: int) -> None:
        """ec-placement recovery: synchronous oplog catch-up, then a
        background fragment rebuild; re-admission happens only when
        both are done (the server stays in the catching-up hold-out
        throughout, so reads never route to it early)."""
        with self._write_lock:
            with self._state_lock:
                if server_id not in self._down:
                    return
                if server_id in self._rebuild_threads:
                    return
                self._down.discard(server_id)
                self._catching_up.add(server_id)
                self._rebuild_errors.pop(server_id, None)
            self._catchup_gauge().inc()
            try:
                self._replay_tail_locked(server_id)
            except Exception:
                obs.counter(
                    "zipg_replica_catchup_failures_total",
                    help="recover_server catch-ups that could not replay",
                ).inc()
                with self._state_lock:
                    self._down.add(server_id)
                    self._catching_up.discard(server_id)
                self._catchup_gauge().inc(-1)
                return
        thread = threading.Thread(
            target=self._rebuild_and_admit, args=(server_id,),
            name=f"zipg-ec-rebuild-{server_id}", daemon=True,
        )
        with self._state_lock:
            self._rebuild_threads[server_id] = thread
        thread.start()

    def _rebuild_and_admit(self, server_id: int) -> None:
        """Background half of ec recovery: rebuild the server's
        fragments, top up its oplog tail, re-admit.  Any failure --
        including a :class:`~repro.chaos.SimulatedCrash` from the
        ``ec.rebuild`` site -- sends the server back to down (a later
        ``recover_server`` retries from scratch)."""
        try:
            self._rebuild_fragments(server_id)
        except BaseException as exc:  # SimulatedCrash is a BaseException
            with self._state_lock:
                self._rebuild_errors[server_id] = exc
            obs.counter(
                "zipg_ec_rebuild_failures_total",
                help="background fragment rebuilds that died mid-flight",
                labels={"server": str(server_id)},
            ).inc()
            self._finish_rebuild(server_id, admit=False)
            return
        # Writes kept flowing during the rebuild; ship the tail the
        # server missed while held out before letting reads route to it.
        with self._write_lock:
            try:
                self._replay_tail_locked(server_id)
            except Exception as exc:
                with self._state_lock:
                    self._rebuild_errors[server_id] = exc
                obs.counter(
                    "zipg_replica_catchup_failures_total",
                    help="recover_server catch-ups that could not replay",
                ).inc()
                self._finish_rebuild(server_id, admit=False)
                return
            self._finish_rebuild(server_id, admit=True)
        # Healthy topology again: reconstructed stand-ins are no longer
        # needed (and would pin memory).
        with self._ec_lock:
            self._ec_shards.clear()

    def _finish_rebuild(self, server_id: int, admit: bool) -> None:
        with self._state_lock:
            self._catching_up.discard(server_id)
            if not admit:
                self._down.add(server_id)
            self._rebuild_threads.pop(server_id, None)
        self._catchup_gauge().inc(-1)

    def _rebuild_fragments(self, server_id: int) -> int:
        """Re-create the server's missing fragments from the survivors,
        throttled to ``rebuild_rate_bytes_s``; returns how many were
        rebuilt (verified-intact fragments are skipped -- a bounce is
        not a disk loss)."""
        assert self._ec is not None
        manifest = self._ec.manifest
        rate = self.rebuild_rate_bytes_s
        started = time.monotonic()
        sent = 0
        rebuilt = 0
        with obs.span("ec.rebuild", layer="ec", server=server_id):
            for name, index in manifest.server_fragments(server_id):
                info = manifest.files[name].fragments[index]
                chaos.kick(chaos.SITE_EC_REBUILD, file=name, fragment=index,
                           server=server_id)
                try:
                    present = bool(self.transport.call(
                        server_id, "ec_has_fragment",
                        [server_id, name, index, info.crc32, info.bytes],
                    ))
                except Exception:
                    present = False  # probe failed -> rebuild it anyway
                if present:
                    continue
                fragment = self._ec.rebuild_fragment(
                    name, index, self._ec_fetch,
                    skip_servers=self._ec_skip_servers(),
                )
                self.transport.call(
                    server_id, "ec_store_fragment",
                    [server_id, name, index, fragment],
                )
                rebuilt += 1
                sent += len(fragment)
                if rate:
                    # Pace the stream: sleep until the bytes shipped so
                    # far fit under the configured rate.
                    deficit = sent / rate - (time.monotonic() - started)
                    if deficit > 0:
                        time.sleep(deficit)
        obs.counter(
            "zipg_ec_rebuilt_fragments_total",
            help="fragments re-encoded onto recovering servers",
        ).inc(rebuilt)
        return rebuilt

    def wait_for_rebuild(self, server_id: int,
                         timeout_s: Optional[float] = None) -> bool:
        """Block until the server's background rebuild finishes (or no
        rebuild is running); True unless the wait timed out."""
        with self._state_lock:
            thread = self._rebuild_threads.get(server_id)
        if thread is None:
            return True
        thread.join(timeout_s)
        return not thread.is_alive()

    def rebuild_error(self, server_id: int) -> Optional[BaseException]:
        """Why the server's last rebuild failed (None if it did not)."""
        with self._state_lock:
            return self._rebuild_errors.get(server_id)

    @property
    def down_servers(self) -> Set[int]:
        with self._state_lock:
            return set(self._down)

    @property
    def catching_up_servers(self) -> Set[int]:
        with self._state_lock:
            return set(self._catching_up)

    @property
    def commit_lsn(self) -> int:
        with self._write_lock:
            return self._commit_lsn

    def applied_lsn(self, server_id: int) -> int:
        """The last replicated write ``server_id`` has acknowledged."""
        return self._applied_lsn.get(server_id, 0)

    def is_available(self) -> bool:
        """True if every shard still has at least one live replica."""
        return all(self.live_replicas(s.shard_id) for s in self.store.shards)

    def storage_footprint_bytes(self) -> int:
        """Bytes the deployment stores under its placement mode.

        Replication multiplies the single-copy footprint by
        ``replication_factor``; erasure coding keeps one served copy
        and adds only the parity fragments -- ``(k+m)/k`` of the
        *snapshot* bytes instead of a whole-store multiplier.  Either
        way the result is published as the mode-labeled
        ``zipg_storage_footprint_bytes`` gauge, so the overhead claim
        is observable at runtime."""
        single = super().storage_footprint_bytes()
        if self._ec is not None:
            manifest = self._ec.manifest
            footprint = single + manifest.storage_bytes() - manifest.data_bytes()
            mode = "ec"
        else:
            footprint = single * self.replication_factor
            mode = "replication"
        obs.gauge(
            "zipg_storage_footprint_bytes",
            help="bytes stored cluster-wide under the active placement",
            labels={"mode": mode},
        ).set(footprint)
        return footprint

    # ------------------------------------------------------------------
    # Replicated writes
    # ------------------------------------------------------------------

    def _replicated_write(self, op: str, args: List,
                          apply_fn: Callable[[], object]) -> object:
        """Apply one mutation locally, then replicate it.

        The mutation gets the next cluster LSN, lands in the oplog,
        and ships to every live server as an ``apply_write`` RPC in
        WAL vocabulary.  Auto-freezes triggered by the local apply are
        detected via the store's ``freeze_count`` delta and replicate
        as explicit ``freeze`` records -- replicas replay freezes
        exactly where the master froze, never on their own thresholds,
        so shard inventories stay aligned.  A server that fails its
        ``apply_write`` is marked down (``recover_server`` will replay
        its tail); the local result is returned regardless -- writes
        are master-durable, replication is for availability."""
        with self._write_lock:
            freeze_before = self.store.freeze_count
            result = apply_fn()
            records: List[Tuple[str, List]] = [(op, list(args))]
            for _ in range(self.store.freeze_count - freeze_before):
                records.append(("freeze", []))
            with self._state_lock:
                targets = [
                    server for server in range(self.num_servers)
                    if server not in self._down
                    and server not in self._catching_up
                ]
            dead: Set[int] = set()
            for record_op, record_args in records:
                self._commit_lsn += 1
                lsn = self._commit_lsn
                self._oplog.append((lsn, record_op, record_args))
                for server in targets:
                    if server in dead:
                        continue
                    try:
                        self.transport.call(
                            server, "apply_write",
                            [lsn, record_op, list(record_args)],
                        )
                        self._applied_lsn[server] = lsn
                    except Exception:
                        # The replica missed this write: it must not
                        # serve reads until recover_server replays it.
                        dead.add(server)
                        obs.counter(
                            "zipg_replication_write_failures_total",
                            help="apply_write RPCs that failed "
                                 "(server marked down)",
                            labels={"server": str(server)},
                        ).inc()
            if dead:
                with self._state_lock:
                    self._down.update(dead)
        return result

    @obs.traced("replication.append_node", layer="cluster")
    def append_node(self, node_id: int, properties) -> None:
        properties = dict(properties)
        self._replicated_write(
            "node", [node_id, properties],
            lambda: self.store.append_node(node_id, properties),
        )

    @obs.traced("replication.append_edge", layer="cluster")
    def append_edge(self, source: int, edge_type: int, destination: int,
                    timestamp: int = 0, properties=None) -> None:
        properties = dict(properties or {})
        self._replicated_write(
            "edge", [source, edge_type, destination, timestamp, properties],
            lambda: self.store.append_edge(source, edge_type, destination,
                                           timestamp, properties),
        )

    @obs.traced("replication.delete_node", layer="cluster")
    def delete_node(self, node_id: int) -> bool:
        return bool(self._replicated_write(
            "del_node", [node_id],
            lambda: self.store.delete_node(node_id),
        ))

    @obs.traced("replication.delete_edge", layer="cluster")
    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        return int(self._replicated_write(
            "del_edge", [source, edge_type, destination],
            lambda: self.store.delete_edge(source, edge_type, destination),
        ))

    # ------------------------------------------------------------------
    # Resilient shard calls
    # ------------------------------------------------------------------

    def call_on_shard(self, shard_id: int, fn: Callable[[int], object]) -> object:
        """Run ``fn(server)`` against ``shard_id``, failing over across
        its live replicas.

        Replicas are tried once each, starting at this read's rotation
        slot. A replica whose call raises is skipped in favor of the
        next one (``zipg_replica_failovers_total``); once every live
        replica failed, :class:`ReplicaCallError` carries the full
        ``(server, exception)`` attempt list. No live replica at all is
        :class:`ShardUnavailable` -- the shard's data is simply gone.
        """
        live, turn = self._route(shard_id)
        if not live:
            raise ShardUnavailable(f"no live replica for shard {shard_id}")
        attempts: List[Tuple[int, BaseException]] = []
        for offset in range(len(live)):
            server = live[(turn + offset) % len(live)]
            try:
                chaos.kick(chaos.SITE_REPLICA_CALL,
                           shard=shard_id, server=server)
                return fn(server)
            except Exception as exc:
                attempts.append((server, exc))
                if offset < len(live) - 1:
                    obs.counter(
                        "zipg_replica_failovers_total",
                        help="replica calls retried on the next live replica",
                    ).inc()
        raise ReplicaCallError(shard_id, attempts)

    def _call_on_logstore(self, fn: Callable[[int], object]) -> object:
        """The LogStore lives unreplicated on one server (§3.5): its
        server being down makes the call fail outright."""
        server = self.logstore_server
        if server in self.down_servers:
            raise ShardUnavailable(
                f"logstore server {server} is down (logstore is unreplicated)"
            )
        chaos.kick(chaos.SITE_REPLICA_CALL, shard=LOGSTORE_UNIT, server=server)
        return fn(server)

    def _broadcast(self, title: str, method: str, wire_args: List,
                   merge: Callable, partial_results: bool, args_key=None):
        """Fan one search out over the LogStore + every shard with
        replica failover, collecting per-unit outcomes.

        ``method(*wire_args)`` runs on each unit *through the
        transport* (see :func:`repro.server.ops.run_op`), so the same
        fan-out works in-process and against socket shard servers;
        ``merge(values)`` combines the successful hits.  When
        ``args_key`` (a hashable digest of the query arguments) is
        given, identical concurrent broadcasts single-flight through
        :meth:`ShardExecutor.map_shared` -- the store epoch in the key
        keeps a fan-out from being shared across a mutation."""
        units: List = [None] + list(self.store.shards)
        transport = self.transport

        def run(unit):
            if unit is None:
                try:
                    return self._call_on_logstore(
                        lambda server: transport.call(
                            server, method, wire_args, unit=LOGSTORE_UNIT
                        )
                    )
                except Exception:
                    # Under ec placement the hot tail is replicated to
                    # every server, so the unreplicated-LogStore rule
                    # softens: any live server can answer for it.
                    if self._ec is None:
                        raise
                    return self._ec_any_server_call(
                        LOGSTORE_UNIT, method, wire_args,
                        exclude={self.logstore_server},
                        unit=LOGSTORE_UNIT,
                    )
            return self._shard_unit_call(unit.shard_id, method, wire_args)

        flight_key = None
        if args_key is not None:
            flight_key = (
                "broadcast", id(self), self.store.epoch.value,
                title, args_key, bool(partial_results),
            )
        with obs.span("replication.broadcast", layer="cluster", query=title):
            outcomes = self.store.executor.map_shared(
                flight_key,
                run,
                units,
                stats_of=lambda unit: (
                    self.store.logstore.stats if unit is None else unit.stats
                ),
                retries=self.retries,
                backoff_s=self.backoff_s,
                deadline_s=self.deadline_s,
                partial=True,
            )
        errors: List[ShardError] = []
        values: List = []
        for outcome, unit in zip(outcomes, units):
            if outcome.ok:
                values.append(outcome.value)
                continue
            shard_id = LOGSTORE_UNIT if unit is None else unit.shard_id
            error = outcome.error
            tried = (
                [server for server, _ in error.attempts]
                if isinstance(error, ReplicaCallError)
                else []
            )
            errors.append(ShardError(shard_id, error, tried))
        if errors:
            obs.counter(
                "zipg_degraded_queries_total",
                help="broadcast queries answered from a subset of shards",
                labels={"query": title},
            ).inc()
        if not partial_results:
            for shard_error in errors:
                raise shard_error.error
            return merge(values)
        return PartialResult(merge(values), errors, attempted=len(units))

    # ------------------------------------------------------------------
    # Degradable broadcast queries
    # ------------------------------------------------------------------

    @obs.traced("replication.get_node_ids", layer="cluster")
    def get_node_ids(self, property_list: PropertyList,
                     partial_results: bool = False):
        """All-shard node search with replica failover; see
        :meth:`_broadcast` for the ``partial_results`` contract."""
        def merge(values):
            result: set = set()
            for hits in values:
                result.update(hits)
            return sorted(result)

        return self._broadcast(
            "get_node_ids", "find_live_nodes", [dict(property_list)],
            merge, partial_results,
            args_key=tuple(sorted(property_list.items())),
        )

    @obs.traced("replication.find_edges", layer="cluster")
    def find_edges(self, property_id: str, value: str,
                   partial_results: bool = False):
        """All-shard edge-property search with replica failover."""
        def merge(values):
            results = [hit for hits in values for hit in hits]
            results.sort(key=lambda hit: (hit[0], hit[1],
                                          hit[2].timestamp,
                                          hit[2].destination))
            return results

        return self._broadcast(
            "find_edges", "find_edges_by_property", [property_id, value],
            merge, partial_results,
            args_key=(property_id, value),
        )

    @obs.traced("replication.get_node_property", layer="cluster")
    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        """Node-property read routed through the owning shard's live
        replicas (failover instead of failing on the first dead one).

        Under ec placement this is a *store-level* op (it walks the
        replicated pointer tables and hot tail), so a down owner fails
        over to any other live server rather than reconstructing."""
        shard_id = self.store.route(node_id)
        wire_args = [node_id, property_ids]
        try:
            return self.call_on_shard(
                shard_id,
                lambda server: self.transport.call(
                    server, "get_node_property", wire_args
                ),
            )
        except (ShardUnavailable, ReplicaCallError):
            if self._ec is None:
                raise
            return self._ec_any_server_call(
                shard_id, "get_node_property", wire_args,
                exclude=set(self.replica_servers(shard_id)),
            )

"""Replication-based fault tolerance and load balancing (§4.1).

"ZipG currently uses traditional replication-based techniques for
fault tolerance; an application can specify the desired number of
replicas per shard. Queries are load balanced evenly across multiple
replicas."

Each shard is placed on ``replication_factor`` consecutive servers.
Reads rotate round-robin over a shard's *live* replicas; failing a
server re-routes its shards' reads to the surviving replicas, and a
shard whose replicas are all down makes queries raise
:class:`ShardUnavailable`.

Degraded-query semantics on top of that placement:

* :meth:`ReplicatedZipGCluster.call_on_shard` tries a shard's live
  replicas in rotation order; a replica call that raises fails over to
  the next live replica (``zipg_replica_failovers_total``) and only
  raises :class:`~repro.core.errors.ReplicaCallError` -- carrying every
  ``(server, exception)`` attempt -- once *all* live replicas failed.
* The broadcast queries (``get_node_ids`` / ``find_edges``) accept
  ``partial_results=True``: instead of raising on the first exhausted
  shard they return a :class:`PartialResult` with the merged value from
  the shards that answered plus one structured :class:`ShardError` per
  shard that did not.
* Replica calls pass through the ``replication.replica_call`` chaos
  site, so :mod:`repro.chaos` can fail chosen servers deterministically.

Rotation and down-server state are guarded by one lock: cluster
queries fan out on the store's thread pool, so ``fail_server`` can race
``server_of_shard`` from a worker thread.
"""
# zipg: query-api

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import chaos, obs
from repro.cluster.cluster import ZipGCluster
from repro.core.errors import ReplicaCallError
from repro.core.graph_store import ZipG
from repro.core.model import PropertyList


class ShardUnavailable(RuntimeError):
    """Every replica of a required shard is down."""


#: Pseudo shard id used to tag replica-call chaos sites and errors for
#: the (unreplicated, §3.5) LogStore server.
LOGSTORE_UNIT = -1


@dataclass
class ShardError:
    """One shard's structured failure inside a degraded query."""

    shard_id: int
    error: BaseException
    servers_tried: List[int] = field(default_factory=list)


@dataclass
class PartialResult:
    """Outcome of a ``partial_results=True`` broadcast query."""

    value: object
    errors: List[ShardError]
    attempted: int

    @property
    def complete(self) -> bool:
        return not self.errors


class ReplicatedZipGCluster(ZipGCluster):
    """A ZipG cluster with per-shard replication.

    Args:
        store: the logical ZipG store.
        num_servers: cluster size.
        replication_factor: replicas per shard (the paper's app-chosen
            knob). Must not exceed ``num_servers``.
        retries: extra per-shard attempts the broadcast fan-out makes
            on top of replica failover (passed to ``executor.map``).
        backoff_s: base exponential backoff between those retries.
        deadline_s: cooperative per-shard-call deadline.
    """

    def __init__(self, store: ZipG, num_servers: int,
                 replication_factor: int = 2, retries: int = 0,
                 backoff_s: float = 0.0,
                 deadline_s: Optional[float] = None):
        super().__init__(store, num_servers, retries=retries,
                         backoff_s=backoff_s, deadline_s=deadline_s)
        if not 1 <= replication_factor <= num_servers:
            raise ValueError("replication_factor must be in [1, num_servers]")
        self.replication_factor = replication_factor
        self._state_lock = threading.Lock()
        self._down: Set[int] = set()
        self._rotation: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def replica_servers(self, shard_id: int) -> List[int]:
        """Servers holding a replica of ``shard_id`` (primary first)."""
        primary = shard_id % self.num_servers
        return [
            (primary + offset) % self.num_servers
            for offset in range(self.replication_factor)
        ]

    def live_replicas(self, shard_id: int) -> List[int]:
        with self._state_lock:
            down = set(self._down)
        return [s for s in self.replica_servers(shard_id) if s not in down]

    def server_of_shard(self, shard_id: int) -> int:
        """Round-robin read routing over the shard's live replicas."""
        live, turn = self._route(shard_id)
        if not live:
            raise ShardUnavailable(f"no live replica for shard {shard_id}")
        return live[turn % len(live)]

    def _route(self, shard_id: int) -> Tuple[List[int], int]:
        """Atomically snapshot the live replicas and claim a rotation
        turn for one read of ``shard_id``."""
        with self._state_lock:
            live = [
                s for s in self.replica_servers(shard_id)
                if s not in self._down
            ]
            turn = self._rotation.get(shard_id, 0)
            self._rotation[shard_id] = turn + 1
        return live, turn

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------

    def fail_server(self, server_id: int) -> None:
        """Mark a server down; its shards fail over to surviving replicas."""
        if not 0 <= server_id < self.num_servers:
            raise IndexError(f"server {server_id} out of range")
        with self._state_lock:
            self._down.add(server_id)

    def recover_server(self, server_id: int) -> None:
        with self._state_lock:
            self._down.discard(server_id)

    @property
    def down_servers(self) -> Set[int]:
        with self._state_lock:
            return set(self._down)

    def is_available(self) -> bool:
        """True if every shard still has at least one live replica."""
        return all(self.live_replicas(s.shard_id) for s in self.store.shards)

    def storage_footprint_bytes(self) -> int:
        """Replication multiplies the stored bytes (no storage-efficient
        erasure coding -- the paper leaves that as future work)."""
        return super().storage_footprint_bytes() * self.replication_factor

    # ------------------------------------------------------------------
    # Resilient shard calls
    # ------------------------------------------------------------------

    def call_on_shard(self, shard_id: int, fn: Callable[[int], object]) -> object:
        """Run ``fn(server)`` against ``shard_id``, failing over across
        its live replicas.

        Replicas are tried once each, starting at this read's rotation
        slot. A replica whose call raises is skipped in favor of the
        next one (``zipg_replica_failovers_total``); once every live
        replica failed, :class:`ReplicaCallError` carries the full
        ``(server, exception)`` attempt list. No live replica at all is
        :class:`ShardUnavailable` -- the shard's data is simply gone.
        """
        live, turn = self._route(shard_id)
        if not live:
            raise ShardUnavailable(f"no live replica for shard {shard_id}")
        attempts: List[Tuple[int, BaseException]] = []
        for offset in range(len(live)):
            server = live[(turn + offset) % len(live)]
            try:
                chaos.kick(chaos.SITE_REPLICA_CALL,
                           shard=shard_id, server=server)
                return fn(server)
            except Exception as exc:
                attempts.append((server, exc))
                if offset < len(live) - 1:
                    obs.counter(
                        "zipg_replica_failovers_total",
                        help="replica calls retried on the next live replica",
                    ).inc()
        raise ReplicaCallError(shard_id, attempts)

    def _call_on_logstore(self, fn: Callable[[int], object]) -> object:
        """The LogStore lives unreplicated on one server (§3.5): its
        server being down makes the call fail outright."""
        server = self.logstore_server
        if server in self.down_servers:
            raise ShardUnavailable(
                f"logstore server {server} is down (logstore is unreplicated)"
            )
        chaos.kick(chaos.SITE_REPLICA_CALL, shard=LOGSTORE_UNIT, server=server)
        return fn(server)

    def _broadcast(self, title: str, unit_fn: Callable, merge: Callable,
                   partial_results: bool, args_key=None):
        """Fan one search out over the LogStore + every shard with
        replica failover, collecting per-unit outcomes.

        ``unit_fn(unit)`` runs the search on one unit (``None`` is the
        LogStore); ``merge(values)`` combines the successful hits.
        When ``args_key`` (a hashable digest of the query arguments) is
        given, identical concurrent broadcasts single-flight through
        :meth:`ShardExecutor.map_shared` -- the store epoch in the key
        keeps a fan-out from being shared across a mutation."""
        units: List = [None] + list(self.store.shards)

        def run(unit):
            if unit is None:
                return self._call_on_logstore(lambda server: unit_fn(unit))
            return self.call_on_shard(
                unit.shard_id, lambda server: unit_fn(unit)
            )

        flight_key = None
        if args_key is not None:
            flight_key = (
                "broadcast", id(self), self.store.epoch.value,
                title, args_key, bool(partial_results),
            )
        with obs.span("replication.broadcast", layer="cluster", query=title):
            outcomes = self.store.executor.map_shared(
                flight_key,
                run,
                units,
                stats_of=lambda unit: (
                    self.store.logstore.stats if unit is None else unit.stats
                ),
                retries=self.retries,
                backoff_s=self.backoff_s,
                deadline_s=self.deadline_s,
                partial=True,
            )
        errors: List[ShardError] = []
        values: List = []
        for outcome, unit in zip(outcomes, units):
            if outcome.ok:
                values.append(outcome.value)
                continue
            shard_id = LOGSTORE_UNIT if unit is None else unit.shard_id
            error = outcome.error
            tried = (
                [server for server, _ in error.attempts]
                if isinstance(error, ReplicaCallError)
                else []
            )
            errors.append(ShardError(shard_id, error, tried))
        if errors:
            obs.counter(
                "zipg_degraded_queries_total",
                help="broadcast queries answered from a subset of shards",
                labels={"query": title},
            ).inc()
        if not partial_results:
            for shard_error in errors:
                raise shard_error.error
            return merge(values)
        return PartialResult(merge(values), errors, attempted=len(units))

    # ------------------------------------------------------------------
    # Degradable broadcast queries
    # ------------------------------------------------------------------

    @obs.traced("replication.get_node_ids", layer="cluster")
    def get_node_ids(self, property_list: PropertyList,
                     partial_results: bool = False):
        """All-shard node search with replica failover; see
        :meth:`_broadcast` for the ``partial_results`` contract."""
        def unit_fn(unit):
            location = self.store.logstore if unit is None else unit
            return location.find_live_nodes(property_list)

        def merge(values):
            result: set = set()
            for hits in values:
                result.update(hits)
            return sorted(result)

        return self._broadcast(
            "get_node_ids", unit_fn, merge, partial_results,
            args_key=tuple(sorted(property_list.items())),
        )

    @obs.traced("replication.find_edges", layer="cluster")
    def find_edges(self, property_id: str, value: str,
                   partial_results: bool = False):
        """All-shard edge-property search with replica failover."""
        def unit_fn(unit):
            location = self.store.logstore if unit is None else unit
            return location.find_edges_by_property(property_id, value)

        def merge(values):
            results = [hit for hits in values for hit in hits]
            results.sort(key=lambda hit: (hit[0], hit[1],
                                          hit[2].timestamp,
                                          hit[2].destination))
            return results

        return self._broadcast(
            "find_edges", unit_fn, merge, partial_results,
            args_key=(property_id, value),
        )

    @obs.traced("replication.get_node_property", layer="cluster")
    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        """Node-property read routed through the owning shard's live
        replicas (failover instead of failing on the first dead one)."""
        shard_id = self.store.route(node_id)
        return self.call_on_shard(
            shard_id,
            lambda server: self.store.get_node_property(node_id, property_ids),
        )

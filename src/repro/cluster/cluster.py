"""Simulated ZipG and Titan clusters (§4.1, §5.3).

ZipG placement: the store's shards round-robin across servers; the
single LogStore lives on one dedicated server (§3.5). Because every
shard meters its own storage touches, the set of servers a query
touched is read directly off the per-shard counters -- no modeling
guesswork. Function shipping (Figure 4) makes each remote step one
*parallel* RPC fan-out, so a query's network latency is counted in
round trips, not per-server messages.

Titan placement: Cassandra hash-partitions rows; node-local queries
touch the row's server, while ``get_node_ids`` uses the global index
and touches at most two servers -- the §5.3 contrast with ZipG's
all-server broadcast for search queries.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro import obs
from repro.baselines.kvgraph import KVGraphStore
from repro.bench.memory_model import CostModel, hit_fraction
from repro.bench.systems import ZipGSystem
from repro.core.graph_store import ZipG, _hash_partition
from repro.succinct.stats import AccessStats
from repro.workloads.base import Operation


@dataclass
class Server:
    """One simulated server: accumulated busy time and message count."""

    server_id: int
    busy_ns: float = 0.0
    messages: int = 0


class ZipGCluster(ZipGSystem):
    """A ZipG deployment across ``num_servers`` simulated servers."""

    name = "zipg"

    def __init__(self, store: ZipG, num_servers: int,
                 max_workers: Optional[int] = None,
                 retries: int = 0, backoff_s: float = 0.0,
                 deadline_s: Optional[float] = None):
        super().__init__(store)
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        self.num_servers = num_servers
        self.servers = [Server(i) for i in range(num_servers)]
        # Failure-semantics knobs: pushed onto the store so every
        # fan-out a query issues (including coalesced ones) inherits
        # the cluster's retry/backoff/deadline policy.
        self.retries = retries
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        store.retries = retries
        store.backoff_s = backoff_s
        store.deadline_s = deadline_s
        # Per-server dispatch seam; None means "in-process against the
        # shared store", materialized lazily by the `transport` property.
        self._transport = None
        # Awaitable-submission pool (gateway seam), created lazily so
        # clusters that never serve a gateway pay no threads.
        self._submitter: Optional[ThreadPoolExecutor] = None
        self._submitter_lock = threading.Lock()
        if max_workers is not None:
            # Re-size the store's fan-out pool so the broadcast path
            # (get_node_ids / find_edges) matches the simulated cluster
            # width.
            from repro.core.executor import ShardExecutor

            store.executor.close()
            store.executor = ShardExecutor(max_workers)

    # -- dispatch --------------------------------------------------------

    @property
    def transport(self):
        """The :class:`~repro.server.transport.Transport` every
        per-server operation dispatches through.

        Defaults to an in-process backend resolving against the shared
        local store (byte-identical to pre-serving-layer dispatch);
        assign a :class:`~repro.server.transport.SocketTransport` to
        route the same calls to real shard-server processes.  Created
        lazily -- and imported lazily, because the server package
        imports cluster types for its wire codec."""
        if self._transport is None:
            from repro.server.transport import InProcessTransport

            self._transport = InProcessTransport(self.store)
        return self._transport

    @transport.setter
    def transport(self, transport) -> None:
        self._transport = transport

    # -- awaitable submission seam ---------------------------------------

    #: Width of the lazily-created submission pool.  Sized for a
    #: gateway front door, not for shard fan-out (the store's
    #: ShardExecutor still owns that): each submission occupies one
    #: thread for the life of one cluster call.
    SUBMIT_WORKERS = 8

    def submit(self, method: str, *args: object, **kwargs: object) -> "Future":
        """Submit one cluster call; returns a ``concurrent.futures``
        future an event loop can await via ``asyncio.wrap_future``.

        This is the gateway's seam over the transport: the call runs
        on a dedicated submission pool (never the store's fan-out
        executor -- a submission that itself fans out must not be able
        to deadlock the pool it fans out on), dispatches through
        ``self.transport`` exactly like a direct call, and the future
        carries the same result or typed exception the direct call
        would have produced."""
        handler = getattr(self, method)
        return self._submit_pool().submit(handler, *args, **kwargs)

    def _submit_pool(self) -> ThreadPoolExecutor:
        pool = self._submitter
        if pool is None:
            with self._submitter_lock:
                pool = self._submitter
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.SUBMIT_WORKERS,
                        thread_name_prefix="zipg-submit",
                    )
                    self._submitter = pool
        return pool

    def close_submitter(self) -> None:
        """Shut the submission pool down (idempotent; in-flight
        submissions finish)."""
        with self._submitter_lock:
            pool, self._submitter = self._submitter, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- placement -------------------------------------------------------

    def server_of_shard(self, shard_id: int) -> int:
        """Round-robin shard placement across the servers."""
        return shard_id % self.num_servers

    @property
    def logstore_server(self) -> int:
        """The dedicated LogStore server (§3.5); server 0 here."""
        return 0

    # -- per-query attribution ---------------------------------------------

    def _snapshot(self) -> List[AccessStats]:
        snaps = [shard.stats.snapshot() for shard in self.store.shards]
        snaps.append(self.store.logstore.stats.snapshot())
        return snaps

    def _attribute(self, before: List[AccessStats], cost_model: CostModel,
                   budget_total: int) -> Set[int]:
        """Charge each server for the work its shards just did; return
        the set of servers touched."""
        footprint = self.store.storage_footprint_bytes()
        touched: Set[int] = set()
        shards = self.store.shards
        for index, shard in enumerate(shards):
            if index < len(before):
                delta = shard.stats.delta_since(before[index])
            else:
                delta = shard.stats.snapshot()  # shard born mid-run (freeze)
            if delta.total_touches or delta.sequential_bytes or delta.npa_hops:
                server = self.server_of_shard(shard.shard_id)
                touched.add(server)
                self.servers[server].busy_ns += cost_model.query_latency_ns(
                    delta, footprint, budget_total
                )
        log_delta = self.store.logstore.stats.delta_since(before[-1])
        if log_delta.total_touches or log_delta.sequential_bytes:
            touched.add(self.logstore_server)
            self.servers[self.logstore_server].busy_ns += cost_model.query_latency_ns(
                log_delta, footprint, budget_total
            )
        return touched

    def run_operation(self, operation: Operation, cost_model: CostModel,
                      budget_total: int) -> float:
        """Execute one operation; returns its latency in ns (CPU/storage
        on the slowest path + network round trips)."""
        with obs.span("cluster.run_operation", layer="cluster",
                      op=type(operation).__name__):
            before = self._snapshot()
            total_before = self.store.aggregate_stats().snapshot()
            operation.run(self)
            touched = self._attribute(before, cost_model, budget_total)
            delta = self.store.aggregate_stats().delta_since(total_before)
            footprint = self.store.storage_footprint_bytes()
            storage_ns = cost_model.query_latency_ns(
                delta, footprint, budget_total
            )
            # Function shipping: client -> entry aggregator (1 RTT), plus
            # one parallel fan-out RTT if any other server was involved.
            round_trips = 1 + (1 if len(touched) > 1 else 0)
            for server in touched:
                self.servers[server].messages += 1
            return storage_ns + round_trips * cost_model.network_hop_ns


class TitanCluster(KVGraphStore):
    """A Titan deployment: rows hash-partitioned across servers."""

    def __init__(self, graph, num_servers: int, compressed: bool = False):
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        loaded = KVGraphStore.load(graph, compressed=compressed)
        # Adopt the loaded store's internals (load() is a classmethod
        # constructor on the base class).
        self.__dict__.update(loaded.__dict__)
        self.num_servers = num_servers
        self.servers = [Server(i) for i in range(num_servers)]
        self._index_rotation = 0

    def server_of_node(self, node_id: int) -> int:
        """The server whose Cassandra token range owns the node's row."""
        return _hash_partition(node_id, self.num_servers)

    def run_operation(self, operation: Operation, cost_model: CostModel,
                      budget_total: int) -> float:
        """Execute one operation; returns its simulated latency in ns."""
        before = self.aggregate_stats().snapshot()
        operation.run(self)
        delta = self.aggregate_stats().delta_since(before)
        footprint = self.storage_footprint_bytes()
        storage_ns = cost_model.query_latency_ns(delta, footprint, budget_total)
        # Attribution: Cassandra routes by row key. Node-routed ops hit
        # the target's server; global-index searches touch at most two
        # servers (the paper's Titan-vs-ZipG contrast for GS3).
        if operation.target is not None:
            targets = [self.server_of_node(operation.target)]
        else:
            self._index_rotation += 1
            first = self._index_rotation % self.num_servers
            targets = list({first, (first + 1) % self.num_servers})
        share = storage_ns / len(targets)
        for target in targets:
            self.servers[target].busy_ns += share
            self.servers[target].messages += 1
        round_trips = 1
        return storage_ns + round_trips * cost_model.network_hop_ns


@dataclass
class DistributedResult:
    """Outcome of a distributed run (one bar of Figure 9)."""

    system: str
    workload: str
    operations: int
    avg_latency_us: float
    ideal_throughput_kops: float
    throughput_kops: float  # imbalance-adjusted
    load_imbalance: float  # max server busy / mean server busy
    servers_touched_per_op: float

    def row(self) -> str:
        """One formatted line for benchmark tables."""
        return (
            f"{self.system:<18} {self.workload:<14} "
            f"{self.throughput_kops:>9.1f} KOps "
            f"(ideal {self.ideal_throughput_kops:>8.1f}, "
            f"imbalance {self.load_imbalance:4.2f}x)"
        )


def run_distributed_workload(
    cluster,
    operations: Iterable[Operation],
    cost_model: CostModel,
    budget_total: int,
    cores_per_server: int = 8,
    workload_name: str = "mixed",
) -> DistributedResult:
    """Replay operations on a simulated cluster (Figure 9's setting:
    10 servers x 8 cores, budgets summed across servers).

    Throughput = total cores / avg latency, derated by the per-server
    load imbalance (a maximally-loaded server gates the pipeline --
    §5.3's LinkBench observation).
    """
    total_ns = 0.0
    count = 0
    for operation in operations:
        total_ns += cluster.run_operation(operation, cost_model, budget_total)
        count += 1
    avg_ns = total_ns / count if count else 0.0
    cores = cores_per_server * cluster.num_servers
    # Throughput is gated by server *busy* time, not end-to-end latency:
    # network round trips overlap across in-flight queries, so they add
    # latency but do not consume server cores.
    total_busy = sum(server.busy_ns for server in cluster.servers)
    busy_per_op = total_busy / count if count else 0.0
    ideal_kops = (cores / (busy_per_op * 1e-9)) / 1e3 if busy_per_op else 0.0
    busys = [server.busy_ns for server in cluster.servers]
    mean_busy = sum(busys) / len(busys) if busys else 0.0
    max_busy = max(busys) if busys else 0.0
    imbalance = (max_busy / mean_busy) if mean_busy > 0 else 1.0
    adjusted = ideal_kops / imbalance if imbalance > 0 else ideal_kops
    messages = sum(server.messages for server in cluster.servers)
    return DistributedResult(
        system=getattr(cluster, "name", type(cluster).__name__),
        workload=workload_name,
        operations=count,
        avg_latency_us=avg_ns / 1e3,
        ideal_throughput_kops=ideal_kops,
        throughput_kops=adjusted,
        load_imbalance=imbalance,
        servers_touched_per_op=messages / count if count else 0.0,
    )

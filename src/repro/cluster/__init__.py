"""Distributed-cluster simulation (§4.1, Figure 4, Figure 9).

Shards are placed on simulated servers; every query is attributed to
the exact set of servers whose storage it touched (each shard carries
its own access meter), function shipping is modeled as one parallel
RPC fan-out per remote step, and throughput accounts for per-server
load imbalance -- which is how LinkBench's hot-node skew turns into
Figure 9(b)'s sublinear scaling.
"""

from repro.cluster.aggregator import (
    FunctionShippingAggregator,
    ShippingLevel,
    ShippingTrace,
)
from repro.cluster.cluster import (
    DistributedResult,
    Server,
    TitanCluster,
    ZipGCluster,
    run_distributed_workload,
)
from repro.cluster.replication import (
    PartialResult,
    ReplicatedZipGCluster,
    ShardError,
    ShardUnavailable,
)

__all__ = [
    "DistributedResult",
    "FunctionShippingAggregator",
    "PartialResult",
    "ReplicatedZipGCluster",
    "Server",
    "ShardError",
    "ShardUnavailable",
    "ShippingLevel",
    "ShippingTrace",
    "TitanCluster",
    "ZipGCluster",
    "run_distributed_workload",
]

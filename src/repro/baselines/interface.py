"""The common query surface shared by ZipG and the baselines.

The workloads (:mod:`repro.workloads`) and the benchmark harness drive
every system through these methods, so a TAO/LinkBench/Graph Search
query executes the *same logical work* everywhere and only the storage
architecture differs -- which is exactly what the paper's evaluation
varies.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.core.model import EdgeData, PropertyList
from repro.succinct.stats import AccessStats


class GraphStoreInterface(abc.ABC):
    """Abstract graph store: the operations the evaluation exercises."""

    #: human-readable system name used in benchmark tables
    name: str = "abstract"

    # -- node queries ---------------------------------------------------

    @abc.abstractmethod
    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        """Properties of a node (TAO ``obj_get``)."""

    @abc.abstractmethod
    def get_node_ids(self, property_list: PropertyList) -> List[int]:
        """Nodes matching all property pairs (Graph Search GS3)."""

    @abc.abstractmethod
    def get_neighbor_ids(
        self, node_id: int, edge_type="*", property_list: Optional[PropertyList] = None
    ) -> List[int]:
        """Neighbors, optionally filtered by type and properties."""

    # -- edge queries ---------------------------------------------------

    @abc.abstractmethod
    def edge_count(self, node_id: int, edge_type: int) -> int:
        """TAO ``assoc_count``."""

    @abc.abstractmethod
    def edges_in_time_range(
        self,
        node_id: int,
        edge_type: int,
        t_low: Optional[int],
        t_high: Optional[int],
        limit: Optional[int] = None,
        with_properties: bool = True,
    ) -> List[EdgeData]:
        """TAO ``assoc_time_range``; wildcards via ``None`` bounds."""

    @abc.abstractmethod
    def edges_from_index(
        self,
        node_id: int,
        edge_type: int,
        start_index: int,
        limit: Optional[int],
        with_properties: bool = True,
    ) -> List[EdgeData]:
        """TAO ``assoc_range``: edges by TimeOrder starting at an index."""

    # -- updates ----------------------------------------------------------

    @abc.abstractmethod
    def append_node(self, node_id: int, properties: PropertyList) -> None:
        """TAO ``obj_add``."""

    @abc.abstractmethod
    def append_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        """TAO ``assoc_add``."""

    @abc.abstractmethod
    def delete_node(self, node_id: int) -> bool:
        """TAO ``obj_del``."""

    @abc.abstractmethod
    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        """TAO ``assoc_del``."""

    def update_node(self, node_id: int, properties: PropertyList) -> None:
        """TAO ``obj_update`` (delete + append by default)."""
        self.delete_node(node_id)
        self.append_node(node_id, properties)

    def update_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        """TAO ``assoc_update`` (delete + append by default)."""
        self.delete_edge(source, edge_type, destination)
        self.append_edge(source, edge_type, destination, timestamp, properties)

    # -- accounting -------------------------------------------------------

    @abc.abstractmethod
    def storage_footprint_bytes(self) -> int:
        """Total bytes of the system's data representation (Figure 5)."""

    @abc.abstractmethod
    def aggregate_stats(self) -> AccessStats:
        """Merged access counters across the system's components."""

    @abc.abstractmethod
    def reset_stats(self) -> None:
        """Zero all access counters."""

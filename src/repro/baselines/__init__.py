"""Baseline graph stores the paper evaluates against.

* :class:`~repro.baselines.pointerstore.PointerGraphStore` -- a
  Neo4j-like pointer-based store (node table, relationship chains,
  property chains, global secondary indexes). ``tuned=True`` models the
  Neo4j-Tuned variant the authors produced with Neo4j engineers.
* :class:`~repro.baselines.kvgraph.KVGraphStore` -- a Titan-like store
  mapping the graph onto an opaque row-per-vertex key-value layout over
  a Cassandra-like LSM substrate (:mod:`repro.baselines.lsm`);
  ``compressed=True`` models Titan with LZ4 SSTable block compression
  (zlib here).

Both implement :class:`~repro.baselines.interface.GraphStoreInterface`,
the common query surface the workloads drive, and both meter their
storage touches through the shared
:class:`~repro.succinct.stats.AccessStats` so the benchmark memory
model can price their queries identically to ZipG's.
"""

from repro.baselines.interface import GraphStoreInterface
from repro.baselines.kvgraph import KVGraphStore
from repro.baselines.lsm import LSMStore
from repro.baselines.pointerstore import PointerGraphStore

__all__ = ["GraphStoreInterface", "KVGraphStore", "LSMStore", "PointerGraphStore"]

"""A Cassandra-like log-structured merge store (the Titan backend).

Write path: appends go to a memtable; when it exceeds a threshold it is
flushed to an immutable SSTable; size-tiered compaction merges SSTables
when too many accumulate. Multiple writes to one key accumulate as
*fragments* (Cassandra cells): a read gathers the fragments from the
memtable and every SSTable whose bloom filter admits the key -- the
read amplification that makes Cassandra write-optimized but range- and
scan-unfriendly (§5.2's explanation of Titan's LinkBench behaviour).

``compressed=True`` models LZ4 SSTable block compression (zlib here):
entries are packed into ~4 KiB blocks compressed at flush time, and
every read decompresses its block -- the CPU overhead footnote 7 blames
for Titan-Compressed being strictly slower than Titan uncompressed.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.succinct.coding import varint_decode, varint_encode
from repro.succinct.stats import AccessStats

BLOCK_TARGET_BYTES = 4096
CELL_METADATA_BYTES = 8  # Cassandra per-cell overhead (timestamp, flags)


def _pack_entries(entries: List[Tuple[bytes, bytes]]) -> bytes:
    out = bytearray()
    for key, fragment in entries:
        out.extend(varint_encode(len(key)))
        out.extend(key)
        out.extend(varint_encode(len(fragment)))
        out.extend(fragment)
    return bytes(out)


def _unpack_entries(blob: bytes) -> List[Tuple[bytes, bytes]]:
    entries = []
    offset = 0
    while offset < len(blob):
        key_length, offset = varint_decode(blob, offset)
        key = blob[offset : offset + key_length]
        offset += key_length
        fragment_length, offset = varint_decode(blob, offset)
        fragment = blob[offset : offset + fragment_length]
        offset += fragment_length
        entries.append((key, fragment))
    return entries


class SSTable:
    """An immutable sorted table of (key, fragment) entries.

    Entries are grouped into blocks; a sorted per-block key index
    provides the lookup. With compression on, blocks are zlib-deflated
    at build time and inflated on every access.
    """

    def __init__(self, entries: List[Tuple[bytes, bytes]], compressed: bool, stats: AccessStats):
        entries = sorted(entries, key=lambda e: e[0])
        self._compressed = compressed
        self._stats = stats
        self._num_entries = len(entries)
        self._keys = sorted({key for key, _ in entries})
        self._block_first_keys: List[bytes] = []
        self._blocks: List[bytes] = []
        self._raw_block_sizes: List[int] = []
        current: List[Tuple[bytes, bytes]] = []
        current_size = 0
        for key, fragment in entries:
            current.append((key, fragment))
            current_size += len(key) + len(fragment) + 4
            if current_size >= BLOCK_TARGET_BYTES:
                self._seal_block(current)
                current, current_size = [], 0
        if current:
            self._seal_block(current)

    def _seal_block(self, entries: List[Tuple[bytes, bytes]]) -> None:
        raw = _pack_entries(entries)
        self._block_first_keys.append(entries[0][0])
        self._raw_block_sizes.append(len(raw))
        self._blocks.append(zlib.compress(raw) if self._compressed else raw)

    def may_contain(self, key: bytes) -> bool:
        """Bloom-filter stand-in (exact here; real filters have ~1% FP)."""
        import bisect as _bisect

        index = _bisect.bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    def _read_block(self, block_index: int) -> List[Tuple[bytes, bytes]]:
        blob = self._blocks[block_index]
        if self._compressed:
            blob = zlib.decompress(blob)
            self._stats.decompressed_bytes += len(blob)
        return _unpack_entries(blob)

    def get_fragments(self, key: bytes) -> List[bytes]:
        """All fragments stored for ``key`` (in insertion order).

        Entries are globally sorted, so the key's fragments occupy a
        contiguous run of blocks starting at the block whose first key
        is the largest one <= key.
        """
        import bisect as _bisect

        if not self.may_contain(key):
            return []
        self._stats.random_accesses += 1
        block_index = max(0, _bisect.bisect_right(self._block_first_keys, key) - 1)
        fragments: List[bytes] = []
        while block_index < len(self._blocks):
            entries = self._read_block(block_index)
            self._stats.sequential_bytes += self._raw_block_sizes[block_index]
            fragments.extend(f for k, f in entries if k == key)
            if entries[-1][0] > key:  # sorted: no later block holds the key
                break
            block_index += 1
        return fragments

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """All (key, fragment) entries whose key starts with ``prefix``."""
        import bisect as _bisect

        block_index = max(0, _bisect.bisect_right(self._block_first_keys, prefix) - 1)
        while block_index < len(self._blocks):
            entries = self._read_block(block_index)
            self._stats.random_accesses += 1
            self._stats.sequential_bytes += self._raw_block_sizes[block_index]
            for key, fragment in entries:
                if key.startswith(prefix):
                    yield (key, fragment)
            last_key = entries[-1][0]
            if last_key > prefix and not last_key.startswith(prefix):
                break
            block_index += 1

    def all_entries(self) -> List[Tuple[bytes, bytes]]:
        entries: List[Tuple[bytes, bytes]] = []
        for block_index in range(len(self._blocks)):
            entries.extend(self._read_block(block_index))
        return entries

    def stored_bytes(self) -> int:
        index = sum(len(k) + 8 for k in self._block_first_keys)
        keys = sum(len(k) + 2 for k in self._keys)  # bloom/key index
        cells = self._num_entries * CELL_METADATA_BYTES
        return sum(len(b) for b in self._blocks) + index + keys + cells


class LSMStore:
    """Memtable + SSTables with size-tiered compaction.

    Args:
        compressed: zlib block compression for SSTables.
        memtable_flush_bytes: flush threshold.
        max_sstables: compaction trigger.
        stats: optional shared access meter.
    """

    def __init__(
        self,
        compressed: bool = False,
        memtable_flush_bytes: int = 1 << 20,
        max_sstables: int = 8,
        stats: Optional[AccessStats] = None,
    ):
        self._compressed = compressed
        self._flush_bytes = memtable_flush_bytes
        self._max_sstables = max_sstables
        self.stats = stats if stats is not None else AccessStats()
        self._memtable: Dict[bytes, List[bytes]] = {}
        self._memtable_bytes = 0
        self._sstables: List[SSTable] = []
        self.flush_count = 0
        self.compaction_count = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(self, key: bytes, fragment: bytes) -> None:
        """Append one fragment under ``key`` (Cassandra cell write)."""
        self.stats.writes += 1
        self._memtable.setdefault(key, []).append(fragment)
        self._memtable_bytes += len(key) + len(fragment)
        if self._memtable_bytes >= self._flush_bytes:
            self.flush()

    def flush(self) -> None:
        """Flush the memtable into a new SSTable."""
        if not self._memtable:
            return
        entries = [
            (key, fragment)
            for key, fragments in self._memtable.items()
            for fragment in fragments
        ]
        self._sstables.append(SSTable(entries, self._compressed, self.stats))
        self._memtable = {}
        self._memtable_bytes = 0
        self.flush_count += 1
        if len(self._sstables) > self._max_sstables:
            self.compact()

    def compact(self) -> None:
        """Size-tiered compaction: merge every SSTable into one,
        preserving fragment order (oldest table first)."""
        if len(self._sstables) <= 1:
            return
        merged: List[Tuple[bytes, bytes]] = []
        for table in self._sstables:
            merged.extend(table.all_entries())
        self._sstables = [SSTable(merged, self._compressed, self.stats)]
        self.compaction_count += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get_fragments(self, key: bytes) -> List[bytes]:
        """All fragments for ``key``, oldest first (replay order)."""
        fragments: List[bytes] = []
        for table in self._sstables:  # oldest SSTable first
            fragments.extend(table.get_fragments(key))
        if key in self._memtable:
            self.stats.random_accesses += 1
            fragments.extend(self._memtable[key])
        return fragments

    def scan_prefix(self, prefix: bytes) -> List[Tuple[bytes, bytes]]:
        """All entries with keys starting with ``prefix``, oldest first."""
        results: List[Tuple[bytes, bytes]] = []
        for table in self._sstables:
            results.extend(table.scan_prefix(prefix))
        for key in sorted(self._memtable):
            if key.startswith(prefix):
                self.stats.random_accesses += 1
                for fragment in self._memtable[key]:
                    results.append((key, fragment))
        return results

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_sstables(self) -> int:
        return len(self._sstables)

    def stored_bytes(self) -> int:
        return sum(t.stored_bytes() for t in self._sstables) + self._memtable_bytes

"""Neo4j-like pointer-based graph store (§3.3's "flexibility" extreme).

Models the mechanisms the paper attributes Neo4j's behaviour to:

* fixed-size *node records* pointing at the head of a relationship
  chain and a property chain;
* *relationship records* forming per-node linked lists (doubly linked
  in Neo4j; we keep per-source chains), each with its own property
  chain;
* *property records* holding one key/value each, chained;
* global secondary indexes on (PropertyID, value) -- the storage
  overhead Figure 5 charges Neo4j for;
* every record dereference counts one ``random_access``: this is the
  pointer-chasing behaviour that turns into one SSD lookup per hop once
  the store no longer fits in memory (§5.2).

``tuned=True`` models Neo4j-Tuned: relationship chains are additionally
grouped by edge type (so type-filtered traversals skip unrelated
edges), timestamp lookups binary-search a per-chain sorted index
instead of scanning, and property reads short-circuit after the
requested keys are found.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.interface import GraphStoreInterface
from repro.core.model import EdgeData, GraphData, PropertyList
from repro.succinct.stats import AccessStats
from repro.workloads.properties import INDEXED_PROPERTY_IDS

# On-disk record sizes modeled on Neo4j's store formats. Property
# values up to INLINE_VALUE_BYTES fit inside the fixed property record;
# longer values spill into the dynamic string store.
NODE_RECORD_BYTES = 15
RELATIONSHIP_RECORD_BYTES = 34
PROPERTY_RECORD_BYTES = 41
INLINE_VALUE_BYTES = 24
INDEX_ENTRY_OVERHEAD_BYTES = 48  # b-tree entry overhead per indexed value


class _PropertyRecord:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: str, value: str):
        self.key = key
        self.value = value
        self.next: Optional["_PropertyRecord"] = None


class _RelationshipRecord:
    __slots__ = ("source", "destination", "edge_type", "timestamp", "properties", "next")

    def __init__(self, source: int, destination: int, edge_type: int, timestamp: int):
        self.source = source
        self.destination = destination
        self.edge_type = edge_type
        self.timestamp = timestamp
        self.properties: Optional[_PropertyRecord] = None
        self.next: Optional["_RelationshipRecord"] = None


class _NodeRecord:
    __slots__ = (
        "node_id", "first_property", "first_relationship", "typed_chains",
        "ts_index", "deleted",
    )

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.first_property: Optional[_PropertyRecord] = None
        self.first_relationship: Optional[_RelationshipRecord] = None
        self.deleted = False
        # Tuned-only acceleration structures:
        self.typed_chains: Dict[int, List[_RelationshipRecord]] = {}
        self.ts_index: Dict[int, List[int]] = {}


class PointerGraphStore(GraphStoreInterface):
    """A Neo4j-like store; single machine only (as in the paper)."""

    def __init__(self, tuned: bool = False, indexed_properties=INDEXED_PROPERTY_IDS):
        self.name = "neo4j-tuned" if tuned else "neo4j"
        self._tuned = tuned
        self._nodes: Dict[int, _NodeRecord] = {}
        self._indexed = None if indexed_properties is None else set(indexed_properties)
        self._index: Dict[Tuple[str, str], Set[int]] = {}
        self._num_relationships = 0
        self._num_property_records = 0
        self.stats = AccessStats()

    @classmethod
    def load(cls, graph: GraphData, tuned: bool = False) -> "PointerGraphStore":
        """Bulk-load an input graph."""
        store = cls(tuned=tuned)
        for node_id in graph.node_ids():
            store.append_node(node_id, graph.node_properties(node_id))
        for edge in graph.all_edges():
            store.append_edge(
                edge.source, edge.edge_type, edge.destination, edge.timestamp,
                edge.properties,
            )
        store.reset_stats()
        return store

    # ------------------------------------------------------------------
    # Record traversal helpers (each hop is one storage touch)
    # ------------------------------------------------------------------

    def _node_record(self, node_id: int) -> _NodeRecord:
        self.stats.random_accesses += 1
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} not found") from None

    def _walk_properties(
        self, head: Optional[_PropertyRecord], wanted: Optional[Set[str]]
    ) -> PropertyList:
        result: PropertyList = {}
        record = head
        while record is not None:
            self.stats.random_accesses += 1  # pointer chase per property record
            if wanted is None or record.key in wanted:
                result[record.key] = record.value
                if self._tuned and wanted is not None and len(result) == len(wanted):
                    break
            record = record.next
        return result

    def _relationships(
        self, node: _NodeRecord, edge_type: Optional[int]
    ) -> List[_RelationshipRecord]:
        """Walk the relationship chain; tuned stores walk only the
        requested type's chain."""
        if self._tuned and edge_type is not None:
            chain = node.typed_chains.get(edge_type, [])
            self.stats.random_accesses += len(chain)
            return list(chain)
        records = []
        record = node.first_relationship
        while record is not None:
            self.stats.random_accesses += 1
            if edge_type is None or record.edge_type == edge_type:
                records.append(record)
            record = record.next
        if edge_type is None or not self._tuned:
            records.sort(key=lambda r: (r.timestamp, r.destination))
        return records

    # ------------------------------------------------------------------
    # Node queries
    # ------------------------------------------------------------------

    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        node = self._node_record(node_id)
        if node.deleted:
            raise KeyError(f"node {node_id} deleted")
        if property_ids == "*":
            wanted = None
        elif isinstance(property_ids, str):
            wanted = {property_ids}
        else:
            wanted = set(property_ids)
        return self._walk_properties(node.first_property, wanted)

    def get_node_ids(self, property_list: PropertyList) -> List[int]:
        """Uses the global secondary index for indexed PropertyIDs (the
        paper: Neo4j answers search queries from indexes, touching at
        most two partitions); non-indexed predicates fall back to a
        full property scan."""
        result: Optional[Set[int]] = None
        for key, value in property_list.items():
            self.stats.searches += 1
            if self._indexed is None or key in self._indexed:
                matches = self._index.get((key, value), set())
                self.stats.random_accesses += 1 + len(matches) // 64  # index pages
            else:
                matches = self._scan_for(key, value)
            result = set(matches) if result is None else result & matches
            if not result:
                return []
        if result is None:
            return sorted(node_id for node_id, n in self._nodes.items() if not n.deleted)
        return sorted(result)

    def _scan_for(self, key: str, value: str) -> Set[int]:
        """Full store scan for a non-indexed property predicate."""
        matches: Set[int] = set()
        for node_id, node in self._nodes.items():
            if node.deleted:
                continue
            properties = self._walk_properties(node.first_property, {key})
            if properties.get(key) == value:
                matches.add(node_id)
        return matches

    def get_neighbor_ids(
        self, node_id: int, edge_type="*", property_list: Optional[PropertyList] = None
    ) -> List[int]:
        self.stats.random_accesses += 1
        node = self._nodes.get(node_id)
        if node is None:
            return []  # no record, no associations (TAO semantics)
        etype = None if edge_type == "*" else int(edge_type)
        destinations = [r.destination for r in self._relationships(node, etype)]
        if not property_list:
            return destinations
        matches = []
        for destination in destinations:
            try:
                properties = self.get_node_property(destination, list(property_list))
            except KeyError:
                continue
            if all(properties.get(k) == v for k, v in property_list.items()):
                matches.append(destination)
        return matches

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------

    def edge_count(self, node_id: int, edge_type: int) -> int:
        return len(self._edges_sorted(node_id, edge_type))

    def _edges_sorted(self, node_id: int, edge_type: int) -> List[_RelationshipRecord]:
        self.stats.random_accesses += 1
        node = self._nodes.get(node_id)
        if node is None:
            return []  # no record, no associations (TAO semantics)
        return self._relationships(node, edge_type)

    def edges_in_time_range(
        self,
        node_id: int,
        edge_type: int,
        t_low: Optional[int],
        t_high: Optional[int],
        limit: Optional[int] = None,
        with_properties: bool = True,
    ) -> List[EdgeData]:
        records = self._edges_sorted(node_id, edge_type)
        timestamps = [r.timestamp for r in records]
        begin = 0 if t_low is None else bisect.bisect_left(timestamps, t_low)
        end = len(records) if t_high is None else bisect.bisect_left(timestamps, t_high)
        if limit is not None:
            end = min(end, begin + limit)
        return [self._to_edge_data(r, with_properties) for r in records[begin:end]]

    def edges_from_index(
        self,
        node_id: int,
        edge_type: int,
        start_index: int,
        limit: Optional[int],
        with_properties: bool = True,
    ) -> List[EdgeData]:
        records = self._edges_sorted(node_id, edge_type)
        end = len(records) if limit is None else min(len(records), start_index + limit)
        return [self._to_edge_data(r, with_properties) for r in records[start_index:end]]

    def _to_edge_data(self, record: _RelationshipRecord, with_properties: bool) -> EdgeData:
        properties = (
            self._walk_properties(record.properties, None) if with_properties else {}
        )
        return EdgeData(record.destination, record.timestamp, properties)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append_node(self, node_id: int, properties: PropertyList) -> None:
        # Pointer-based writes dirty multiple random locations: the node
        # record, one property record per value, and the index pages
        # (the paper's explanation for Neo4j's poor LinkBench writes).
        self.stats.writes += 1 + len(properties)
        node = self._nodes.get(node_id)
        if node is None:
            node = _NodeRecord(node_id)
            self._nodes[node_id] = node
        else:
            self._unindex_node(node)
            self._num_property_records -= self._count_property_records(node)
        node.deleted = False
        head: Optional[_PropertyRecord] = None
        for key, value in reversed(list(properties.items())):
            record = _PropertyRecord(key, value)
            record.next = head
            head = record
            self._num_property_records += 1
            self.stats.random_accesses += 1  # write touches a property record
        node.first_property = head
        for pair in properties.items():
            if self._indexed is None or pair[0] in self._indexed:
                self._index.setdefault(pair, set()).add(node_id)
                self.stats.random_accesses += 1  # index maintenance write

    def append_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        self.stats.writes += 2 + len(properties or {})  # rel record + chain fixup
        node = self._nodes.setdefault(source, _NodeRecord(source))
        self._nodes.setdefault(destination, _NodeRecord(destination))
        record = _RelationshipRecord(source, destination, edge_type, timestamp)
        for key, value in reversed(list((properties or {}).items())):
            prop = _PropertyRecord(key, value)
            prop.next = record.properties
            record.properties = prop
            self._num_property_records += 1
            self.stats.random_accesses += 1
        # Insert at chain head (Neo4j prepends) -- plus pointer fixups.
        record.next = node.first_relationship
        node.first_relationship = record
        self._num_relationships += 1
        self.stats.random_accesses += 3  # node record + two pointer writes
        if self._tuned:
            chain = node.typed_chains.setdefault(edge_type, [])
            keys = [(r.timestamp, r.destination) for r in chain]
            chain.insert(
                bisect.bisect_right(keys, (timestamp, destination)), record
            )

    def delete_node(self, node_id: int) -> bool:
        """Delete the node's data (its PropertyList). Relationship
        records are independent (TAO separates objects from
        associations), so incident edges remain until assoc_del'd."""
        self.stats.writes += 1
        node = self._nodes.get(node_id)
        if node is None or node.deleted:
            return False
        self._unindex_node(node)
        # Deleting touches each of the node's property records.
        record = node.first_property
        while record is not None:
            self.stats.random_accesses += 1
            self._num_property_records -= 1
            record = record.next
        node.first_property = None
        node.deleted = True
        return True

    @staticmethod
    def _count_property_records(node: _NodeRecord) -> int:
        count = 0
        record = node.first_property
        while record is not None:
            count += 1
            record = record.next
        return count

    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        self.stats.writes += 1
        node = self._nodes.get(source)
        if node is None:
            return 0
        deleted = 0
        previous: Optional[_RelationshipRecord] = None
        record = node.first_relationship
        while record is not None:
            self.stats.random_accesses += 1
            if record.edge_type == edge_type and record.destination == destination:
                if previous is None:
                    node.first_relationship = record.next
                else:
                    previous.next = record.next
                deleted += 1
                self._num_relationships -= 1
            else:
                previous = record
            record = record.next
        if self._tuned and edge_type in node.typed_chains:
            node.typed_chains[edge_type] = [
                r for r in node.typed_chains[edge_type] if r.destination != destination
            ]
        return deleted

    def _unindex_node(self, node: _NodeRecord) -> None:
        record = node.first_property
        while record is not None:
            if self._indexed is None or record.key in self._indexed:
                self._index.get((record.key, record.value), set()).discard(node.node_id)
            record = record.next

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def storage_footprint_bytes(self) -> int:
        """Record stores plus the secondary indexes (Figure 5's
        overhead source for Neo4j)."""
        records = (
            len(self._nodes) * NODE_RECORD_BYTES
            + self._num_relationships * RELATIONSHIP_RECORD_BYTES
            + self._num_property_records * PROPERTY_RECORD_BYTES
        )
        strings = 0

        def spill(value: str) -> int:
            # Values longer than the inline capacity go to the dynamic
            # string store, allocated in chained 128-byte blocks (as in
            # Neo4j's dynamic record format).
            excess = len(value) - INLINE_VALUE_BYTES
            if excess <= 0:
                return 0
            return ((excess + 119) // 120) * 128

        for node in self._nodes.values():
            prop = node.first_property
            while prop is not None:
                strings += spill(prop.value)
                prop = prop.next
            rel = node.first_relationship
            while rel is not None:
                p = rel.properties
                while p is not None:
                    strings += spill(p.value)
                    p = p.next
                rel = rel.next
        index = sum(
            len(k) + len(v) + INDEX_ENTRY_OVERHEAD_BYTES * max(1, len(nodes))
            for (k, v), nodes in self._index.items()
        )
        return records + strings + index

    def aggregate_stats(self) -> AccessStats:
        return self.stats

    def reset_stats(self) -> None:
        self.stats.reset()

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_relationships(self) -> int:
        return self._num_relationships

"""Titan-like graph store: opaque KV rows over the LSM substrate.

Models the layout §3.3 contrasts ZipG against: the graph is mapped onto
a key-value abstraction where a vertex's properties and its entire
adjacency are *single opaque objects*. Fine-grained access is therefore
impossible: reading one property fetches and scans the whole property
blob, and any edge query fetches and scans the whole adjacency row and
filters (the exact behaviour §5.2 blames for Titan's throughput).

Rows:

* ``n:<id>``  -- property blob fragments (``P`` payload / ``D`` tombstone);
* ``e:<src>`` -- adjacency fragments, each a run of ``A``dd / ``R``emove
  edge operations with varint-coded fields (Titan's variable-length /
  delta encodings, footnote 7);
* ``i:<pid>=<value>`` -- global index fragments (``A``/``R`` + node id),
  Titan's composite-index analogue used by ``get_node_ids``.

Writes are tiny fragment appends (Cassandra's write-optimized path);
reads gather and replay fragments across SSTables.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.baselines.interface import GraphStoreInterface
from repro.baselines.lsm import LSMStore
from repro.core.model import EdgeData, GraphData, PropertyList
from repro.succinct.coding import varint_decode, varint_encode
from repro.succinct.stats import AccessStats
from repro.workloads.properties import INDEXED_PROPERTY_IDS


def _encode_str(value: str) -> bytes:
    data = value.encode("utf-8")
    return varint_encode(len(data)) + data


def _decode_str(blob: bytes, offset: int) -> Tuple[str, int]:
    length, offset = varint_decode(blob, offset)
    return blob[offset : offset + length].decode("utf-8"), offset + length


def _encode_props(properties: PropertyList) -> bytes:
    out = bytearray(varint_encode(len(properties)))
    for key, value in properties.items():
        out.extend(_encode_str(key))
        out.extend(_encode_str(value))
    return bytes(out)


def _decode_props(blob: bytes, offset: int = 0) -> Tuple[PropertyList, int]:
    count, offset = varint_decode(blob, offset)
    properties: PropertyList = {}
    for _ in range(count):
        key, offset = _decode_str(blob, offset)
        value, offset = _decode_str(blob, offset)
        properties[key] = value
    return properties, offset


class KVGraphStore(GraphStoreInterface):
    """A Titan-like distributed-capable graph store on a KV backend."""

    def __init__(self, compressed: bool = False, memtable_flush_bytes: int = 1 << 18,
                 indexed_properties=INDEXED_PROPERTY_IDS):
        self.name = "titan-compressed" if compressed else "titan"
        self.stats = AccessStats()
        self._indexed = None if indexed_properties is None else set(indexed_properties)
        self._lsm = LSMStore(
            compressed=compressed,
            memtable_flush_bytes=memtable_flush_bytes,
            stats=self.stats,
        )

    @classmethod
    def load(cls, graph: GraphData, compressed: bool = False) -> "KVGraphStore":
        """Bulk-load an input graph: one property row and one adjacency
        row per vertex, plus the global index rows."""
        store = cls(compressed=compressed)
        for node_id in graph.node_ids():
            properties = graph.node_properties(node_id)
            store._lsm.put(store._node_key(node_id), b"P" + _encode_props(properties))
            for pair in properties.items():
                if store._indexed is None or pair[0] in store._indexed:
                    store._lsm.put(store._index_key(pair), b"A" + varint_encode(node_id))
            adjacency = bytearray()
            for edge in graph.edges_of(node_id):  # sorted by timestamp
                adjacency.extend(
                    store._encode_add(edge.edge_type, edge.timestamp,
                                      edge.destination, edge.properties)
                )
            if adjacency:
                store._lsm.put(store._edge_key(node_id), bytes(adjacency))
        store._lsm.flush()
        store.reset_stats()
        return store

    # ------------------------------------------------------------------
    # Row key / fragment formats
    # ------------------------------------------------------------------

    @staticmethod
    def _node_key(node_id: int) -> bytes:
        return b"n:%d" % node_id

    @staticmethod
    def _edge_key(node_id: int) -> bytes:
        return b"e:%d" % node_id

    @staticmethod
    def _index_key(pair: Tuple[str, str]) -> bytes:
        return b"i:" + pair[0].encode("utf-8") + b"=" + pair[1].encode("utf-8")

    @staticmethod
    def _encode_add(edge_type: int, timestamp: int, destination: int,
                    properties: PropertyList) -> bytes:
        blob = _encode_props(properties)
        return (
            b"A"
            + varint_encode(edge_type)
            + varint_encode(timestamp)
            + varint_encode(destination)
            + varint_encode(len(blob))
            + blob
        )

    @staticmethod
    def _encode_remove(edge_type: int, destination: int) -> bytes:
        return b"R" + varint_encode(edge_type) + varint_encode(destination)

    # ------------------------------------------------------------------
    # Row replay (the opaque-object scans)
    # ------------------------------------------------------------------

    def _replay_node(self, node_id: int) -> Optional[PropertyList]:
        """Latest property blob, or None if absent/tombstoned."""
        latest: Optional[PropertyList] = None
        for fragment in self._lsm.get_fragments(self._node_key(node_id)):
            self.stats.sequential_bytes += len(fragment)  # scan the opaque value
            if fragment[:1] == b"D":
                latest = None
            else:
                latest, _ = _decode_props(fragment, 1)
        return latest

    def _replay_adjacency(self, node_id: int) -> List[Tuple[int, int, int, PropertyList]]:
        """The vertex's full adjacency: (edge_type, timestamp,
        destination, properties), sorted by (edge_type, timestamp).

        Every call fetches and scans the *entire* adjacency row -- the
        opaque-object cost ZipG's layout avoids.
        """
        edges: List[Tuple[int, int, int, PropertyList]] = []
        for fragment in self._lsm.get_fragments(self._edge_key(node_id)):
            self.stats.sequential_bytes += len(fragment)
            offset = 0
            while offset < len(fragment):
                tag = fragment[offset : offset + 1]
                offset += 1
                if tag == b"A":
                    edge_type, offset = varint_decode(fragment, offset)
                    timestamp, offset = varint_decode(fragment, offset)
                    destination, offset = varint_decode(fragment, offset)
                    blob_length, offset = varint_decode(fragment, offset)
                    properties, _ = _decode_props(fragment, offset)
                    offset += blob_length
                    edges.append((edge_type, timestamp, destination, properties))
                elif tag == b"R":
                    edge_type, offset = varint_decode(fragment, offset)
                    destination, offset = varint_decode(fragment, offset)
                    edges = [
                        e for e in edges if not (e[0] == edge_type and e[2] == destination)
                    ]
                else:
                    raise ValueError(f"corrupt adjacency fragment tag {tag!r}")
        edges.sort(key=lambda e: (e[0], e[1], e[2]))
        return edges

    def _replay_index(self, pair: Tuple[str, str]) -> Set[int]:
        members: Set[int] = set()
        for fragment in self._lsm.get_fragments(self._index_key(pair)):
            self.stats.sequential_bytes += len(fragment)
            node_id, _ = varint_decode(fragment, 1)
            if fragment[:1] == b"A":
                members.add(node_id)
            else:
                members.discard(node_id)
        return members

    # ------------------------------------------------------------------
    # Node queries
    # ------------------------------------------------------------------

    def get_node_property(self, node_id: int, property_ids="*") -> PropertyList:
        properties = self._replay_node(node_id)
        if properties is None:
            raise KeyError(f"node {node_id} not found")
        if property_ids == "*":
            return properties
        if isinstance(property_ids, str):
            wanted = {property_ids}
        else:
            wanted = set(property_ids)
        return {k: v for k, v in properties.items() if k in wanted}

    def get_node_ids(self, property_list: PropertyList) -> List[int]:
        """Global index lookup (Titan's composite indexes) for indexed
        PropertyIDs; full vertex scan otherwise."""
        result: Optional[Set[int]] = None
        for key, value in property_list.items():
            self.stats.searches += 1
            if self._indexed is None or key in self._indexed:
                members = self._replay_index((key, value))
            else:
                members = self._scan_for(key, value)
            result = members if result is None else result & members
            if not result:
                return []
        return sorted(result) if result is not None else []

    def _scan_for(self, key: str, value: str) -> Set[int]:
        """Full scan over every vertex property row (non-indexed
        predicate: Titan would do an OLAP scan here)."""
        matches: Set[int] = set()
        for row_key, fragment in self._lsm.scan_prefix(b"n:"):
            self.stats.sequential_bytes += len(fragment)
            node_id = int(row_key[2:])
            if fragment[:1] == b"D":
                matches.discard(node_id)
            else:
                properties, _ = _decode_props(fragment, 1)
                if properties.get(key) == value:
                    matches.add(node_id)
                else:
                    matches.discard(node_id)
        return matches

    def get_neighbor_ids(
        self, node_id: int, edge_type="*", property_list: Optional[PropertyList] = None
    ) -> List[int]:
        adjacency = self._replay_adjacency(node_id)
        if edge_type != "*":
            adjacency = [e for e in adjacency if e[0] == int(edge_type)]
        adjacency.sort(key=lambda e: (e[1], e[2]))  # time order
        destinations = [destination for _, _, destination, _ in adjacency]
        if not property_list:
            return destinations
        matches = []
        for destination in destinations:
            try:
                properties = self.get_node_property(destination, list(property_list))
            except KeyError:
                continue
            if all(properties.get(k) == v for k, v in property_list.items()):
                matches.append(destination)
        return matches

    # ------------------------------------------------------------------
    # Edge queries (full-row scan + filter, §5.2)
    # ------------------------------------------------------------------

    def _typed_edges(self, node_id: int, edge_type: int):
        return sorted(
            (e for e in self._replay_adjacency(node_id) if e[0] == edge_type),
            key=lambda e: (e[1], e[2]),
        )

    def edge_count(self, node_id: int, edge_type: int) -> int:
        return len(self._typed_edges(node_id, edge_type))

    def edges_in_time_range(
        self,
        node_id: int,
        edge_type: int,
        t_low: Optional[int],
        t_high: Optional[int],
        limit: Optional[int] = None,
        with_properties: bool = True,
    ) -> List[EdgeData]:
        edges = self._typed_edges(node_id, edge_type)
        selected = [
            e
            for e in edges
            if (t_low is None or e[1] >= t_low) and (t_high is None or e[1] < t_high)
        ]
        if limit is not None:
            selected = selected[:limit]
        return [
            EdgeData(destination, timestamp, properties if with_properties else {})
            for _, timestamp, destination, properties in selected
        ]

    def edges_from_index(
        self,
        node_id: int,
        edge_type: int,
        start_index: int,
        limit: Optional[int],
        with_properties: bool = True,
    ) -> List[EdgeData]:
        edges = self._typed_edges(node_id, edge_type)
        end = len(edges) if limit is None else min(len(edges), start_index + limit)
        return [
            EdgeData(destination, timestamp, properties if with_properties else {})
            for _, timestamp, destination, properties in edges[start_index:end]
        ]

    # ------------------------------------------------------------------
    # Updates (write-optimized fragment appends)
    # ------------------------------------------------------------------

    def append_node(self, node_id: int, properties: PropertyList) -> None:
        self._lsm.put(self._node_key(node_id), b"P" + _encode_props(properties))
        for pair in properties.items():
            if self._indexed is None or pair[0] in self._indexed:
                self._lsm.put(self._index_key(pair), b"A" + varint_encode(node_id))

    def append_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        self._lsm.put(
            self._edge_key(source),
            self._encode_add(edge_type, timestamp, destination, properties or {}),
        )

    def delete_node(self, node_id: int) -> bool:
        # Read-before-write: index maintenance needs the old properties.
        properties = self._replay_node(node_id)
        if properties is None:
            return False
        for pair in properties.items():
            if self._indexed is None or pair[0] in self._indexed:
                self._lsm.put(self._index_key(pair), b"R" + varint_encode(node_id))
        self._lsm.put(self._node_key(node_id), b"D")
        return True

    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        matching = sum(
            1
            for e in self._replay_adjacency(source)
            if e[0] == edge_type and e[2] == destination
        )
        if matching:
            self._lsm.put(self._edge_key(source), self._encode_remove(edge_type, destination))
        return matching

    def update_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        """Cassandra-style blind update: write the remove marker and the
        new cell without reading the row first (the write-optimized path
        the paper credits Titan's update throughput to)."""
        self._lsm.put(self._edge_key(source), self._encode_remove(edge_type, destination))
        self.append_edge(source, edge_type, destination, timestamp, properties)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def storage_footprint_bytes(self) -> int:
        """SSTables + memtable, including index rows (Titan's secondary
        index overhead shows up here, as in Figure 5)."""
        return self._lsm.stored_bytes()

    def aggregate_stats(self) -> AccessStats:
        return self.stats

    def reset_stats(self) -> None:
        self.stats.reset()

    @property
    def lsm(self) -> LSMStore:
        return self._lsm
